/**
 * @file
 * TensorShape: dimension vector with NHWC helpers.
 *
 * Image tensors throughout the library use NHWC layout (batch, height,
 * width, channels), matching TensorFlow's default on GPU instances in the
 * paper's setup.
 */

#ifndef CEER_GRAPH_TENSOR_SHAPE_H
#define CEER_GRAPH_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "graph/dtype.h"

namespace ceer {
namespace graph {

/** Shape of a dense tensor; all dimensions are static and non-negative. */
class TensorShape
{
  public:
    /** Constructs a rank-0 (scalar) shape. */
    TensorShape() = default;

    /** Constructs from an explicit dimension list. */
    TensorShape(std::initializer_list<std::int64_t> dims);

    /** Constructs from a dimension vector. */
    explicit TensorShape(std::vector<std::int64_t> dims);

    /** Builds a rank-4 NHWC shape. */
    static TensorShape nhwc(std::int64_t n, std::int64_t h, std::int64_t w,
                            std::int64_t c);

    /** Builds a rank-2 (rows, cols) shape. */
    static TensorShape matrix(std::int64_t rows, std::int64_t cols);

    /** Builds a rank-1 shape. */
    static TensorShape vector(std::int64_t n);

    /** Number of dimensions. */
    std::size_t rank() const { return dims_.size(); }

    /** Dimension at @p axis; negative axes count from the end. */
    std::int64_t dim(int axis) const;

    /** All dimensions. */
    const std::vector<std::int64_t> &dims() const { return dims_; }

    /** Product of dimensions (1 for scalars). */
    std::int64_t numElements() const;

    /** numElements() times the element size of @p dtype. */
    std::int64_t numBytes(DataType dtype = DataType::Float32) const;

    /** Batch dimension (dim 0); requires rank >= 1. */
    std::int64_t batch() const { return dim(0); }

    /** Height of an NHWC tensor; requires rank 4. */
    std::int64_t height() const;

    /** Width of an NHWC tensor; requires rank 4. */
    std::int64_t width() const;

    /** Channels of an NHWC tensor (last dim); requires rank >= 1. */
    std::int64_t channels() const { return dim(-1); }

    /** Replaces the batch dimension, returning a new shape. */
    TensorShape withBatch(std::int64_t n) const;

    /** "[n,h,w,c]" rendering. */
    std::string toString() const;

    bool operator==(const TensorShape &other) const = default;

  private:
    std::vector<std::int64_t> dims_;
};

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_TENSOR_SHAPE_H
