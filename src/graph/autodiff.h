/**
 * @file
 * Backward-pass generation at operation granularity.
 *
 * Given a forward graph and its scalar loss, appends the gradient and
 * optimizer operations TensorFlow would add: Conv2DBackpropFilter /
 * Conv2DBackpropInput for convolutions, MaxPoolGrad/AvgPoolGrad,
 * ReluGrad, BiasAddGrad, FusedBatchNormGradV3, transposed MatMuls,
 * AddN where a tensor has multiple consumers (residual connections),
 * Slice for concat gradients, and one ApplyGradientDescent per trainable
 * variable.
 *
 * The generator tracks only shapes, not values — the simulator and Ceer
 * care about op types and input sizes, which this reproduces faithfully.
 */

#ifndef CEER_GRAPH_AUTODIFF_H
#define CEER_GRAPH_AUTODIFF_H

#include "graph/graph.h"

namespace ceer {
namespace graph {

/** Optimizer whose update ops the backward pass emits. */
enum class Optimizer
{
    Sgd,      ///< ApplyGradientDescent; no slot variables.
    Momentum, ///< ApplyMomentum; one slot per parameter.
    Adam,     ///< ApplyAdam; two slots per parameter.
};

/** Options for training-graph generation. */
struct TrainingOptions
{
    Optimizer optimizer = Optimizer::Sgd; ///< Update rule.
};

/** Number of per-parameter slot variables @p optimizer keeps. */
int optimizerSlots(Optimizer optimizer);

/**
 * True when gradients can flow through an op of type @p type.
 *
 * CPU pipeline ops, comparisons, casts (used only for masks here) and
 * random generators are treated as constant w.r.t. the loss.
 */
bool isDifferentiable(OpType type);

/**
 * Appends backward and optimizer nodes for the loss at @p loss.
 *
 * @param g    Graph containing the forward pass; extended in place.
 * @param loss Scalar loss node produced by GraphBuilder::softmaxLoss.
 * @return Number of nodes appended.
 */
std::size_t addBackwardPass(Graph &g, NodeId loss,
                            const TrainingOptions &options = {});

/**
 * Convenience wrapper: backward pass plus per-iteration bookkeeping ops
 * (global-step update, a host-side Assert).
 *
 * @param g    Graph with a forward pass.
 * @param loss Scalar loss node.
 * @return Number of nodes appended.
 */
std::size_t addTrainingOps(Graph &g, NodeId loss,
                           const TrainingOptions &options = {});

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_AUTODIFF_H
