/**
 * @file
 * Dense network-structure feature vector (DNNAbacus-style).
 *
 * DNNAbacus (arXiv 2205.12095) predicts training cost by regressing on
 * a "network structural matrix" — per-architecture aggregates of layer
 * counts, parameter volume and tensor sizes — instead of per-operation
 * timings. This module extracts the repo's equivalent: a fixed-order
 * vector of op-category counts and param/FLOP/tensor-byte aggregates
 * computed from the training graph alone. FLOP counts come through a
 * caller-supplied callback (the hw layer depends on graph, not the
 * other way around); pass hw::opCost(node).flops.
 */

#ifndef CEER_GRAPH_NET_FEATURES_H
#define CEER_GRAPH_NET_FEATURES_H

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ceer {
namespace graph {

/** FLOP count of one node, e.g. hw::opCost(node).flops. */
using NodeFlopsFn = std::function<double(const Node &)>;

/**
 * Names of the feature slots produced by netFeatures(), in order.
 * The order is part of the on-disk/regression contract: models fitted
 * against one vector layout stay valid only while the layout holds.
 */
const std::vector<std::string> &netFeatureNames();

/** Number of features produced by netFeatures(). */
std::size_t netFeatureCount();

/**
 * Extracts the structure vector of @p g:
 *
 *   gpu_ops          GPU node count
 *   cpu_ops          CPU node count
 *   params_m         trainable parameters (millions)
 *   total_gflops     summed FLOPs of GPU nodes (GFLOP)
 *   max_op_gflops    largest single-op FLOP count (GFLOP)
 *   conv_gflops      FLOPs in Conv + ConvFilterGrad categories (GFLOP)
 *   matmul_gflops    FLOPs in the MatMulCat category (GFLOP)
 *   input_gb         summed input bytes of GPU nodes (GB)
 *   output_gb        summed output bytes of GPU nodes (GB)
 *   pool_ops         Pool + PoolGrad node count
 *   norm_ops         BatchNorm + Normalization node count
 *   elementwise_ops  Elementwise + Bias node count
 *   data_movement_gb input bytes of DataMovement nodes (GB)
 *
 * Pure function of the graph (and @p flops); identical graphs produce
 * bit-identical vectors. The unit scalings keep every slot within a
 * few orders of magnitude of 1 for typical zoo CNNs, which keeps the
 * downstream normal equations well-conditioned.
 */
std::vector<double> netFeatures(const Graph &g, const NodeFlopsFn &flops);

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_NET_FEATURES_H
