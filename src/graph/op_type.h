/**
 * @file
 * Operation-type registry for the CNN graph.
 *
 * The set of op types mirrors the TensorFlow r1.x kernels that the paper's
 * empirical study observed when training CNNs: the 20 "heavy" GPU
 * operations of Figs. 2-3, a larger population of light GPU operations,
 * and operations that only have CPU kernels (e.g. SparseToDense).
 *
 * Note that "heavy" vs "light" is *not* encoded here — in the paper it is
 * a measured property (mean compute time >= 0.5 ms on a P2 instance), and
 * Ceer's classifier discovers it from profiles. This registry only carries
 * static metadata: the default placement device and the cost category the
 * hardware model uses to compute FLOPs/bytes.
 */

#ifndef CEER_GRAPH_OP_TYPE_H
#define CEER_GRAPH_OP_TYPE_H

#include <string>
#include <vector>

namespace ceer {
namespace graph {

/** Placement device for an operation. */
enum class Device { Gpu, Cpu };

/**
 * Category used by the hardware model to derive FLOPs and memory traffic
 * from shapes. Categories also carry per-GPU efficiency factors.
 */
enum class CostCategory
{
    Conv,           ///< Direct/implicit-GEMM convolution kernels.
    ConvFilterGrad, ///< Weight-gradient convolution (superlinear in size).
    Pool,           ///< Forward pooling (memory-bound).
    PoolGrad,       ///< Pooling gradients (memory-bound, extra traffic).
    Elementwise,    ///< Pointwise math (ReLU, Add, Mul, ...).
    Bias,           ///< Bias add / bias gradient (broadcast traffic).
    BatchNorm,      ///< Fused batch-norm forward/backward.
    MatMulCat,      ///< Dense matrix multiplication.
    DataMovement,   ///< Concat, transpose, pad, slice, tile.
    Reduction,      ///< Reductions and softmax-style kernels.
    Normalization,  ///< Local response normalization kernels.
    Trivial,        ///< Metadata-only ops (Identity, Reshape, Shape).
    Cpu,            ///< Host-side kernels.
};

/** All operation types the graph substrate can express. */
enum class OpType
{
    // --- GPU ops observed heavy in the paper (Figs. 2-3) ---
    Conv2D,
    Conv2DBackpropInput,
    Conv2DBackpropFilter,
    MaxPool,
    MaxPoolGrad,
    AvgPool,
    AvgPoolGrad,
    Relu,
    ReluGrad,
    BiasAdd,
    BiasAddGrad,
    AddV2,
    AddN,
    Mul,
    FusedBatchNormV3,
    FusedBatchNormGradV3,
    MatMul,
    ConcatV2,
    Transpose,
    Pad,

    // --- Further GPU ops (typically light at CNN shapes) ---
    // (BatchMatMul..Gather are Transformer-era kernels and the
    // Depthwise* ops are MobileNet-era kernels — all absent from the
    // paper's CNNs: the "unseen operations" of Sec. IV-D/VI.)
    DepthwiseConv2dNative,
    DepthwiseConv2dNativeBackpropInput,
    DepthwiseConv2dNativeBackpropFilter,
    BatchMatMul,
    LayerNorm,
    LayerNormGrad,
    Gelu,
    GeluGrad,
    Tanh,
    Sigmoid,
    Gather,
    Softmax,
    SoftmaxCrossEntropyWithLogits,
    Lrn,
    LrnGrad,
    Mean,
    Sum,
    Tile,
    Slice,
    StridedSlice,
    Pack,
    ExpandDims,
    Cast,
    RealDiv,
    Sub,
    Rsqrt,
    Maximum,
    Exp,
    GreaterEqual,
    Select,
    ZerosLike,
    Fill,
    ArgMax,
    ApplyGradientDescent,
    ApplyMomentum,
    ApplyAdam,
    Identity,
    Reshape,
    Squeeze,
    Shape,

    // --- Ops with CPU-only kernels (data pipeline & bookkeeping) ---
    IteratorGetNext,
    SparseToDense,
    OneHot,
    RandomUniform,
    DecodeJpeg,
    Range,
    Assert,

    kCount, ///< Sentinel; not a real op.
};

/** Static metadata for one op type. */
struct OpTypeInfo
{
    const char *name;      ///< TensorFlow-style kernel name.
    Device device;         ///< Default placement.
    CostCategory category; ///< Hardware cost category.
};

/** Returns metadata for @p type; panics on the sentinel. */
const OpTypeInfo &opTypeInfo(OpType type);

/** Returns the kernel name of @p type, e.g. "Conv2DBackpropFilter". */
std::string opTypeName(OpType type);

/**
 * Parses a kernel name back to an OpType.
 *
 * @param name Exact kernel name.
 * @param out  Receives the parsed type on success.
 * @return true when @p name is known.
 */
bool opTypeFromName(const std::string &name, OpType &out);

/** All real op types in declaration order. */
const std::vector<OpType> &allOpTypes();

/** Number of real op types. */
constexpr std::size_t
opTypeCount()
{
    return static_cast<std::size_t>(OpType::kCount);
}

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_OP_TYPE_H
