#include "graph/autodiff.h"

#include <vector>

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace graph {

bool
isDifferentiable(OpType type)
{
    switch (type) {
      case OpType::IteratorGetNext:
      case OpType::SparseToDense:
      case OpType::OneHot:
      case OpType::RandomUniform:
      case OpType::DecodeJpeg:
      case OpType::Range:
      case OpType::Assert:
      case OpType::GreaterEqual:
      case OpType::Select:
      case OpType::Cast:
      case OpType::ArgMax:
      case OpType::Shape:
      case OpType::ZerosLike:
      case OpType::Fill:
      case OpType::ApplyGradientDescent:
      case OpType::ApplyMomentum:
      case OpType::ApplyAdam:
        return false;
      default:
        return true;
    }
}

namespace {

/**
 * Shared state of one backward-pass construction.
 */
class BackwardBuilder
{
  public:
    BackwardBuilder(Graph &g, NodeId loss, Optimizer optimizer)
        : graph_(g), loss_(loss), optimizer_(optimizer),
          pending_(g.size())
    {
    }

    std::size_t
    run()
    {
        const std::size_t before = graph_.size();

        // Seed: d(loss)/d(loss) = 1, materialized as a Fill of ones.
        const NodeId seed =
            graph_.addNode("grad/ones", OpType::Fill, {}, {},
                           graph_.node(loss_).outputShape);
        pending_[static_cast<std::size_t>(loss_)].push_back(seed);

        for (NodeId id = loss_; id >= 0; --id) {
            auto &contribs = pending_[static_cast<std::size_t>(id)];
            if (contribs.empty())
                continue;
            // Copy: addNode below may reallocate the node vector.
            const Node fwd = graph_.node(id);
            NodeId grad;
            if (contribs.size() == 1) {
                grad = contribs.front();
            } else {
                // Multiple consumers (e.g. residual shortcut): sum the
                // incoming gradients, as TF does with AddN.
                grad = graph_.addNode("grad/" + fwd.name + "/AddN",
                                      OpType::AddN, contribs, {},
                                      fwd.outputShape);
            }
            emitBackward(fwd, grad);
        }
        return graph_.size() - before;
    }

  private:
    /** Records @p grad as a gradient contribution for input @p idx. */
    void
    propagate(const Node &fwd, std::size_t idx, NodeId grad)
    {
        const NodeId producer = fwd.inputs.at(idx);
        if (!isDifferentiable(graph_.node(producer).type))
            return;
        pending_[static_cast<std::size_t>(producer)].push_back(grad);
    }

    /** Appends an optimizer update consuming the parameter gradient. */
    void
    applyUpdate(const Node &fwd, NodeId param_grad,
                const TensorShape &var_shape, const char *suffix)
    {
        OpAttrs attrs;
        attrs.paramCount = var_shape.numElements();
        OpType update = OpType::ApplyGradientDescent;
        std::vector<TensorShape> slots;
        if (optimizer_ == Optimizer::Momentum) {
            update = OpType::ApplyMomentum;
            slots = {var_shape};
        } else if (optimizer_ == Optimizer::Adam) {
            update = OpType::ApplyAdam;
            slots = {var_shape, var_shape};
        }
        graph_.addNode("train/" + fwd.name + suffix, update,
                       {param_grad}, slots, var_shape, attrs);
    }

    void
    emitBackward(const Node &fwd, NodeId grad)
    {
        const std::string prefix = "grad/" + fwd.name;
        switch (fwd.type) {
          case OpType::Conv2D: {
            const NodeId filter_grad = graph_.addNode(
                prefix + "/Conv2DBackpropFilter",
                OpType::Conv2DBackpropFilter, {fwd.inputs[0], grad}, {},
                fwd.attrs.filterShape, fwd.attrs);
            applyUpdate(fwd, filter_grad, fwd.attrs.filterShape,
                        "/update");
            if (isDifferentiable(
                    graph_.node(fwd.inputs[0]).type)) {
                const NodeId input_grad = graph_.addNode(
                    prefix + "/Conv2DBackpropInput",
                    OpType::Conv2DBackpropInput, {grad},
                    {fwd.attrs.filterShape}, fwd.inputShapes[0],
                    fwd.attrs);
                propagate(fwd, 0, input_grad);
            }
            break;
          }
          case OpType::BatchMatMul: {
            // Both operands are activations: dA = dC B', dB = A' dC.
            for (std::size_t i = 0; i < fwd.inputs.size() && i < 2;
                 ++i) {
                if (!isDifferentiable(
                        graph_.node(fwd.inputs[i]).type)) {
                    continue;
                }
                const NodeId bmm_grad = graph_.addNode(
                    prefix + util::format("/BatchMatMul_grad%zu", i),
                    OpType::BatchMatMul,
                    {grad, fwd.inputs[1 - i]}, {}, fwd.inputShapes[i],
                    fwd.attrs);
                propagate(fwd, i, bmm_grad);
            }
            break;
          }
          case OpType::LayerNorm: {
            const NodeId ln_grad = graph_.addNode(
                prefix + "/LayerNormGrad", OpType::LayerNormGrad,
                {grad, fwd.inputs[0]}, {fwd.attrs.filterShape},
                fwd.inputShapes[0], fwd.attrs);
            propagate(fwd, 0, ln_grad);
            applyUpdate(fwd, ln_grad, fwd.attrs.filterShape,
                        "/update_scale");
            applyUpdate(fwd, ln_grad, fwd.attrs.filterShape,
                        "/update_bias");
            break;
          }
          case OpType::Gelu: {
            const NodeId gelu_grad = graph_.addNode(
                prefix + "/GeluGrad", OpType::GeluGrad,
                {grad, fwd.inputs[0]}, {}, fwd.inputShapes[0]);
            propagate(fwd, 0, gelu_grad);
            break;
          }
          case OpType::Tanh:
          case OpType::Sigmoid: {
            // d tanh(x) = (1 - y^2) dy; d sigmoid = y(1-y) dy: one
            // elementwise Mul against the forward output either way.
            const NodeId tanh_grad = graph_.addNode(
                prefix + "/Mul", OpType::Mul, {grad, fwd.id}, {},
                fwd.inputShapes[0]);
            propagate(fwd, 0, tanh_grad);
            break;
          }
          case OpType::Gather: {
            // Embedding lookup: the gradient scatters into the table
            // variable; indices receive nothing.
            applyUpdate(fwd, grad, fwd.attrs.filterShape, "/update");
            break;
          }
          case OpType::DepthwiseConv2dNative: {
            const NodeId filter_grad = graph_.addNode(
                prefix + "/DepthwiseConv2dNativeBackpropFilter",
                OpType::DepthwiseConv2dNativeBackpropFilter,
                {fwd.inputs[0], grad}, {}, fwd.attrs.filterShape,
                fwd.attrs);
            applyUpdate(fwd, filter_grad, fwd.attrs.filterShape,
                        "/update");
            if (isDifferentiable(graph_.node(fwd.inputs[0]).type)) {
                const NodeId input_grad = graph_.addNode(
                    prefix + "/DepthwiseConv2dNativeBackpropInput",
                    OpType::DepthwiseConv2dNativeBackpropInput, {grad},
                    {fwd.attrs.filterShape}, fwd.inputShapes[0],
                    fwd.attrs);
                propagate(fwd, 0, input_grad);
            }
            break;
          }
          case OpType::FusedBatchNormV3: {
            const NodeId bn_grad = graph_.addNode(
                prefix + "/FusedBatchNormGradV3",
                OpType::FusedBatchNormGradV3, {grad, fwd.inputs[0]},
                {fwd.attrs.filterShape}, fwd.inputShapes[0], fwd.attrs);
            propagate(fwd, 0, bn_grad);
            applyUpdate(fwd, bn_grad, fwd.attrs.filterShape,
                        "/update_scale");
            applyUpdate(fwd, bn_grad, fwd.attrs.filterShape,
                        "/update_offset");
            break;
          }
          case OpType::BiasAdd: {
            const NodeId bias_grad = graph_.addNode(
                prefix + "/BiasAddGrad", OpType::BiasAddGrad, {grad}, {},
                fwd.attrs.filterShape);
            applyUpdate(fwd, bias_grad, fwd.attrs.filterShape, "/update");
            propagate(fwd, 0, grad);
            break;
          }
          case OpType::Relu: {
            const NodeId relu_grad = graph_.addNode(
                prefix + "/ReluGrad", OpType::ReluGrad, {grad, fwd.id},
                {}, fwd.inputShapes[0]);
            propagate(fwd, 0, relu_grad);
            break;
          }
          case OpType::MaxPool: {
            const NodeId pool_grad = graph_.addNode(
                prefix + "/MaxPoolGrad", OpType::MaxPoolGrad,
                {fwd.inputs[0], fwd.id, grad}, {}, fwd.inputShapes[0],
                fwd.attrs);
            propagate(fwd, 0, pool_grad);
            break;
          }
          case OpType::AvgPool: {
            const NodeId pool_grad = graph_.addNode(
                prefix + "/AvgPoolGrad", OpType::AvgPoolGrad, {grad}, {},
                fwd.inputShapes[0], fwd.attrs);
            propagate(fwd, 0, pool_grad);
            break;
          }
          case OpType::AddV2: {
            // The residual form has two node inputs; broadcast adds of
            // a variable (positional embeddings, bias tables) have one
            // node input plus an implicit table, which receives an
            // update instead.
            for (std::size_t i = 0; i < fwd.inputs.size(); ++i)
                propagate(fwd, i, grad);
            if (fwd.inputs.size() == 1 &&
                fwd.inputShapes.size() > 1 &&
                fwd.inputShapes[1].numElements() > 1) {
                applyUpdate(fwd, grad, fwd.inputShapes[1], "/update");
            }
            break;
          }
          case OpType::Mul: {
            // d(a*b)/da = grad * b. The scalar-scale variant has a
            // single node input; the dropout variant's mask input is
            // non-differentiable.
            for (std::size_t i = 0; i < fwd.inputs.size(); ++i) {
                if (!isDifferentiable(
                        graph_.node(fwd.inputs[i]).type)) {
                    continue;
                }
                std::vector<NodeId> ins{grad};
                if (fwd.inputs.size() > 1)
                    ins.push_back(fwd.inputs[1 - i]);
                const NodeId mul_grad = graph_.addNode(
                    prefix + util::format("/Mul_grad%zu", i),
                    OpType::Mul, ins, {}, fwd.inputShapes[i]);
                propagate(fwd, i, mul_grad);
            }
            break;
          }
          case OpType::MatMul: {
            const NodeId input_grad = graph_.addNode(
                prefix + "/MatMul_grad_input", OpType::MatMul, {grad},
                {fwd.attrs.filterShape}, fwd.inputShapes[0], fwd.attrs);
            propagate(fwd, 0, input_grad);
            OpAttrs wattrs = fwd.attrs;
            const NodeId weight_grad = graph_.addNode(
                prefix + "/MatMul_grad_weights", OpType::MatMul,
                {fwd.inputs[0], grad}, {}, fwd.attrs.filterShape, wattrs);
            applyUpdate(fwd, weight_grad, fwd.attrs.filterShape,
                        "/update");
            break;
          }
          case OpType::ConcatV2: {
            for (std::size_t i = 0; i < fwd.inputs.size(); ++i) {
                const NodeId slice_grad = graph_.addNode(
                    prefix + util::format("/Slice_%zu", i), OpType::Slice,
                    {grad}, {}, fwd.inputShapes[i]);
                propagate(fwd, i, slice_grad);
            }
            break;
          }
          case OpType::Reshape:
          case OpType::Squeeze:
          case OpType::ExpandDims: {
            const NodeId reshaped = graph_.addNode(
                prefix + "/Reshape", OpType::Reshape, {grad}, {},
                fwd.inputShapes[0]);
            propagate(fwd, 0, reshaped);
            break;
          }
          case OpType::Identity: {
            propagate(fwd, 0, grad);
            break;
          }
          case OpType::Pad: {
            const NodeId sliced = graph_.addNode(
                prefix + "/Slice", OpType::Slice, {grad}, {},
                fwd.inputShapes[0]);
            propagate(fwd, 0, sliced);
            break;
          }
          case OpType::Transpose: {
            const NodeId transposed = graph_.addNode(
                prefix + "/Transpose", OpType::Transpose, {grad}, {},
                fwd.inputShapes[0]);
            propagate(fwd, 0, transposed);
            break;
          }
          case OpType::Mean:
          case OpType::Sum: {
            const NodeId tiled = graph_.addNode(
                prefix + "/Tile", OpType::Tile, {grad}, {},
                fwd.inputShapes[0]);
            propagate(fwd, 0, tiled);
            break;
          }
          case OpType::Lrn: {
            const NodeId lrn_grad = graph_.addNode(
                prefix + "/LRNGrad", OpType::LrnGrad,
                {grad, fwd.inputs[0], fwd.id}, {}, fwd.inputShapes[0],
                fwd.attrs);
            propagate(fwd, 0, lrn_grad);
            break;
          }
          case OpType::SoftmaxCrossEntropyWithLogits: {
            // TF materializes the logits gradient from the op's second
            // output scaled by the incoming gradient (a Mul kernel).
            const NodeId logits_grad = graph_.addNode(
                prefix + "/Mul", OpType::Mul, {grad},
                {fwd.inputShapes[0]}, fwd.inputShapes[0]);
            propagate(fwd, 0, logits_grad);
            break;
          }
          default: {
            // Structural fallback: pass the gradient through, inserting
            // a Reshape when the shape changes.
            if (fwd.inputs.empty())
                break;
            NodeId out_grad = grad;
            if (!(fwd.inputShapes[0] == fwd.outputShape)) {
                out_grad = graph_.addNode(prefix + "/Reshape",
                                          OpType::Reshape, {grad}, {},
                                          fwd.inputShapes[0]);
            }
            propagate(fwd, 0, out_grad);
            break;
          }
        }
    }

    Graph &graph_;
    NodeId loss_;
    Optimizer optimizer_;
    std::vector<std::vector<NodeId>> pending_;
};

} // namespace

int
optimizerSlots(Optimizer optimizer)
{
    switch (optimizer) {
      case Optimizer::Sgd:      return 0;
      case Optimizer::Momentum: return 1;
      case Optimizer::Adam:     return 2;
    }
    util::panic("optimizerSlots: unknown optimizer");
}

std::size_t
addBackwardPass(Graph &g, NodeId loss, const TrainingOptions &options)
{
    if (loss == kInvalidNode)
        util::panic("addBackwardPass: invalid loss node");
    if (g.node(loss).outputShape.rank() != 0)
        util::panic("addBackwardPass: loss must be a scalar");
    const auto before = static_cast<NodeId>(g.size());
    BackwardBuilder builder(g, loss, options.optimizer);
    const std::size_t added = builder.run();
    g.markGradientRange(before, static_cast<NodeId>(g.size()));
    return added;
}

std::size_t
addTrainingOps(Graph &g, NodeId loss, const TrainingOptions &options)
{
    const std::size_t before = g.size();
    addBackwardPass(g, loss, options);
    // Per-iteration bookkeeping: global-step increment and a host-side
    // sanity assert, both observed in TF training loops.
    const auto bookkeeping = static_cast<NodeId>(g.size());
    g.addNode("train/global_step/AddV2", OpType::AddV2, {},
              {TensorShape{}, TensorShape{}}, TensorShape{});
    g.addNode("train/assert_finite", OpType::Assert, {loss}, {},
              TensorShape{});
    g.markGradientRange(bookkeeping, static_cast<NodeId>(g.size()));
    return g.size() - before;
}

} // namespace graph
} // namespace ceer
