/**
 * @file
 * Layer-level builder producing forward CNN graphs.
 *
 * The builder expands familiar layers (conv+bn+relu, pooling, fully
 * connected, dropout, inception branches, residual blocks) into the
 * operation-level nodes TensorFlow would execute, registering trainable
 * variables along the way. The backward pass is added separately by
 * @ref addBackwardPass.
 */

#ifndef CEER_GRAPH_BUILDER_H
#define CEER_GRAPH_BUILDER_H

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/shape_inference.h"

namespace ceer {
namespace graph {

/** Options controlling the expansion of a convolution layer. */
struct ConvOptions
{
    bool batchNorm = true; ///< FusedBatchNormV3 after the conv.
    bool bias = false;     ///< BiasAdd after the conv (when no BN).
    bool relu = true;      ///< ReLU activation.
    int strideH = 1;       ///< Vertical stride.
    int strideW = 1;       ///< Horizontal stride.
    PaddingMode padding = PaddingMode::Same; ///< Padding mode.
};

/**
 * Builds a forward CNN graph layer by layer.
 *
 * Methods return the NodeId of the layer's final op, which acts as the
 * tensor handle for subsequent layers.
 */
class GraphBuilder
{
  public:
    /**
     * @param model_name Name for the resulting Graph.
     * @param batch      Batch size (per GPU).
     */
    GraphBuilder(std::string model_name, std::int64_t batch);

    /** Batch size this graph was built for. */
    std::int64_t batch() const { return batch_; }

    /**
     * Adds the input pipeline (DecodeJpeg + IteratorGetNext on CPU) and
     * returns the image tensor [N, h, w, c].
     */
    NodeId imageInput(int height, int width, int channels);

    /** Node producing the integer labels [N] (CPU). */
    NodeId labelsInput();

    /**
     * Convolution layer: Conv2D plus optional FusedBatchNormV3/BiasAdd
     * and Relu per @p options. Registers filter (and bias/BN) variables.
     *
     * @param x            Input tensor (NHWC).
     * @param out_channels Number of filters.
     * @param kernel_h     Filter height.
     * @param kernel_w     Filter width.
     * @param options      Stride/padding/activation options.
     * @param name         Layer name prefix.
     */
    NodeId conv2d(NodeId x, std::int64_t out_channels, int kernel_h,
                  int kernel_w, const ConvOptions &options,
                  const std::string &name);

    /**
     * Depthwise convolution (MobileNet): per-channel kh x kw filters,
     * followed by optional BN + ReLU like conv2d. Channel count is
     * preserved (depth multiplier 1).
     */
    NodeId depthwiseConv2d(NodeId x, int kernel, int stride,
                           const std::string &name);

    /**
     * Token-sequence input pipeline (Transformer models): integer ids
     * [N, seq_len] plus labels, both via the CPU pipeline.
     */
    NodeId tokenInput(int seq_len);

    /**
     * Embedding lookup: Gather from a [vocab, dim] table variable.
     * Gradients scatter into the table.
     */
    NodeId embedding(NodeId indices, std::int64_t vocab,
                     std::int64_t dim, const std::string &name);

    /**
     * Adds a learned positional-embedding table [seq, dim] to a
     * [N, seq, dim] activation.
     */
    NodeId positionalEmbedding(NodeId x, const std::string &name);

    /**
     * Standalone FusedBatchNormV3 (pre-activation ResNet-v2 style).
     * Registers scale/offset variables.
     */
    NodeId batchNorm(NodeId x, const std::string &name);

    /**
     * Layer normalization over the last dimension; registers scale and
     * bias variables of that dimension.
     */
    NodeId layerNorm(NodeId x, const std::string &name);

    /** GELU activation (Transformer feed-forward blocks). */
    NodeId gelu(NodeId x, const std::string &name);

    /** Tanh activation (BERT-style pooler, LSTM cells). */
    NodeId tanh(NodeId x, const std::string &name);

    /** Sigmoid activation (LSTM gates). */
    NodeId sigmoid(NodeId x, const std::string &name);

    /**
     * Slice one time step out of a [N, S, D] sequence -> [N, D]
     * (shape-wise; every step looks identical to the cost model).
     */
    NodeId timeStep(NodeId x, const std::string &name);

    /**
     * Batched matrix multiply of two activations: [..., M, K] x
     * [..., K, N] -> [..., M, N] per @p output shape (shapes are
     * caller-specified since attention reshapes heads in and out).
     */
    NodeId batchMatMul(NodeId a, NodeId b, const TensorShape &output,
                       const std::string &name);

    /** Reshape to an explicit shape (element count must match). */
    NodeId reshape(NodeId x, const TensorShape &shape,
                   const std::string &name);

    /** Slice the leading sequence position: [N, S, D] -> [N, D]. */
    NodeId firstToken(NodeId x, const std::string &name);

    /** Standalone ReLU activation. */
    NodeId relu(NodeId x, const std::string &name);

    /** Max pooling layer. */
    NodeId maxPool(NodeId x, int window, int stride, PaddingMode padding,
                   const std::string &name);

    /** Average pooling layer. */
    NodeId avgPool(NodeId x, int window, int stride, PaddingMode padding,
                   const std::string &name);

    /** Global average pooling (Mean over H,W) -> [N, C]. */
    NodeId globalAvgPool(NodeId x, const std::string &name);

    /** Local response normalization (AlexNet-era). */
    NodeId lrn(NodeId x, const std::string &name);

    /**
     * Dropout: CPU RandomUniform mask -> GreaterEqual -> Cast -> Mul.
     * The mask chain is non-differentiable; gradients flow only through
     * the Mul's data input.
     */
    NodeId dropout(NodeId x, const std::string &name);

    /** Flattens to [N, features] via Reshape (no-op for rank 2). */
    NodeId flatten(NodeId x, const std::string &name);

    /**
     * Fully connected layer: MatMul + BiasAdd (+ Relu). Flattens the
     * input if needed. Registers weight and bias variables.
     */
    NodeId fullyConnected(NodeId x, std::int64_t units, bool relu,
                          const std::string &name);

    /**
     * Last-axis concatenation: channels for NHWC inputs (inception
     * modules), features for rank-2 inputs (LSTM cell input).
     */
    NodeId concat(const std::vector<NodeId> &inputs,
                  const std::string &name);

    /** Elementwise residual addition (ResNet shortcut). */
    NodeId add(NodeId a, NodeId b, const std::string &name);

    /** Explicit spatial padding by @p pad pixels on each side. */
    NodeId pad(NodeId x, int padPixels, const std::string &name);

    /**
     * Data-format conversion (NHWC <-> NCHW) as TF inserts on GPU.
     * Modeled as a same-size Transpose so downstream NHWC shape
     * helpers keep working; the cost model only sees bytes moved.
     */
    NodeId transpose(NodeId x, const std::string &name);

    /** Elementwise scaling by a scalar (Inception-ResNet residual scale). */
    NodeId scale(NodeId x, const std::string &name);

    /**
     * Classifier head: softmax cross-entropy loss against the label
     * input, including the CPU-side SparseToDense/OneHot ops the paper
     * observed, plus a small evaluation branch (Softmax/ArgMax).
     *
     * @param logits Logits tensor [N, classes].
     * @return Node id of the scalar loss.
     */
    NodeId softmaxLoss(NodeId logits);

    /** Shape of the tensor produced by @p id. */
    const TensorShape &shapeOf(NodeId id) const;

    /** The loss node (valid after softmaxLoss). */
    NodeId lossNode() const { return loss_; }

    /** Access to the graph under construction. */
    Graph &graph() { return graph_; }

    /** Moves the finished graph out of the builder. */
    Graph finish();

  private:
    Graph graph_;
    std::int64_t batch_;
    NodeId labels_ = kInvalidNode;
    NodeId loss_ = kInvalidNode;
};

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_BUILDER_H
