#include "graph/net_features.h"

#include <algorithm>

#include "util/logging.h"

namespace ceer {
namespace graph {

namespace {

enum FeatureSlot
{
    kGpuOps = 0,
    kCpuOps,
    kParamsM,
    kTotalGflops,
    kMaxOpGflops,
    kConvGflops,
    kMatMulGflops,
    kInputGb,
    kOutputGb,
    kPoolOps,
    kNormOps,
    kElementwiseOps,
    kDataMovementGb,
    kNumSlots,
};

} // namespace

const std::vector<std::string> &
netFeatureNames()
{
    static const std::vector<std::string> names = {
        "gpu_ops",      "cpu_ops",         "params_m",
        "total_gflops", "max_op_gflops",   "conv_gflops",
        "matmul_gflops", "input_gb",       "output_gb",
        "pool_ops",     "norm_ops",        "elementwise_ops",
        "data_movement_gb",
    };
    return names;
}

std::size_t
netFeatureCount()
{
    return kNumSlots;
}

std::vector<double>
netFeatures(const Graph &g, const NodeFlopsFn &flops)
{
    if (!flops)
        util::panic("netFeatures: null flops callback");
    std::vector<double> out(kNumSlots, 0.0);
    out[kParamsM] = static_cast<double>(g.totalParameters()) / 1e6;
    for (const Node &node : g.nodes()) {
        if (node.device() == Device::Cpu) {
            out[kCpuOps] += 1.0;
            continue;
        }
        out[kGpuOps] += 1.0;
        const double gflops = flops(node) / 1e9;
        const double input_gb =
            static_cast<double>(node.inputBytes()) / 1e9;
        out[kTotalGflops] += gflops;
        out[kMaxOpGflops] = std::max(out[kMaxOpGflops], gflops);
        out[kInputGb] += input_gb;
        out[kOutputGb] +=
            static_cast<double>(node.outputBytes()) / 1e9;
        switch (node.category()) {
        case CostCategory::Conv:
        case CostCategory::ConvFilterGrad:
            out[kConvGflops] += gflops;
            break;
        case CostCategory::MatMulCat:
            out[kMatMulGflops] += gflops;
            break;
        case CostCategory::Pool:
        case CostCategory::PoolGrad:
            out[kPoolOps] += 1.0;
            break;
        case CostCategory::BatchNorm:
        case CostCategory::Normalization:
            out[kNormOps] += 1.0;
            break;
        case CostCategory::Elementwise:
        case CostCategory::Bias:
            out[kElementwiseOps] += 1.0;
            break;
        case CostCategory::DataMovement:
            out[kDataMovementGb] += input_gb;
            break;
        default:
            break;
        }
    }
    return out;
}

} // namespace graph
} // namespace ceer
