/**
 * @file
 * Element data types for tensors in the CNN graph.
 */

#ifndef CEER_GRAPH_DTYPE_H
#define CEER_GRAPH_DTYPE_H

#include <cstddef>
#include <string>

namespace ceer {
namespace graph {

/** Element type of a tensor. Training here is fp32, matching the paper. */
enum class DataType
{
    Float32,
    Float16,
    Int32,
    Int64,
    Bool,
};

/** Returns the size in bytes of one element of @p dtype. */
std::size_t dataTypeSize(DataType dtype);

/** Returns the TensorFlow-style name, e.g. "float32". */
std::string dataTypeName(DataType dtype);

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_DTYPE_H
