/**
 * @file
 * The CNN computation graph: a DAG of typed operations.
 *
 * This mirrors what the paper extracts from TensorFlow's tf.Session: for
 * every operation its type, its input tensor sizes, and for the whole
 * model the trainable-parameter count. Ceer consumes exactly this
 * information; the hardware simulator additionally uses the attrs
 * (kernel/stride/padding) to derive FLOPs.
 *
 * Graphs are built append-only with inputs referring to existing nodes,
 * so node id order is always a valid topological order.
 */

#ifndef CEER_GRAPH_GRAPH_H
#define CEER_GRAPH_GRAPH_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/op_type.h"
#include "graph/tensor_shape.h"

namespace ceer {
namespace graph {

/** Index of a node within its Graph. */
using NodeId = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = -1;

/** Spatial padding mode for conv/pool ops (TensorFlow semantics). */
enum class PaddingMode { Same, Valid };

/**
 * Per-op attributes. Only the fields relevant to an op's type are
 * meaningful; the rest stay at their defaults.
 */
struct OpAttrs
{
    int kernelH = 0;             ///< Filter/window height.
    int kernelW = 0;             ///< Filter/window width.
    int strideH = 1;             ///< Vertical stride.
    int strideW = 1;             ///< Horizontal stride.
    PaddingMode padding = PaddingMode::Same; ///< Padding mode.
    TensorShape filterShape;     ///< Conv filter / matmul weight shape.
    std::int64_t paramCount = 0; ///< Trainable params updated by this op.
    int depthRadius = 5;         ///< LRN depth radius.
    int axis = -1;               ///< Concat/softmax axis.
};

/** One operation in the DAG. */
struct Node
{
    NodeId id = kInvalidNode;          ///< Index in the graph.
    std::string name;                  ///< Unique hierarchical name.
    OpType type = OpType::Identity;    ///< Kernel type.
    std::vector<NodeId> inputs;        ///< Producer nodes (data deps).
    /**
     * Shapes of all input tensors: first the outputs of @ref inputs in
     * order, then any implicit inputs (weights/filters read from
     * variables). These sizes are the regression features in Ceer.
     */
    std::vector<TensorShape> inputShapes;
    TensorShape outputShape;           ///< Primary output shape.
    OpAttrs attrs;                     ///< Type-specific attributes.
    DataType dtype = DataType::Float32; ///< Element type.
    /**
     * True for nodes added by the backward pass/optimizer. Forward
     * activations must be retained for the backward pass, so this flag
     * drives the training-memory estimate.
     */
    bool isGradient = false;

    /** Placement device (from the op-type registry). */
    Device device() const { return opTypeInfo(type).device; }

    /** Cost category (from the op-type registry). */
    CostCategory category() const { return opTypeInfo(type).category; }

    /** Sum of input tensor sizes in bytes. */
    std::int64_t inputBytes() const;

    /** Output tensor size in bytes. */
    std::int64_t outputBytes() const;
};

/** A trainable variable of the model (weights or biases). */
struct ParamVar
{
    std::string name;  ///< Variable name.
    TensorShape shape; ///< Variable shape.

    /** Number of scalar parameters. */
    std::int64_t count() const { return shape.numElements(); }
};

/** Per-op-type tally returned by Graph::countByOpType(). */
struct OpTypeCount
{
    OpType type;       ///< The op type.
    std::size_t count; ///< Number of nodes of that type.
};

/**
 * Append-only DAG of operations plus the model's trainable variables.
 */
class Graph
{
  public:
    /** @param name Model name, e.g. "inception_v3". */
    explicit Graph(std::string name = "model") : name_(std::move(name)) {}

    /** Model name. */
    const std::string &name() const { return name_; }

    /** Renames the model. */
    void setName(std::string name) { name_ = std::move(name); }

    /** Per-GPU batch size the graph was built at (0 if unknown). */
    std::int64_t batchSize() const { return batchSize_; }

    /** Records the batch size (called by GraphBuilder). */
    void setBatchSize(std::int64_t batch) { batchSize_ = batch; }

    /**
     * Appends a node.
     *
     * @param name        Node name; made unique if already taken.
     * @param type        Kernel type.
     * @param inputs      Existing producer node ids.
     * @param extraInputs Shapes of implicit inputs (weights etc.).
     * @param output      Output shape.
     * @param attrs       Type-specific attributes.
     * @return Id of the new node.
     */
    NodeId addNode(const std::string &name, OpType type,
                   const std::vector<NodeId> &inputs,
                   const std::vector<TensorShape> &extraInputs,
                   const TensorShape &output, const OpAttrs &attrs = {});

    /** Marks nodes in [begin, end) as gradient/optimizer nodes. */
    void markGradientRange(NodeId begin, NodeId end);

    /** Registers a trainable variable and returns its param count. */
    std::int64_t addParamVar(const std::string &name,
                             const TensorShape &shape);

    /** Node accessor; panics on invalid id. */
    const Node &node(NodeId id) const;

    /** All nodes in id (= topological) order. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Number of nodes. */
    std::size_t size() const { return nodes_.size(); }

    /** All trainable variables. */
    const std::vector<ParamVar> &paramVars() const { return params_; }

    /** Total trainable parameters (the comm-model feature in Ceer). */
    std::int64_t totalParameters() const;

    /** Consumers of each node (computed on demand, cached). */
    const std::vector<std::vector<NodeId>> &consumers() const;

    /** Counts of nodes per op type, descending by count. */
    std::vector<OpTypeCount> countByOpType() const;

    /** Number of nodes placed on the GPU. */
    std::size_t gpuOpCount() const;

    /** Number of nodes placed on the CPU. */
    std::size_t cpuOpCount() const;

    /**
     * Structural validation: inputs exist and precede their consumers,
     * input shape lists cover the declared inputs, and names are unique.
     *
     * @param error Receives a description of the first problem found.
     * @return true when the graph is well-formed.
     */
    bool validate(std::string *error = nullptr) const;

    /** Graphviz DOT rendering (op types colour-coded). */
    std::string toDot() const;

  private:
    std::string name_;
    std::int64_t batchSize_ = 0;
    std::vector<Node> nodes_;
    std::vector<ParamVar> params_;
    std::map<std::string, int> nameCounts_;
    mutable std::vector<std::vector<NodeId>> consumersCache_;
    mutable bool consumersValid_ = false;
};

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_GRAPH_H
