#include "graph/tensor_shape.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace graph {

TensorShape::TensorShape(std::initializer_list<std::int64_t> dims)
    : dims_(dims)
{
    for (auto d : dims_) {
        if (d < 0)
            util::panic("TensorShape dimensions must be non-negative");
    }
}

TensorShape::TensorShape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims))
{
    for (auto d : dims_) {
        if (d < 0)
            util::panic("TensorShape dimensions must be non-negative");
    }
}

TensorShape
TensorShape::nhwc(std::int64_t n, std::int64_t h, std::int64_t w,
                  std::int64_t c)
{
    return TensorShape{n, h, w, c};
}

TensorShape
TensorShape::matrix(std::int64_t rows, std::int64_t cols)
{
    return TensorShape{rows, cols};
}

TensorShape
TensorShape::vector(std::int64_t n)
{
    return TensorShape{n};
}

std::int64_t
TensorShape::dim(int axis) const
{
    const int r = static_cast<int>(rank());
    if (axis < 0)
        axis += r;
    if (axis < 0 || axis >= r)
        util::panic(util::format("TensorShape::dim axis %d out of range "
                                 "for rank %d", axis, r));
    return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t
TensorShape::numElements() const
{
    std::int64_t n = 1;
    for (auto d : dims_)
        n *= d;
    return n;
}

std::int64_t
TensorShape::numBytes(DataType dtype) const
{
    return numElements() *
           static_cast<std::int64_t>(dataTypeSize(dtype));
}

std::int64_t
TensorShape::height() const
{
    if (rank() != 4)
        util::panic("TensorShape::height requires rank-4 NHWC tensor");
    return dims_[1];
}

std::int64_t
TensorShape::width() const
{
    if (rank() != 4)
        util::panic("TensorShape::width requires rank-4 NHWC tensor");
    return dims_[2];
}

TensorShape
TensorShape::withBatch(std::int64_t n) const
{
    if (rank() == 0)
        util::panic("TensorShape::withBatch on scalar shape");
    std::vector<std::int64_t> dims = dims_;
    dims[0] = n;
    return TensorShape(std::move(dims));
}

std::string
TensorShape::toString() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
}

} // namespace graph
} // namespace ceer
