#include "graph/builder.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace graph {

GraphBuilder::GraphBuilder(std::string model_name, std::int64_t batch)
    : graph_(std::move(model_name)), batch_(batch)
{
    if (batch <= 0)
        util::panic("GraphBuilder: batch must be positive");
    graph_.setBatchSize(batch);
}

NodeId
GraphBuilder::imageInput(int height, int width, int channels)
{
    const TensorShape image =
        TensorShape::nhwc(batch_, height, width, channels);
    const NodeId decode =
        graph_.addNode("data/decode", OpType::DecodeJpeg, {}, {}, image);
    const NodeId iterator = graph_.addNode(
        "data/iterator", OpType::IteratorGetNext, {decode}, {}, image);

    // Labels arrive through the same pipeline.
    const TensorShape label_shape = TensorShape::vector(batch_);
    labels_ = graph_.addNode("data/labels", OpType::IteratorGetNext, {},
                             {}, label_shape);
    return iterator;
}

NodeId
GraphBuilder::labelsInput()
{
    if (labels_ == kInvalidNode)
        util::panic("labelsInput called before imageInput");
    return labels_;
}

NodeId
GraphBuilder::conv2d(NodeId x, std::int64_t out_channels, int kernel_h,
                     int kernel_w, const ConvOptions &options,
                     const std::string &name)
{
    const TensorShape &input = shapeOf(x);
    if (options.strideH != options.strideW) {
        util::panic("conv2d: anisotropic strides are not supported by "
                    "the shape helpers");
    }
    const int stride = options.strideH;
    const TensorShape output = conv2dOutputShape(
        input, out_channels, kernel_h, kernel_w, stride, options.padding);
    const TensorShape filter{kernel_h, kernel_w, input.channels(),
                             out_channels};

    OpAttrs attrs;
    attrs.kernelH = kernel_h;
    attrs.kernelW = kernel_w;
    attrs.strideH = stride;
    attrs.strideW = stride;
    attrs.padding = options.padding;
    attrs.filterShape = filter;

    graph_.addParamVar(name + "/weights", filter);
    NodeId out = graph_.addNode(name + "/Conv2D", OpType::Conv2D, {x},
                                {filter}, output, attrs);

    if (options.batchNorm) {
        // Scale and offset are trainable; FusedBatchNormV3 reads four
        // [C] side inputs (scale, offset, moving mean/variance).
        const TensorShape channel_vec =
            TensorShape::vector(out_channels);
        graph_.addParamVar(name + "/bn/scale", channel_vec);
        graph_.addParamVar(name + "/bn/offset", channel_vec);
        OpAttrs bn_attrs;
        bn_attrs.filterShape = channel_vec;
        out = graph_.addNode(
            name + "/FusedBatchNormV3", OpType::FusedBatchNormV3, {out},
            {channel_vec, channel_vec, channel_vec, channel_vec}, output,
            bn_attrs);
    } else if (options.bias) {
        const TensorShape bias = TensorShape::vector(out_channels);
        graph_.addParamVar(name + "/bias", bias);
        OpAttrs bias_attrs;
        bias_attrs.filterShape = bias;
        out = graph_.addNode(name + "/BiasAdd", OpType::BiasAdd, {out},
                             {bias}, output, bias_attrs);
    }
    if (options.relu) {
        out = graph_.addNode(name + "/Relu", OpType::Relu, {out}, {},
                             output);
    }
    return out;
}

NodeId
GraphBuilder::depthwiseConv2d(NodeId x, int kernel, int stride,
                              const std::string &name)
{
    const TensorShape &input = shapeOf(x);
    const TensorShape output = poolOutputShape(
        input, kernel, kernel, stride, PaddingMode::Same);
    const TensorShape filter{kernel, kernel, input.channels(), 1};

    OpAttrs attrs;
    attrs.kernelH = attrs.kernelW = kernel;
    attrs.strideH = attrs.strideW = stride;
    attrs.filterShape = filter;
    graph_.addParamVar(name + "/depthwise_weights", filter);
    NodeId out = graph_.addNode(name + "/DepthwiseConv2dNative",
                                OpType::DepthwiseConv2dNative, {x},
                                {filter}, output, attrs);
    out = batchNorm(out, name);
    return relu(out, name);
}

NodeId
GraphBuilder::tokenInput(int seq_len)
{
    const TensorShape tokens = TensorShape::matrix(batch_, seq_len);
    const NodeId iterator = graph_.addNode(
        "data/tokens", OpType::IteratorGetNext, {}, {}, tokens);
    labels_ = graph_.addNode("data/labels", OpType::IteratorGetNext,
                             {}, {}, TensorShape::vector(batch_));
    return iterator;
}

NodeId
GraphBuilder::embedding(NodeId indices, std::int64_t vocab,
                        std::int64_t dim, const std::string &name)
{
    const TensorShape &ids = shapeOf(indices);
    const TensorShape table{vocab, dim};
    graph_.addParamVar(name + "/table", table);
    std::vector<std::int64_t> dims = ids.dims();
    dims.push_back(dim);
    OpAttrs attrs;
    attrs.filterShape = table;
    return graph_.addNode(name + "/Gather", OpType::Gather, {indices},
                          {}, TensorShape(std::move(dims)), attrs);
}

NodeId
GraphBuilder::positionalEmbedding(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    if (shape.rank() != 3)
        util::panic("positionalEmbedding: input must be [N, S, D]");
    const TensorShape table{shape.dim(1), shape.dim(2)};
    graph_.addParamVar(name + "/table", table);
    return graph_.addNode(name + "/AddV2", OpType::AddV2, {x}, {table},
                          shape);
}

NodeId
GraphBuilder::layerNorm(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    const TensorShape vec = TensorShape::vector(shape.dim(-1));
    graph_.addParamVar(name + "/ln/scale", vec);
    graph_.addParamVar(name + "/ln/bias", vec);
    OpAttrs attrs;
    attrs.filterShape = vec;
    return graph_.addNode(name + "/LayerNorm", OpType::LayerNorm, {x},
                          {vec, vec}, shape, attrs);
}

NodeId
GraphBuilder::gelu(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    return graph_.addNode(name + "/Gelu", OpType::Gelu, {x}, {}, shape);
}

NodeId
GraphBuilder::tanh(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    return graph_.addNode(name + "/Tanh", OpType::Tanh, {x}, {}, shape);
}

NodeId
GraphBuilder::sigmoid(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    return graph_.addNode(name + "/Sigmoid", OpType::Sigmoid, {x}, {},
                          shape);
}

NodeId
GraphBuilder::timeStep(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    if (shape.rank() != 3)
        util::panic("timeStep: input must be [N, S, D]");
    return graph_.addNode(name + "/Slice", OpType::Slice, {x}, {},
                          TensorShape::matrix(shape.dim(0),
                                              shape.dim(2)));
}

NodeId
GraphBuilder::batchMatMul(NodeId a, NodeId b, const TensorShape &output,
                          const std::string &name)
{
    return graph_.addNode(name + "/BatchMatMul", OpType::BatchMatMul,
                          {a, b}, {}, output);
}

NodeId
GraphBuilder::reshape(NodeId x, const TensorShape &shape,
                      const std::string &name)
{
    if (shapeOf(x).numElements() != shape.numElements()) {
        util::panic(util::format(
            "reshape '%s': element count mismatch %s vs %s",
            name.c_str(), shapeOf(x).toString().c_str(),
            shape.toString().c_str()));
    }
    return graph_.addNode(name + "/Reshape", OpType::Reshape, {x}, {},
                          shape);
}

NodeId
GraphBuilder::firstToken(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    if (shape.rank() != 3)
        util::panic("firstToken: input must be [N, S, D]");
    return graph_.addNode(name + "/Slice", OpType::Slice, {x}, {},
                          TensorShape::matrix(shape.dim(0),
                                              shape.dim(2)));
}

NodeId
GraphBuilder::batchNorm(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    const TensorShape channel_vec =
        TensorShape::vector(shape.channels());
    graph_.addParamVar(name + "/bn/scale", channel_vec);
    graph_.addParamVar(name + "/bn/offset", channel_vec);
    OpAttrs attrs;
    attrs.filterShape = channel_vec;
    return graph_.addNode(
        name + "/FusedBatchNormV3", OpType::FusedBatchNormV3, {x},
        {channel_vec, channel_vec, channel_vec, channel_vec}, shape,
        attrs);
}

NodeId
GraphBuilder::relu(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    return graph_.addNode(name + "/Relu", OpType::Relu, {x}, {}, shape);
}

NodeId
GraphBuilder::maxPool(NodeId x, int window, int stride,
                      PaddingMode padding, const std::string &name)
{
    const TensorShape output =
        poolOutputShape(shapeOf(x), window, window, stride, padding);
    OpAttrs attrs;
    attrs.kernelH = window;
    attrs.kernelW = window;
    attrs.strideH = stride;
    attrs.strideW = stride;
    attrs.padding = padding;
    return graph_.addNode(name + "/MaxPool", OpType::MaxPool, {x}, {},
                          output, attrs);
}

NodeId
GraphBuilder::avgPool(NodeId x, int window, int stride,
                      PaddingMode padding, const std::string &name)
{
    const TensorShape output =
        poolOutputShape(shapeOf(x), window, window, stride, padding);
    OpAttrs attrs;
    attrs.kernelH = window;
    attrs.kernelW = window;
    attrs.strideH = stride;
    attrs.strideW = stride;
    attrs.padding = padding;
    return graph_.addNode(name + "/AvgPool", OpType::AvgPool, {x}, {},
                          output, attrs);
}

NodeId
GraphBuilder::globalAvgPool(NodeId x, const std::string &name)
{
    const TensorShape &input = shapeOf(x);
    if (input.rank() != 4)
        util::panic("globalAvgPool: input must be NHWC");
    const TensorShape output =
        TensorShape::matrix(input.batch(), input.channels());
    return graph_.addNode(name + "/Mean", OpType::Mean, {x}, {}, output);
}

NodeId
GraphBuilder::lrn(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    OpAttrs attrs;
    attrs.depthRadius = 5;
    return graph_.addNode(name + "/LRN", OpType::Lrn, {x}, {}, shape,
                          attrs);
}

NodeId
GraphBuilder::dropout(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    const NodeId uniform = graph_.addNode(
        name + "/random_uniform", OpType::RandomUniform, {}, {}, shape);
    const NodeId ge = graph_.addNode(name + "/GreaterEqual",
                                     OpType::GreaterEqual, {uniform}, {},
                                     shape);
    const NodeId mask =
        graph_.addNode(name + "/Cast", OpType::Cast, {ge}, {}, shape);
    return graph_.addNode(name + "/Mul", OpType::Mul, {x, mask}, {},
                          shape);
}

NodeId
GraphBuilder::flatten(NodeId x, const std::string &name)
{
    const TensorShape &input = shapeOf(x);
    if (input.rank() == 2)
        return x;
    return graph_.addNode(name + "/Reshape", OpType::Reshape, {x}, {},
                          flattenShape(input));
}

NodeId
GraphBuilder::fullyConnected(NodeId x, std::int64_t units, bool relu,
                             const std::string &name)
{
    NodeId flat = flatten(x, name);
    const TensorShape &input = shapeOf(flat);
    const TensorShape weight =
        TensorShape::matrix(input.dim(1), units);
    const TensorShape output = TensorShape::matrix(input.batch(), units);

    graph_.addParamVar(name + "/weights", weight);
    OpAttrs attrs;
    attrs.filterShape = weight;
    NodeId out = graph_.addNode(name + "/MatMul", OpType::MatMul, {flat},
                                {weight}, output, attrs);

    const TensorShape bias = TensorShape::vector(units);
    graph_.addParamVar(name + "/bias", bias);
    OpAttrs bias_attrs;
    bias_attrs.filterShape = bias;
    out = graph_.addNode(name + "/BiasAdd", OpType::BiasAdd, {out},
                         {bias}, output, bias_attrs);
    if (relu)
        out = graph_.addNode(name + "/Relu", OpType::Relu, {out}, {},
                             output);
    return out;
}

NodeId
GraphBuilder::concat(const std::vector<NodeId> &inputs,
                     const std::string &name)
{
    std::vector<TensorShape> shapes;
    shapes.reserve(inputs.size());
    for (NodeId id : inputs)
        shapes.push_back(shapeOf(id));
    const TensorShape output = concatChannelsShape(shapes);
    OpAttrs attrs;
    attrs.axis = 3;
    return graph_.addNode(name + "/ConcatV2", OpType::ConcatV2, inputs,
                          {}, output, attrs);
}

NodeId
GraphBuilder::add(NodeId a, NodeId b, const std::string &name)
{
    const TensorShape &shape = shapeOf(a);
    if (!(shape == shapeOf(b))) {
        util::panic(util::format(
            "add '%s': shape mismatch %s vs %s", name.c_str(),
            shape.toString().c_str(), shapeOf(b).toString().c_str()));
    }
    return graph_.addNode(name + "/AddV2", OpType::AddV2, {a, b}, {},
                          shape);
}

NodeId
GraphBuilder::pad(NodeId x, int padPixels, const std::string &name)
{
    const TensorShape &input = shapeOf(x);
    if (input.rank() != 4)
        util::panic("pad: input must be NHWC");
    const TensorShape output = TensorShape::nhwc(
        input.batch(), input.height() + 2 * padPixels,
        input.width() + 2 * padPixels, input.channels());
    return graph_.addNode(name + "/Pad", OpType::Pad, {x}, {}, output);
}

NodeId
GraphBuilder::transpose(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    return graph_.addNode(name + "/Transpose", OpType::Transpose, {x},
                          {}, shape);
}

NodeId
GraphBuilder::scale(NodeId x, const std::string &name)
{
    const TensorShape &shape = shapeOf(x);
    return graph_.addNode(name + "/Mul", OpType::Mul, {x},
                          {TensorShape{}}, shape);
}

NodeId
GraphBuilder::softmaxLoss(NodeId logits)
{
    const TensorShape &logit_shape = shapeOf(logits);
    if (logit_shape.rank() != 2)
        util::panic("softmaxLoss: logits must be [N, classes]");
    const std::int64_t classes = logit_shape.dim(1);
    const NodeId labels = labelsInput();

    // CPU-side label densification, as the paper observed (Sec. IV-B):
    // SparseToDense/OneHot only have CPU kernels in TF r1.x.
    const NodeId one_hot = graph_.addNode(
        "loss/OneHot", OpType::OneHot, {labels}, {},
        TensorShape::matrix(batch_, classes));
    const NodeId dense = graph_.addNode(
        "loss/SparseToDense", OpType::SparseToDense, {one_hot}, {},
        TensorShape::matrix(batch_, classes));

    const NodeId xent = graph_.addNode(
        "loss/SoftmaxCrossEntropyWithLogits",
        OpType::SoftmaxCrossEntropyWithLogits, {logits, dense}, {},
        TensorShape::vector(batch_));
    loss_ = graph_.addNode("loss/Mean", OpType::Mean, {xent}, {},
                           TensorShape{});

    // Small evaluation branch (predictions/accuracy); receives no
    // gradients.
    const NodeId softmax = graph_.addNode(
        "eval/Softmax", OpType::Softmax, {logits}, {}, logit_shape);
    const NodeId argmax =
        graph_.addNode("eval/ArgMax", OpType::ArgMax, {softmax}, {},
                       TensorShape::vector(batch_));
    const NodeId correct = graph_.addNode(
        "eval/GreaterEqual", OpType::GreaterEqual, {argmax, labels}, {},
        TensorShape::vector(batch_));
    const NodeId cast = graph_.addNode(
        "eval/Cast", OpType::Cast, {correct}, {},
        TensorShape::vector(batch_));
    graph_.addNode("eval/Mean", OpType::Mean, {cast}, {}, TensorShape{});
    return loss_;
}

const TensorShape &
GraphBuilder::shapeOf(NodeId id) const
{
    return graph_.node(id).outputShape;
}

Graph
GraphBuilder::finish()
{
    std::string error;
    if (!graph_.validate(&error))
        util::panic("GraphBuilder::finish: invalid graph: " + error);
    return std::move(graph_);
}

} // namespace graph
} // namespace ceer
