#include "graph/op_type.h"

#include <array>
#include <map>

#include "util/logging.h"

namespace ceer {
namespace graph {

namespace {

constexpr std::array<OpTypeInfo, opTypeCount()> kOpTable = {{
    // Heavy GPU ops (paper Figs. 2-3).
    {"Conv2D", Device::Gpu, CostCategory::Conv},
    {"Conv2DBackpropInput", Device::Gpu, CostCategory::Conv},
    {"Conv2DBackpropFilter", Device::Gpu, CostCategory::ConvFilterGrad},
    {"MaxPool", Device::Gpu, CostCategory::Pool},
    {"MaxPoolGrad", Device::Gpu, CostCategory::PoolGrad},
    {"AvgPool", Device::Gpu, CostCategory::Pool},
    {"AvgPoolGrad", Device::Gpu, CostCategory::PoolGrad},
    {"Relu", Device::Gpu, CostCategory::Elementwise},
    {"ReluGrad", Device::Gpu, CostCategory::Elementwise},
    {"BiasAdd", Device::Gpu, CostCategory::Bias},
    {"BiasAddGrad", Device::Gpu, CostCategory::Bias},
    {"AddV2", Device::Gpu, CostCategory::Elementwise},
    {"AddN", Device::Gpu, CostCategory::Elementwise},
    {"Mul", Device::Gpu, CostCategory::Elementwise},
    {"FusedBatchNormV3", Device::Gpu, CostCategory::BatchNorm},
    {"FusedBatchNormGradV3", Device::Gpu, CostCategory::BatchNorm},
    {"MatMul", Device::Gpu, CostCategory::MatMulCat},
    {"ConcatV2", Device::Gpu, CostCategory::DataMovement},
    {"Transpose", Device::Gpu, CostCategory::DataMovement},
    {"Pad", Device::Gpu, CostCategory::DataMovement},

    // Further GPU ops.
    // Depthwise convs have minimal arithmetic intensity; era-accurate
    // kernels ran at elementwise-like (memory-bound) throughput.
    {"DepthwiseConv2dNative", Device::Gpu, CostCategory::Elementwise},
    {"DepthwiseConv2dNativeBackpropInput", Device::Gpu,
     CostCategory::Elementwise},
    {"DepthwiseConv2dNativeBackpropFilter", Device::Gpu,
     CostCategory::Elementwise},
    {"BatchMatMul", Device::Gpu, CostCategory::MatMulCat},
    {"LayerNorm", Device::Gpu, CostCategory::BatchNorm},
    {"LayerNormGrad", Device::Gpu, CostCategory::BatchNorm},
    {"Gelu", Device::Gpu, CostCategory::Elementwise},
    {"GeluGrad", Device::Gpu, CostCategory::Elementwise},
    {"Tanh", Device::Gpu, CostCategory::Elementwise},
    {"Sigmoid", Device::Gpu, CostCategory::Elementwise},
    {"Gather", Device::Gpu, CostCategory::DataMovement},
    {"Softmax", Device::Gpu, CostCategory::Reduction},
    {"SoftmaxCrossEntropyWithLogits", Device::Gpu,
     CostCategory::Reduction},
    {"LRN", Device::Gpu, CostCategory::Normalization},
    {"LRNGrad", Device::Gpu, CostCategory::Normalization},
    {"Mean", Device::Gpu, CostCategory::Reduction},
    {"Sum", Device::Gpu, CostCategory::Reduction},
    {"Tile", Device::Gpu, CostCategory::DataMovement},
    {"Slice", Device::Gpu, CostCategory::DataMovement},
    {"StridedSlice", Device::Gpu, CostCategory::DataMovement},
    {"Pack", Device::Gpu, CostCategory::DataMovement},
    {"ExpandDims", Device::Gpu, CostCategory::Trivial},
    {"Cast", Device::Gpu, CostCategory::Elementwise},
    {"RealDiv", Device::Gpu, CostCategory::Elementwise},
    {"Sub", Device::Gpu, CostCategory::Elementwise},
    {"Rsqrt", Device::Gpu, CostCategory::Elementwise},
    {"Maximum", Device::Gpu, CostCategory::Elementwise},
    {"Exp", Device::Gpu, CostCategory::Elementwise},
    {"GreaterEqual", Device::Gpu, CostCategory::Elementwise},
    {"Select", Device::Gpu, CostCategory::Elementwise},
    {"ZerosLike", Device::Gpu, CostCategory::Elementwise},
    {"Fill", Device::Gpu, CostCategory::Elementwise},
    {"ArgMax", Device::Gpu, CostCategory::Reduction},
    // Variable updates run where the variable lives under TF r1.x
    // replicated training; their cost is part of the per-iteration
    // parameter staging/synchronization overhead (see
    // hw/interconnect.h), so the kernel itself is launch-only here.
    {"ApplyGradientDescent", Device::Gpu, CostCategory::Trivial},
    {"ApplyMomentum", Device::Gpu, CostCategory::Trivial},
    {"ApplyAdam", Device::Gpu, CostCategory::Trivial},
    {"Identity", Device::Gpu, CostCategory::Trivial},
    {"Reshape", Device::Gpu, CostCategory::Trivial},
    {"Squeeze", Device::Gpu, CostCategory::Trivial},
    {"Shape", Device::Gpu, CostCategory::Trivial},

    // CPU-only kernels.
    {"IteratorGetNext", Device::Cpu, CostCategory::Cpu},
    {"SparseToDense", Device::Cpu, CostCategory::Cpu},
    {"OneHot", Device::Cpu, CostCategory::Cpu},
    {"RandomUniform", Device::Cpu, CostCategory::Cpu},
    {"DecodeJpeg", Device::Cpu, CostCategory::Cpu},
    {"Range", Device::Cpu, CostCategory::Cpu},
    {"Assert", Device::Cpu, CostCategory::Cpu},
}};

} // namespace

const OpTypeInfo &
opTypeInfo(OpType type)
{
    const auto idx = static_cast<std::size_t>(type);
    if (idx >= kOpTable.size())
        util::panic("opTypeInfo: invalid OpType");
    return kOpTable[idx];
}

std::string
opTypeName(OpType type)
{
    return opTypeInfo(type).name;
}

bool
opTypeFromName(const std::string &name, OpType &out)
{
    static const std::map<std::string, OpType> index = [] {
        std::map<std::string, OpType> m;
        for (std::size_t i = 0; i < kOpTable.size(); ++i)
            m.emplace(kOpTable[i].name, static_cast<OpType>(i));
        return m;
    }();
    const auto it = index.find(name);
    if (it == index.end())
        return false;
    out = it->second;
    return true;
}

const std::vector<OpType> &
allOpTypes()
{
    static const std::vector<OpType> all = [] {
        std::vector<OpType> v;
        v.reserve(opTypeCount());
        for (std::size_t i = 0; i < opTypeCount(); ++i)
            v.push_back(static_cast<OpType>(i));
        return v;
    }();
    return all;
}

} // namespace graph
} // namespace ceer
