#include "graph/summary.h"

#include <map>
#include <ostream>

#include "util/strings.h"
#include "util/table.h"

namespace ceer {
namespace graph {

namespace {

/** Strips gradient prefixes and truncates to @p depth components. */
std::string
layerKey(const std::string &name, int depth)
{
    std::string stripped = name;
    for (const char *prefix : {"grad/", "train/"}) {
        if (util::startsWith(stripped, prefix))
            stripped = stripped.substr(std::string(prefix).size());
    }
    std::string::size_type pos = 0;
    for (int level = 0; level < depth; ++level) {
        pos = stripped.find('/', pos);
        if (pos == std::string::npos)
            return stripped;
        ++pos;
    }
    return stripped.substr(0, pos - 1);
}

} // namespace

void
ModelSummary::print(std::ostream &out) const
{
    out << "model: " << model << " (" << totalOps << " ops, "
        << util::format("%.1fM", static_cast<double>(totalParams) / 1e6)
        << " params, " << util::format("%.2f", totalGflops)
        << " GFLOPs/iteration)\n";
    util::TablePrinter table({"layer", "output", "params", "fwd ops",
                              "bwd ops", "GFLOPs"});
    for (const LayerSummary &layer : layers) {
        table.addRow({layer.name, layer.outputShape.toString(),
                      std::to_string(layer.params),
                      std::to_string(layer.forwardOps),
                      std::to_string(layer.backwardOps),
                      util::format("%.3f", layer.gflops)});
    }
    table.print(out);
}

ModelSummary
summarize(const Graph &g, int depth, const NodeFlopsFn &flopsFn)
{
    ModelSummary summary;
    summary.model = g.name();
    summary.totalOps = g.size();

    std::map<std::string, std::size_t> index;
    auto layer_for = [&](const std::string &key) -> LayerSummary & {
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, summary.layers.size()).first;
            summary.layers.push_back({});
            summary.layers.back().name = key;
        }
        return summary.layers[it->second];
    };

    for (const Node &node : g.nodes()) {
        LayerSummary &layer = layer_for(layerKey(node.name, depth));
        if (node.isGradient) {
            ++layer.backwardOps;
        } else {
            ++layer.forwardOps;
            layer.outputShape = node.outputShape;
        }
        if (flopsFn) {
            const double gflops = flopsFn(node) / 1e9;
            layer.gflops += gflops;
            summary.totalGflops += gflops;
        }
    }
    for (const ParamVar &var : g.paramVars()) {
        LayerSummary &layer = layer_for(layerKey(var.name, depth));
        layer.params += var.count();
        summary.totalParams += var.count();
    }
    return summary;
}

} // namespace graph
} // namespace ceer
