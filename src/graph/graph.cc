#include "graph/graph.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace graph {

std::int64_t
Node::inputBytes() const
{
    std::int64_t total = 0;
    for (const auto &shape : inputShapes)
        total += shape.numBytes(dtype);
    return total;
}

std::int64_t
Node::outputBytes() const
{
    return outputShape.numBytes(dtype);
}

NodeId
Graph::addNode(const std::string &name, OpType type,
               const std::vector<NodeId> &inputs,
               const std::vector<TensorShape> &extraInputs,
               const TensorShape &output, const OpAttrs &attrs)
{
    Node node;
    node.id = static_cast<NodeId>(nodes_.size());
    node.type = type;
    node.attrs = attrs;
    node.outputShape = output;

    // Uniquify the name with a numeric suffix, TensorFlow-style.
    const int occurrence = nameCounts_[name]++;
    node.name = occurrence == 0
                    ? name
                    : util::format("%s_%d", name.c_str(), occurrence);

    node.inputs = inputs;
    for (NodeId input : inputs) {
        if (input < 0 || input >= node.id) {
            util::panic(util::format(
                "Graph::addNode('%s'): input id %d invalid for node %d",
                name.c_str(), input, node.id));
        }
        node.inputShapes.push_back(nodes_[input].outputShape);
    }
    for (const auto &shape : extraInputs)
        node.inputShapes.push_back(shape);

    nodes_.push_back(std::move(node));
    consumersValid_ = false;
    return nodes_.back().id;
}

void
Graph::markGradientRange(NodeId begin, NodeId end)
{
    if (begin < 0 || end < begin ||
        static_cast<std::size_t>(end) > nodes_.size())
        util::panic("Graph::markGradientRange: bad range");
    for (NodeId id = begin; id < end; ++id)
        nodes_[static_cast<std::size_t>(id)].isGradient = true;
}

std::int64_t
Graph::addParamVar(const std::string &name, const TensorShape &shape)
{
    params_.push_back(ParamVar{name, shape});
    return shape.numElements();
}

const Node &
Graph::node(NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        util::panic(util::format("Graph::node: invalid id %d", id));
    return nodes_[static_cast<std::size_t>(id)];
}

std::int64_t
Graph::totalParameters() const
{
    std::int64_t total = 0;
    for (const auto &var : params_)
        total += var.count();
    return total;
}

const std::vector<std::vector<NodeId>> &
Graph::consumers() const
{
    if (!consumersValid_) {
        consumersCache_.assign(nodes_.size(), {});
        for (const auto &node : nodes_) {
            for (NodeId input : node.inputs)
                consumersCache_[static_cast<std::size_t>(input)]
                    .push_back(node.id);
        }
        consumersValid_ = true;
    }
    return consumersCache_;
}

std::vector<OpTypeCount>
Graph::countByOpType() const
{
    std::map<OpType, std::size_t> tally;
    for (const auto &node : nodes_)
        ++tally[node.type];
    std::vector<OpTypeCount> counts;
    counts.reserve(tally.size());
    for (const auto &[type, count] : tally)
        counts.push_back({type, count});
    std::sort(counts.begin(), counts.end(),
              [](const OpTypeCount &a, const OpTypeCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.type < b.type;
              });
    return counts;
}

std::size_t
Graph::gpuOpCount() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        if (node.device() == Device::Gpu)
            ++n;
    return n;
}

std::size_t
Graph::cpuOpCount() const
{
    return nodes_.size() - gpuOpCount();
}

bool
Graph::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    std::set<std::string> names;
    for (const auto &node : nodes_) {
        if (!names.insert(node.name).second)
            return fail("duplicate node name: " + node.name);
        for (NodeId input : node.inputs) {
            if (input < 0 || input >= node.id) {
                return fail(util::format(
                    "node '%s' (%d) has out-of-order input %d",
                    node.name.c_str(), node.id, input));
            }
        }
        if (node.inputShapes.size() < node.inputs.size()) {
            return fail(util::format(
                "node '%s' has %zu input shapes for %zu inputs",
                node.name.c_str(), node.inputShapes.size(),
                node.inputs.size()));
        }
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            const Node &producer =
                nodes_[static_cast<std::size_t>(node.inputs[i])];
            if (node.inputShapes[i] != producer.outputShape) {
                return fail(util::format(
                    "node '%s' input %zu shape %s != producer '%s' "
                    "output %s",
                    node.name.c_str(), i,
                    node.inputShapes[i].toString().c_str(),
                    producer.name.c_str(),
                    producer.outputShape.toString().c_str()));
            }
        }
    }
    return true;
}

std::string
Graph::toDot() const
{
    std::string out = "digraph \"" + name_ + "\" {\n";
    out += "  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
    for (const auto &node : nodes_) {
        const bool cpu = node.device() == Device::Cpu;
        out += util::format(
            "  n%d [label=\"%s\\n%s %s\"%s];\n", node.id,
            node.name.c_str(), opTypeName(node.type).c_str(),
            node.outputShape.toString().c_str(),
            cpu ? ", style=dashed" : "");
    }
    for (const auto &node : nodes_) {
        for (NodeId input : node.inputs)
            out += util::format("  n%d -> n%d;\n", input, node.id);
    }
    out += "}\n";
    return out;
}

} // namespace graph
} // namespace ceer
