#include "graph/dtype.h"

#include "util/logging.h"

namespace ceer {
namespace graph {

std::size_t
dataTypeSize(DataType dtype)
{
    switch (dtype) {
      case DataType::Float32: return 4;
      case DataType::Float16: return 2;
      case DataType::Int32:   return 4;
      case DataType::Int64:   return 8;
      case DataType::Bool:    return 1;
    }
    util::panic("unknown DataType");
}

std::string
dataTypeName(DataType dtype)
{
    switch (dtype) {
      case DataType::Float32: return "float32";
      case DataType::Float16: return "float16";
      case DataType::Int32:   return "int32";
      case DataType::Int64:   return "int64";
      case DataType::Bool:    return "bool";
    }
    util::panic("unknown DataType");
}

} // namespace graph
} // namespace ceer
