/**
 * @file
 * Layer-level model summaries (Keras-style) derived from a training
 * graph: ops are grouped by their hierarchical name prefix into the
 * layers the builder created, with per-layer op counts, parameter
 * counts, output shapes and analytic FLOPs.
 */

#ifndef CEER_GRAPH_SUMMARY_H
#define CEER_GRAPH_SUMMARY_H

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ceer {
namespace graph {

/** Aggregated view of one layer (name-prefix group). */
struct LayerSummary
{
    std::string name;          ///< Layer prefix, e.g. "conv1".
    std::size_t forwardOps = 0;  ///< Forward nodes in the layer.
    std::size_t backwardOps = 0; ///< Gradient/optimizer nodes.
    std::int64_t params = 0;     ///< Trainable parameters.
    TensorShape outputShape;     ///< Last forward node's output.
    double gflops = 0.0;         ///< Analytic forward+backward GFLOPs.
};

/** Whole-model summary. */
struct ModelSummary
{
    std::string model;                ///< Graph name.
    std::vector<LayerSummary> layers; ///< In construction order.
    std::int64_t totalParams = 0;     ///< Sum over layers.
    double totalGflops = 0.0;         ///< Sum over layers.
    std::size_t totalOps = 0;         ///< All graph nodes.

    /** Renders an aligned table to @p out. */
    void print(std::ostream &out) const;
};

/**
 * Per-node FLOP callback. The graph layer knows nothing about
 * hardware; callers wanting FLOP columns pass e.g.
 * `[](const Node &n) { return hw::opCost(n).flops; }`.
 */
using NodeFlopsFn = std::function<double(const Node &)>;

/**
 * Builds the summary of @p g.
 *
 * @param g        A graph built by GraphBuilder (hierarchical names).
 * @param depth    Number of '/'-separated name components that define
 *                 a layer (default 1: "conv1/Conv2D" -> layer "conv1";
 *                 gradient nodes are attributed to their forward layer
 *                 by stripping the "grad/" / "train/" prefixes).
 * @param flopsFn  Optional per-node FLOP counter for the GFLOP columns
 *                 (left at zero when absent).
 */
ModelSummary summarize(const Graph &g, int depth = 1,
                       const NodeFlopsFn &flopsFn = {});

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_SUMMARY_H
