#include "graph/shape_inference.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace graph {

std::int64_t
convOutputDim(std::int64_t in, int kernel, int stride, PaddingMode padding)
{
    if (stride < 1)
        util::panic("convOutputDim: stride must be >= 1");
    if (padding == PaddingMode::Same)
        return (in + stride - 1) / stride;
    const std::int64_t effective = in - kernel + 1;
    if (effective <= 0) {
        util::panic(util::format(
            "convOutputDim: VALID padding with kernel %d larger than "
            "input %lld", kernel, static_cast<long long>(in)));
    }
    return (effective + stride - 1) / stride;
}

TensorShape
conv2dOutputShape(const TensorShape &input, std::int64_t out_channels,
                  int kernel_h, int kernel_w, int stride,
                  PaddingMode padding)
{
    if (input.rank() != 4)
        util::panic("conv2dOutputShape: input must be NHWC");
    return TensorShape::nhwc(
        input.batch(),
        convOutputDim(input.height(), kernel_h, stride, padding),
        convOutputDim(input.width(), kernel_w, stride, padding),
        out_channels);
}

TensorShape
poolOutputShape(const TensorShape &input, int window_h, int window_w,
                int stride, PaddingMode padding)
{
    if (input.rank() != 4)
        util::panic("poolOutputShape: input must be NHWC");
    return TensorShape::nhwc(
        input.batch(),
        convOutputDim(input.height(), window_h, stride, padding),
        convOutputDim(input.width(), window_w, stride, padding),
        input.channels());
}

TensorShape
concatChannelsShape(const std::vector<TensorShape> &shapes)
{
    if (shapes.empty())
        util::panic("concatChannelsShape: no inputs");
    const TensorShape &first = shapes.front();
    if (first.rank() == 2) {
        // Feature-axis concat of matrices (e.g. LSTM [x_t, h_{t-1}]).
        std::int64_t features = 0;
        for (const auto &shape : shapes) {
            if (shape.rank() != 2 || shape.batch() != first.batch()) {
                util::panic(util::format(
                    "concatChannelsShape: mismatched input %s vs %s",
                    shape.toString().c_str(),
                    first.toString().c_str()));
            }
            features += shape.dim(1);
        }
        return TensorShape::matrix(first.batch(), features);
    }
    if (first.rank() != 4)
        util::panic("concatChannelsShape: inputs must be NHWC or "
                    "rank-2");
    std::int64_t channels = 0;
    for (const auto &shape : shapes) {
        if (shape.rank() != 4 || shape.batch() != first.batch() ||
            shape.height() != first.height() ||
            shape.width() != first.width()) {
            util::panic(util::format(
                "concatChannelsShape: mismatched input %s vs %s",
                shape.toString().c_str(), first.toString().c_str()));
        }
        channels += shape.channels();
    }
    return TensorShape::nhwc(first.batch(), first.height(), first.width(),
                             channels);
}

TensorShape
flattenShape(const TensorShape &input)
{
    if (input.rank() < 2)
        util::panic("flattenShape: input must have rank >= 2");
    std::int64_t rest = 1;
    for (std::size_t i = 1; i < input.rank(); ++i)
        rest *= input.dims()[i];
    return TensorShape::matrix(input.batch(), rest);
}

} // namespace graph
} // namespace ceer
