/**
 * @file
 * Output-shape computation for conv/pool style ops (TensorFlow padding
 * semantics).
 */

#ifndef CEER_GRAPH_SHAPE_INFERENCE_H
#define CEER_GRAPH_SHAPE_INFERENCE_H

#include "graph/graph.h"
#include "graph/tensor_shape.h"

namespace ceer {
namespace graph {

/**
 * Computes one spatial output dimension.
 *
 * SAME: ceil(in / stride); VALID: ceil((in - k + 1) / stride).
 *
 * @param in      Input extent.
 * @param kernel  Filter/window extent.
 * @param stride  Stride (>= 1).
 * @param padding Padding mode.
 */
std::int64_t convOutputDim(std::int64_t in, int kernel, int stride,
                           PaddingMode padding);

/**
 * Output shape of Conv2D over an NHWC input.
 *
 * @param input        NHWC input shape.
 * @param out_channels Number of filters.
 * @param kernel_h     Filter height.
 * @param kernel_w     Filter width.
 * @param stride       Stride (both axes).
 * @param padding      Padding mode.
 */
TensorShape conv2dOutputShape(const TensorShape &input,
                              std::int64_t out_channels, int kernel_h,
                              int kernel_w, int stride,
                              PaddingMode padding);

/** Output shape of MaxPool/AvgPool over an NHWC input. */
TensorShape poolOutputShape(const TensorShape &input, int window_h,
                            int window_w, int stride, PaddingMode padding);

/** Output shape of concatenating @p shapes along the channel axis. */
TensorShape concatChannelsShape(const std::vector<TensorShape> &shapes);

/** Shape after flattening all non-batch dims: [N, rest]. */
TensorShape flattenShape(const TensorShape &input);

} // namespace graph
} // namespace ceer

#endif // CEER_GRAPH_SHAPE_INFERENCE_H
