/**
 * @file
 * Inception-v4 (Szegedy et al., 2017): the deeper, purely-inception
 * variant — 4 A-modules at 35x35, 7 B-modules at 17x17 and 3 C-modules
 * at 8x8, with dedicated reduction modules. ~43M parameters.
 */

#include "models/model_zoo.h"

#include "graph/autodiff.h"
#include "models/inception_common.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using detail::bnConv;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

namespace {

NodeId
inceptionA(GraphBuilder &b, NodeId x, const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 96, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 64, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 96, 3, 3, bnConv(), name + "/b2/3x3");

    NodeId b3 = b.conv2d(x, 64, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, 96, 3, 3, bnConv(), name + "/b3/3x3a");
    b3 = b.conv2d(b3, 96, 3, 3, bnConv(), name + "/b3/3x3b");

    NodeId b4 = b.avgPool(x, 3, 1, PaddingMode::Same, name + "/b4/pool");
    b4 = b.conv2d(b4, 96, 1, 1, bnConv(), name + "/b4/1x1");

    return b.concat({b1, b2, b3, b4}, name + "/concat");
}

NodeId
reductionA(GraphBuilder &b, NodeId x, const std::string &name)
{
    // (k, l, m, n) = (192, 224, 256, 384) for Inception-v4.
    const NodeId b1 = b.conv2d(x, 384, 3, 3,
                               bnConv(2, PaddingMode::Valid),
                               name + "/b1/3x3");

    NodeId b2 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 224, 3, 3, bnConv(), name + "/b2/3x3a");
    b2 = b.conv2d(b2, 256, 3, 3, bnConv(2, PaddingMode::Valid),
                  name + "/b2/3x3b");

    const NodeId b3 = b.maxPool(x, 3, 2, PaddingMode::Valid,
                                name + "/b3/pool");
    return b.concat({b1, b2, b3}, name + "/concat");
}

NodeId
inceptionB(GraphBuilder &b, NodeId x, const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 384, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 224, 1, 7, bnConv(), name + "/b2/1x7");
    b2 = b.conv2d(b2, 256, 7, 1, bnConv(), name + "/b2/7x1");

    NodeId b3 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, 192, 7, 1, bnConv(), name + "/b3/7x1a");
    b3 = b.conv2d(b3, 224, 1, 7, bnConv(), name + "/b3/1x7a");
    b3 = b.conv2d(b3, 224, 7, 1, bnConv(), name + "/b3/7x1b");
    b3 = b.conv2d(b3, 256, 1, 7, bnConv(), name + "/b3/1x7b");

    NodeId b4 = b.avgPool(x, 3, 1, PaddingMode::Same, name + "/b4/pool");
    b4 = b.conv2d(b4, 128, 1, 1, bnConv(), name + "/b4/1x1");

    return b.concat({b1, b2, b3, b4}, name + "/concat");
}

NodeId
reductionB(GraphBuilder &b, NodeId x, const std::string &name)
{
    NodeId b1 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b1/1x1");
    b1 = b.conv2d(b1, 192, 3, 3, bnConv(2, PaddingMode::Valid),
                  name + "/b1/3x3");

    NodeId b2 = b.conv2d(x, 256, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 256, 1, 7, bnConv(), name + "/b2/1x7");
    b2 = b.conv2d(b2, 320, 7, 1, bnConv(), name + "/b2/7x1");
    b2 = b.conv2d(b2, 320, 3, 3, bnConv(2, PaddingMode::Valid),
                  name + "/b2/3x3");

    const NodeId b3 = b.maxPool(x, 3, 2, PaddingMode::Valid,
                                name + "/b3/pool");
    return b.concat({b1, b2, b3}, name + "/concat");
}

NodeId
inceptionC(GraphBuilder &b, NodeId x, const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 256, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 384, 1, 1, bnConv(), name + "/b2/1x1");
    const NodeId b2a =
        b.conv2d(b2, 256, 1, 3, bnConv(), name + "/b2/1x3");
    const NodeId b2b =
        b.conv2d(b2, 256, 3, 1, bnConv(), name + "/b2/3x1");

    NodeId b3 = b.conv2d(x, 384, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, 448, 3, 1, bnConv(), name + "/b3/3x1");
    b3 = b.conv2d(b3, 512, 1, 3, bnConv(), name + "/b3/1x3");
    const NodeId b3a =
        b.conv2d(b3, 256, 1, 3, bnConv(), name + "/b3/out1x3");
    const NodeId b3b =
        b.conv2d(b3, 256, 3, 1, bnConv(), name + "/b3/out3x1");

    NodeId b4 = b.avgPool(x, 3, 1, PaddingMode::Same, name + "/b4/pool");
    b4 = b.conv2d(b4, 256, 1, 1, bnConv(), name + "/b4/1x1");

    return b.concat({b1, b2a, b2b, b3a, b3b, b4}, name + "/concat");
}

} // namespace

graph::Graph
buildInceptionV4(std::int64_t batch)
{
    GraphBuilder b("inception_v4", batch);
    NodeId x = detail::inceptionV4Stem(b);

    for (int i = 0; i < 4; ++i)
        x = inceptionA(b, x, util::format("mixed_5%c", 'b' + i));
    x = reductionA(b, x, "mixed_6a");
    for (int i = 0; i < 7; ++i)
        x = inceptionB(b, x, util::format("mixed_6%c", 'b' + i));
    x = reductionB(b, x, "mixed_7a");
    for (int i = 0; i < 3; ++i)
        x = inceptionC(b, x, util::format("mixed_7%c", 'b' + i));

    x = b.globalAvgPool(x, "pool");
    x = b.dropout(x, "drop");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "logits");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
