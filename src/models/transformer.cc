/**
 * @file
 * A BERT-base-style Transformer encoder for sequence classification.
 *
 * NOT part of the paper's 12-CNN zoo: the paper (Sec. VI) explicitly
 * leaves RNNs/Transformers as future work and notes that Ceer cannot
 * predict models containing heavy operations unseen during training
 * (Sec. IV-D). This model exists to exercise exactly that limitation:
 * its BatchMatMul / LayerNorm / Gelu / Gather kernels never appear in
 * the CNN training set (see bench/ext_unseen_ops).
 *
 * Configuration (BERT-base): 12 layers, d_model 768, 12 heads,
 * feed-forward 3072, sequence length 128, vocab 30522 -> ~110M
 * trainable parameters.
 */

#include "models/model_zoo.h"

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

namespace {

constexpr int kLayers = 12;
constexpr std::int64_t kModelDim = 768;
constexpr std::int64_t kHeads = 12;
constexpr std::int64_t kFeedForward = 3072;
constexpr int kSeqLen = 128;
constexpr std::int64_t kVocab = 30522;

/**
 * One encoder layer over a [N*S, d] activation; returns the same
 * shape. Post-norm residual structure, as in the original BERT.
 */
NodeId
encoderLayer(GraphBuilder &b, NodeId x, std::int64_t batch,
             const std::string &name)
{
    const std::int64_t head_dim = kModelDim / kHeads;
    const TensorShape heads_shape{batch * kHeads, kSeqLen, head_dim};
    const TensorShape scores_shape{batch * kHeads, kSeqLen, kSeqLen};
    const TensorShape flat_shape =
        TensorShape::matrix(batch * kSeqLen, kModelDim);

    // Q, K, V projections (dense layers over the token axis).
    const NodeId q = b.reshape(
        b.fullyConnected(x, kModelDim, false, name + "/att/q"),
        heads_shape, name + "/att/q_heads");
    const NodeId k = b.reshape(
        b.fullyConnected(x, kModelDim, false, name + "/att/k"),
        heads_shape, name + "/att/k_heads");
    const NodeId v = b.reshape(
        b.fullyConnected(x, kModelDim, false, name + "/att/v"),
        heads_shape, name + "/att/v_heads");

    // Attention: scores = QK' / sqrt(d), softmax, context = scores V.
    NodeId scores = b.batchMatMul(q, k, scores_shape, name + "/att/qk");
    scores = b.scale(scores, name + "/att/scale");
    const NodeId probs = b.graph().addNode(
        name + "/att/Softmax", graph::OpType::Softmax, {scores}, {},
        scores_shape);
    NodeId context =
        b.batchMatMul(probs, v, heads_shape, name + "/att/ctx");
    context = b.reshape(context, flat_shape, name + "/att/merge");
    context = b.fullyConnected(context, kModelDim, false,
                               name + "/att/out");

    // Residual + layer norm.
    NodeId attended = b.add(x, context, name + "/att/residual");
    attended = b.layerNorm(attended, name + "/att");

    // Feed-forward block with GELU.
    NodeId ff = b.fullyConnected(attended, kFeedForward, false,
                                 name + "/ff/in");
    ff = b.gelu(ff, name + "/ff");
    ff = b.fullyConnected(ff, kModelDim, false, name + "/ff/out");

    NodeId out = b.add(attended, ff, name + "/ff/residual");
    return b.layerNorm(out, name + "/ff");
}

} // namespace

graph::Graph
buildTransformerEncoder(std::int64_t batch)
{
    GraphBuilder b("transformer_encoder", batch);
    const NodeId tokens = b.tokenInput(kSeqLen);

    NodeId x = b.embedding(tokens, kVocab, kModelDim, "embeddings");
    x = b.positionalEmbedding(x, "positions");
    x = b.layerNorm(x, "embeddings");
    x = b.reshape(x, TensorShape::matrix(batch * kSeqLen, kModelDim),
                  "flatten_tokens");

    for (int layer = 0; layer < kLayers; ++layer)
        x = encoderLayer(b, x, batch,
                         util::format("layer_%d", layer));

    // BERT-style pooler over the leading token, then a 2-class head.
    x = b.reshape(x, TensorShape{batch, kSeqLen, kModelDim},
                  "unflatten_tokens");
    NodeId pooled = b.firstToken(x, "pooler");
    pooled = b.fullyConnected(pooled, kModelDim, false, "pooler/dense");
    pooled = b.tanh(pooled, "pooler");
    const NodeId logits =
        b.fullyConnected(pooled, 2, false, "classifier");

    const NodeId loss = b.softmaxLoss(logits);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
