/**
 * @file
 * AlexNet (Krizhevsky et al., 2012): five convolutions with LRN and
 * max pooling, followed by three fully connected layers with dropout.
 * No batch normalization — conv layers use biases, which is why AlexNet
 * stresses BiasAdd/BiasAddGrad and the FC MatMuls rather than
 * FusedBatchNorm kernels.
 */

#include "models/model_zoo.h"

#include "graph/autodiff.h"
#include "graph/builder.h"

namespace ceer {
namespace models {

using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

graph::Graph
buildAlexNet(std::int64_t batch)
{
    GraphBuilder b("alexnet", batch);
    NodeId x = b.imageInput(227, 227, 3);
    x = b.transpose(x, "data_format");

    ConvOptions biased;
    biased.batchNorm = false;
    biased.bias = true;
    biased.relu = true;

    ConvOptions conv1 = biased;
    conv1.strideH = conv1.strideW = 4;
    conv1.padding = PaddingMode::Valid;
    x = b.conv2d(x, 96, 11, 11, conv1, "conv1");
    x = b.lrn(x, "norm1");
    x = b.maxPool(x, 3, 2, PaddingMode::Valid, "pool1");

    x = b.conv2d(x, 256, 5, 5, biased, "conv2");
    x = b.lrn(x, "norm2");
    x = b.maxPool(x, 3, 2, PaddingMode::Valid, "pool2");

    x = b.conv2d(x, 384, 3, 3, biased, "conv3");
    x = b.conv2d(x, 384, 3, 3, biased, "conv4");
    x = b.conv2d(x, 256, 3, 3, biased, "conv5");
    x = b.maxPool(x, 3, 2, PaddingMode::Valid, "pool5");

    x = b.fullyConnected(x, 4096, /*relu=*/true, "fc6");
    x = b.dropout(x, "drop6");
    x = b.fullyConnected(x, 4096, /*relu=*/true, "fc7");
    x = b.dropout(x, "drop7");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "fc8");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
