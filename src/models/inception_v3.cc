/**
 * @file
 * Inception-v3 (Szegedy et al., 2016): 299x299 input, batch-normalized
 * convolutions, and factorized nxn -> 1xn + nx1 modules. A test-set
 * model in the paper (Figs. 8, 11, 12). ~24M parameters.
 */

#include "models/model_zoo.h"

#include <vector>

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

namespace {

ConvOptions
bnConv(int stride = 1, PaddingMode padding = PaddingMode::Same)
{
    ConvOptions options;
    options.batchNorm = true;
    options.bias = false;
    options.relu = true;
    options.strideH = options.strideW = stride;
    options.padding = padding;
    return options;
}

/** 35x35 module (Inception-A): 1x1 | 5x5 | double 3x3 | avgpool. */
NodeId
inceptionA(GraphBuilder &b, NodeId x, int pool_channels,
           const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 64, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 48, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 64, 5, 5, bnConv(), name + "/b2/5x5");

    NodeId b3 = b.conv2d(x, 64, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, 96, 3, 3, bnConv(), name + "/b3/3x3a");
    b3 = b.conv2d(b3, 96, 3, 3, bnConv(), name + "/b3/3x3b");

    NodeId b4 = b.avgPool(x, 3, 1, PaddingMode::Same, name + "/b4/pool");
    b4 = b.conv2d(b4, pool_channels, 1, 1, bnConv(), name + "/b4/1x1");

    return b.concat({b1, b2, b3, b4}, name + "/concat");
}

/** 35x35 -> 17x17 grid reduction. */
NodeId
reductionA(GraphBuilder &b, NodeId x, const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 384, 3, 3,
                               bnConv(2, PaddingMode::Valid),
                               name + "/b1/3x3");

    NodeId b2 = b.conv2d(x, 64, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 96, 3, 3, bnConv(), name + "/b2/3x3a");
    b2 = b.conv2d(b2, 96, 3, 3, bnConv(2, PaddingMode::Valid),
                  name + "/b2/3x3b");

    const NodeId b3 = b.maxPool(x, 3, 2, PaddingMode::Valid,
                                name + "/b3/pool");

    return b.concat({b1, b2, b3}, name + "/concat");
}

/** 17x17 module (Inception-B) with factorized 7x7 convolutions. */
NodeId
inceptionB(GraphBuilder &b, NodeId x, int mid, const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, mid, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, mid, 1, 7, bnConv(), name + "/b2/1x7");
    b2 = b.conv2d(b2, 192, 7, 1, bnConv(), name + "/b2/7x1");

    NodeId b3 = b.conv2d(x, mid, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, mid, 7, 1, bnConv(), name + "/b3/7x1a");
    b3 = b.conv2d(b3, mid, 1, 7, bnConv(), name + "/b3/1x7a");
    b3 = b.conv2d(b3, mid, 7, 1, bnConv(), name + "/b3/7x1b");
    b3 = b.conv2d(b3, 192, 1, 7, bnConv(), name + "/b3/1x7b");

    NodeId b4 = b.avgPool(x, 3, 1, PaddingMode::Same, name + "/b4/pool");
    b4 = b.conv2d(b4, 192, 1, 1, bnConv(), name + "/b4/1x1");

    return b.concat({b1, b2, b3, b4}, name + "/concat");
}

/** 17x17 -> 8x8 grid reduction. */
NodeId
reductionB(GraphBuilder &b, NodeId x, const std::string &name)
{
    NodeId b1 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b1/1x1");
    b1 = b.conv2d(b1, 320, 3, 3, bnConv(2, PaddingMode::Valid),
                  name + "/b1/3x3");

    NodeId b2 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 192, 1, 7, bnConv(), name + "/b2/1x7");
    b2 = b.conv2d(b2, 192, 7, 1, bnConv(), name + "/b2/7x1");
    b2 = b.conv2d(b2, 192, 3, 3, bnConv(2, PaddingMode::Valid),
                  name + "/b2/3x3");

    const NodeId b3 = b.maxPool(x, 3, 2, PaddingMode::Valid,
                                name + "/b3/pool");

    return b.concat({b1, b2, b3}, name + "/concat");
}

/** 8x8 module (Inception-C) with expanded 1x3/3x1 outputs. */
NodeId
inceptionC(GraphBuilder &b, NodeId x, const std::string &name)
{
    const NodeId b1 = b.conv2d(x, 320, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 384, 1, 1, bnConv(), name + "/b2/1x1");
    const NodeId b2a =
        b.conv2d(b2, 384, 1, 3, bnConv(), name + "/b2/1x3");
    const NodeId b2b =
        b.conv2d(b2, 384, 3, 1, bnConv(), name + "/b2/3x1");

    NodeId b3 = b.conv2d(x, 448, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, 384, 3, 3, bnConv(), name + "/b3/3x3");
    const NodeId b3a =
        b.conv2d(b3, 384, 1, 3, bnConv(), name + "/b3/1x3");
    const NodeId b3b =
        b.conv2d(b3, 384, 3, 1, bnConv(), name + "/b3/3x1");

    NodeId b4 = b.avgPool(x, 3, 1, PaddingMode::Same, name + "/b4/pool");
    b4 = b.conv2d(b4, 192, 1, 1, bnConv(), name + "/b4/1x1");

    return b.concat({b1, b2a, b2b, b3a, b3b, b4}, name + "/concat");
}

} // namespace

graph::Graph
buildInceptionV3(std::int64_t batch)
{
    GraphBuilder b("inception_v3", batch);
    NodeId x = b.imageInput(299, 299, 3);
    x = b.transpose(x, "data_format");

    // Stem: 299 -> 35x35x192.
    x = b.conv2d(x, 32, 3, 3, bnConv(2, PaddingMode::Valid),
                 "conv1a");
    x = b.conv2d(x, 32, 3, 3, bnConv(1, PaddingMode::Valid), "conv1b");
    x = b.conv2d(x, 64, 3, 3, bnConv(), "conv1c");
    x = b.maxPool(x, 3, 2, PaddingMode::Valid, "pool1");
    x = b.conv2d(x, 80, 1, 1, bnConv(1, PaddingMode::Valid), "conv2a");
    x = b.conv2d(x, 192, 3, 3, bnConv(1, PaddingMode::Valid), "conv2b");
    x = b.maxPool(x, 3, 2, PaddingMode::Valid, "pool2");

    // 3x Inception-A at 35x35.
    x = inceptionA(b, x, 32, "mixed_5b");
    x = inceptionA(b, x, 64, "mixed_5c");
    x = inceptionA(b, x, 64, "mixed_5d");

    x = reductionA(b, x, "mixed_6a");

    // 4x Inception-B at 17x17.
    x = inceptionB(b, x, 128, "mixed_6b");
    x = inceptionB(b, x, 160, "mixed_6c");
    x = inceptionB(b, x, 160, "mixed_6d");
    x = inceptionB(b, x, 192, "mixed_6e");

    x = reductionB(b, x, "mixed_7a");

    // 2x Inception-C at 8x8.
    x = inceptionC(b, x, "mixed_7b");
    x = inceptionC(b, x, "mixed_7c");

    x = b.globalAvgPool(x, "pool3");
    x = b.dropout(x, "drop");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "logits");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
