/**
 * @file
 * GoogLeNet / Inception-v1 (Szegedy et al., 2015): LRN stem and nine
 * inception modules, each with four parallel branches concatenated on
 * the channel axis. At ~6.6M parameters it anchors the low end of the
 * paper's Fig. 7 parameter-count axis, and it is the CNN used for the
 * data-parallel scaling study (Fig. 6).
 */

#include "models/model_zoo.h"

#include <vector>

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

namespace {

ConvOptions
biasedConv(int stride = 1, PaddingMode padding = PaddingMode::Same)
{
    ConvOptions options;
    options.batchNorm = false;
    options.bias = true;
    options.relu = true;
    options.strideH = options.strideW = stride;
    options.padding = padding;
    return options;
}

/**
 * Classic inception module: 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1.
 */
NodeId
inceptionModule(GraphBuilder &b, NodeId x, int c1, int c3r, int c3,
                int c5r, int c5, int cp, const std::string &name)
{
    const NodeId branch1 =
        b.conv2d(x, c1, 1, 1, biasedConv(), name + "/b1/conv");

    NodeId branch2 = b.conv2d(x, c3r, 1, 1, biasedConv(),
                              name + "/b2/reduce");
    branch2 = b.conv2d(branch2, c3, 3, 3, biasedConv(),
                       name + "/b2/conv");

    NodeId branch3 = b.conv2d(x, c5r, 1, 1, biasedConv(),
                              name + "/b3/reduce");
    branch3 = b.conv2d(branch3, c5, 5, 5, biasedConv(),
                       name + "/b3/conv");

    NodeId branch4 = b.maxPool(x, 3, 1, PaddingMode::Same,
                               name + "/b4/pool");
    branch4 = b.conv2d(branch4, cp, 1, 1, biasedConv(),
                       name + "/b4/conv");

    return b.concat({branch1, branch2, branch3, branch4},
                    name + "/concat");
}

} // namespace

graph::Graph
buildInceptionV1(std::int64_t batch)
{
    GraphBuilder b("inception_v1", batch);
    NodeId x = b.imageInput(224, 224, 3);
    x = b.transpose(x, "data_format");

    ConvOptions stem = biasedConv(2);
    x = b.conv2d(x, 64, 7, 7, stem, "conv1");
    x = b.maxPool(x, 3, 2, PaddingMode::Same, "pool1");
    x = b.lrn(x, "norm1");
    x = b.conv2d(x, 64, 1, 1, biasedConv(), "conv2/reduce");
    x = b.conv2d(x, 192, 3, 3, biasedConv(), "conv2");
    x = b.lrn(x, "norm2");
    x = b.maxPool(x, 3, 2, PaddingMode::Same, "pool2");

    x = inceptionModule(b, x, 64, 96, 128, 16, 32, 32, "mixed3a");
    x = inceptionModule(b, x, 128, 128, 192, 32, 96, 64, "mixed3b");
    x = b.maxPool(x, 3, 2, PaddingMode::Same, "pool3");

    x = inceptionModule(b, x, 192, 96, 208, 16, 48, 64, "mixed4a");
    x = inceptionModule(b, x, 160, 112, 224, 24, 64, 64, "mixed4b");
    x = inceptionModule(b, x, 128, 128, 256, 24, 64, 64, "mixed4c");
    x = inceptionModule(b, x, 112, 144, 288, 32, 64, 64, "mixed4d");
    x = inceptionModule(b, x, 256, 160, 320, 32, 128, 128, "mixed4e");
    x = b.maxPool(x, 3, 2, PaddingMode::Same, "pool4");

    x = inceptionModule(b, x, 256, 160, 320, 32, 128, 128, "mixed5a");
    x = inceptionModule(b, x, 384, 192, 384, 48, 128, 128, "mixed5b");

    x = b.globalAvgPool(x, "pool5");
    x = b.dropout(x, "drop");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "logits");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
