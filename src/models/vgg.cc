/**
 * @file
 * VGG (Simonyan & Zisserman, 2014), configurations A (11 layers),
 * D (16) and E (19). Uniform 3x3 convolutions with biases (no batch
 * norm), 2x2 max pools, and the three large FC layers that give VGG its
 * ~130-145M parameter counts — the top of the paper's Fig. 7 x-axis.
 */

#include "models/model_zoo.h"

#include <vector>

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

graph::Graph
buildVgg(int layers, std::int64_t batch)
{
    // Convs per stage for the five stages (channel widths 64..512).
    std::vector<int> convs_per_stage;
    switch (layers) {
      case 11: convs_per_stage = {1, 1, 2, 2, 2}; break;
      case 16: convs_per_stage = {2, 2, 3, 3, 3}; break;
      case 19: convs_per_stage = {2, 2, 4, 4, 4}; break;
      default:
        util::fatal(util::format("buildVgg: unsupported depth %d "
                                 "(use 11, 16 or 19)", layers));
    }
    const int widths[5] = {64, 128, 256, 512, 512};

    GraphBuilder b(util::format("vgg_%d", layers), batch);
    NodeId x = b.imageInput(224, 224, 3);
    x = b.transpose(x, "data_format");

    ConvOptions biased;
    biased.batchNorm = false;
    biased.bias = true;
    biased.relu = true;

    for (int stage = 0; stage < 5; ++stage) {
        for (int i = 0; i < convs_per_stage[stage]; ++i) {
            x = b.conv2d(x, widths[stage], 3, 3, biased,
                         util::format("conv%d_%d", stage + 1, i + 1));
        }
        x = b.maxPool(x, 2, 2, PaddingMode::Valid,
                      util::format("pool%d", stage + 1));
    }

    x = b.fullyConnected(x, 4096, /*relu=*/true, "fc6");
    x = b.dropout(x, "drop6");
    x = b.fullyConnected(x, 4096, /*relu=*/true, "fc7");
    x = b.dropout(x, "drop7");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "fc8");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
