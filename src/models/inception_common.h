/**
 * @file
 * Shared helpers for the Inception-v4 family (Szegedy et al., 2017):
 * the batch-normalized conv options and the common v4 stem used by both
 * Inception-v4 and Inception-ResNet-v2.
 */

#ifndef CEER_MODELS_INCEPTION_COMMON_H
#define CEER_MODELS_INCEPTION_COMMON_H

#include "graph/builder.h"

namespace ceer {
namespace models {
namespace detail {

/** BN + ReLU convolution options (no bias). */
inline graph::ConvOptions
bnConv(int stride = 1,
       graph::PaddingMode padding = graph::PaddingMode::Same)
{
    graph::ConvOptions options;
    options.batchNorm = true;
    options.bias = false;
    options.relu = true;
    options.strideH = options.strideW = stride;
    options.padding = padding;
    return options;
}

/**
 * Inception-v4 stem: 299x299x3 -> 35x35x384 through two filter-concat
 * branch points.
 */
graph::NodeId inceptionV4Stem(graph::GraphBuilder &b);

} // namespace detail
} // namespace models
} // namespace ceer

#endif // CEER_MODELS_INCEPTION_COMMON_H
