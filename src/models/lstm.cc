/**
 * @file
 * A two-layer-free, single-cell LSTM sequence classifier (paper
 * Sec. VI: RNNs are explicitly future work).
 *
 * Unrolled BPTT over 64 time steps: per step a feature concat
 * [x_t, h_{t-1}], one fused-gate MatMul (the 4 gates computed in one
 * [1024, 2048] product, as cuDNN-era kernels do), gate nonlinearities
 * and the cell-state update. Unlike the Transformer, almost every
 * kernel here (MatMul, ConcatV2, Slice, Mul, AddV2) is already covered
 * by CNN training profiles — only Sigmoid is new, and it is light —
 * so a CNN-trained Ceer predicts this model far better than the
 * Transformer (see bench/ext_unseen_ops).
 *
 * Modeling note: each step emits its own weight-gradient MatMul and
 * update op, where TF's BPTT would sum the 64 step gradients into one
 * update. The extra update ops are launch-only (Trivial category), so
 * the timing difference is negligible; parameter counts are exact
 * because variables are registered once.
 */

#include "models/model_zoo.h"

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TensorShape;

namespace {

constexpr int kSteps = 64;
constexpr std::int64_t kEmbedDim = 512;
constexpr std::int64_t kHiddenDim = 512;
constexpr std::int64_t kVocab = 10000;

} // namespace

graph::Graph
buildLstmClassifier(std::int64_t batch)
{
    GraphBuilder b("lstm_classifier", batch);
    const NodeId tokens = b.tokenInput(kSteps);
    const NodeId embedded =
        b.embedding(tokens, kVocab, kEmbedDim, "embeddings");

    // Fused gate weights [x_t ; h] -> [i f g o], registered once.
    const TensorShape gate_weights{kEmbedDim + kHiddenDim,
                                   4 * kHiddenDim};
    const TensorShape gate_bias = TensorShape::vector(4 * kHiddenDim);
    b.graph().addParamVar("cell/weights", gate_weights);
    b.graph().addParamVar("cell/bias", gate_bias);

    const TensorShape state = TensorShape::matrix(batch, kHiddenDim);
    const TensorShape gates = TensorShape::matrix(batch,
                                                  4 * kHiddenDim);

    NodeId h = b.graph().addNode("cell/h0", graph::OpType::Fill, {}, {},
                                 state);
    NodeId c = b.graph().addNode("cell/c0", graph::OpType::Fill, {}, {},
                                 state);

    graph::OpAttrs matmul_attrs;
    matmul_attrs.filterShape = gate_weights;
    graph::OpAttrs bias_attrs;
    bias_attrs.filterShape = gate_bias;

    for (int t = 0; t < kSteps; ++t) {
        const std::string step = util::format("step_%02d", t);
        const NodeId x = b.timeStep(embedded, step + "/input");
        const NodeId xh = b.concat({x, h}, step);
        const NodeId preact = b.graph().addNode(
            step + "/gates/MatMul", graph::OpType::MatMul, {xh},
            {gate_weights}, gates, matmul_attrs);
        const NodeId biased = b.graph().addNode(
            step + "/gates/BiasAdd", graph::OpType::BiasAdd, {preact},
            {gate_bias}, gates, bias_attrs);

        // Gate slices: input, forget, output, candidate.
        auto gate = [&](const char *name) {
            return b.graph().addNode(
                step + "/" + name + "/Slice", graph::OpType::Slice,
                {biased}, {}, state);
        };
        const NodeId input_gate =
            b.sigmoid(gate("i"), step + "/i");
        const NodeId forget_gate =
            b.sigmoid(gate("f"), step + "/f");
        const NodeId output_gate =
            b.sigmoid(gate("o"), step + "/o");
        const NodeId candidate = b.tanh(gate("g"), step + "/g");

        // c_t = f * c + i * g; h_t = o * tanh(c_t).
        const NodeId keep = b.graph().addNode(
            step + "/keep/Mul", graph::OpType::Mul, {forget_gate, c},
            {}, state);
        const NodeId write = b.graph().addNode(
            step + "/write/Mul", graph::OpType::Mul,
            {input_gate, candidate}, {}, state);
        c = b.add(keep, write, step + "/cell");
        const NodeId cell_act = b.tanh(c, step + "/cell");
        h = b.graph().addNode(step + "/h/Mul", graph::OpType::Mul,
                              {output_gate, cell_act}, {}, state);
    }

    const NodeId logits = b.fullyConnected(h, 2, false, "classifier");
    const NodeId loss = b.softmaxLoss(logits);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
