/**
 * @file
 * ResNet-v2 (He et al., 2016) with pre-activation bottleneck blocks.
 * Depths 50/101/152/200 differ only in the per-stage block counts.
 * ResNets are AddV2/AddN-heavy (the shortcut connections) and
 * FusedBatchNorm-heavy, with few pooling ops — the property the paper
 * uses to explain why G4 beats P3 on cost for ResNet-101 (Sec. V).
 */

#include "models/model_zoo.h"

#include <vector>

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

namespace {

/** Raw convolution: no BN, no bias, no activation (pre-activation). */
ConvOptions
rawConv(int stride)
{
    ConvOptions options;
    options.batchNorm = false;
    options.bias = false;
    options.relu = false;
    options.strideH = options.strideW = stride;
    return options;
}

/**
 * One pre-activation bottleneck block: BN-ReLU, then 1x1/3x3/1x1 convs
 * of widths w/w/4w, plus identity or projection shortcut.
 */
NodeId
bottleneckBlock(GraphBuilder &b, NodeId x, int width, int stride,
                bool project, const std::string &name)
{
    NodeId preact = b.batchNorm(x, name + "/preact");
    preact = b.relu(preact, name + "/preact");

    NodeId shortcut = x;
    if (project) {
        shortcut =
            b.conv2d(preact, 4 * width, 1, 1, rawConv(stride),
                     name + "/shortcut");
    }

    NodeId y = b.conv2d(preact, width, 1, 1, rawConv(1), name + "/conv1");
    y = b.batchNorm(y, name + "/conv1");
    y = b.relu(y, name + "/conv1");
    y = b.conv2d(y, width, 3, 3, rawConv(stride), name + "/conv2");
    y = b.batchNorm(y, name + "/conv2");
    y = b.relu(y, name + "/conv2");
    y = b.conv2d(y, 4 * width, 1, 1, rawConv(1), name + "/conv3");

    return b.add(shortcut, y, name + "/add");
}

} // namespace

graph::Graph
buildResNetV2(int layers, std::int64_t batch)
{
    std::vector<int> blocks_per_stage;
    switch (layers) {
      case 50:  blocks_per_stage = {3, 4, 6, 3}; break;
      case 101: blocks_per_stage = {3, 4, 23, 3}; break;
      case 152: blocks_per_stage = {3, 8, 36, 3}; break;
      case 200: blocks_per_stage = {3, 24, 36, 3}; break;
      default:
        util::fatal(util::format("buildResNetV2: unsupported depth %d "
                                 "(use 50, 101, 152 or 200)", layers));
    }
    const int widths[4] = {64, 128, 256, 512};

    GraphBuilder b(util::format("resnet_%d", layers), batch);
    NodeId x = b.imageInput(224, 224, 3);
    x = b.transpose(x, "data_format");

    // Stem, TF-official style: explicit 3-pixel Pad, then a VALID
    // 7x7/2 conv (224 -> 230 -> 112) and a 3x3/2 max pool -> 56x56.
    x = b.pad(x, 3, "conv1_pad");
    ConvOptions stem = rawConv(2);
    stem.padding = PaddingMode::Valid;
    x = b.conv2d(x, 64, 7, 7, stem, "conv1");
    x = b.maxPool(x, 3, 2, PaddingMode::Same, "pool1");

    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < blocks_per_stage[stage]; ++block) {
            // Downsample at the first block of stages 2-4.
            const int stride = (stage > 0 && block == 0) ? 2 : 1;
            const bool project = block == 0;
            x = bottleneckBlock(
                b, x, widths[stage], stride, project,
                util::format("stage%d/block%d", stage + 1, block + 1));
        }
    }

    x = b.batchNorm(x, "postnorm");
    x = b.relu(x, "postnorm");
    x = b.globalAvgPool(x, "pool5");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "logits");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
