/**
 * @file
 * Inception-ResNet-v2 (Szegedy et al., 2017): inception branches whose
 * concatenated output is projected with a 1x1 conv, scaled, and added
 * back to the input (residual shortcut). Mixes the ConcatV2-heavy and
 * AddV2-heavy op profiles of the two families. ~56M parameters.
 */

#include "models/model_zoo.h"

#include "graph/autodiff.h"
#include "models/inception_common.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using detail::bnConv;
using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

namespace {

/** 1x1 projection conv without activation (residual branch output). */
ConvOptions
projConv()
{
    ConvOptions options;
    options.batchNorm = false;
    options.bias = true;
    options.relu = false;
    return options;
}

/** 35x35 residual module (block35). */
NodeId
block35(GraphBuilder &b, NodeId x, const std::string &name)
{
    const std::int64_t channels = b.shapeOf(x).channels();

    const NodeId b1 = b.conv2d(x, 32, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 32, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 32, 3, 3, bnConv(), name + "/b2/3x3");

    NodeId b3 = b.conv2d(x, 32, 1, 1, bnConv(), name + "/b3/1x1");
    b3 = b.conv2d(b3, 48, 3, 3, bnConv(), name + "/b3/3x3a");
    b3 = b.conv2d(b3, 64, 3, 3, bnConv(), name + "/b3/3x3b");

    NodeId mixed = b.concat({b1, b2, b3}, name + "/concat");
    mixed = b.conv2d(mixed, channels, 1, 1, projConv(), name + "/proj");
    mixed = b.scale(mixed, name + "/scale");
    NodeId out = b.add(x, mixed, name + "/residual");
    return b.relu(out, name + "/out");
}

/** 17x17 residual module (block17). */
NodeId
block17(GraphBuilder &b, NodeId x, const std::string &name)
{
    const std::int64_t channels = b.shapeOf(x).channels();

    const NodeId b1 =
        b.conv2d(x, 192, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 128, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 160, 1, 7, bnConv(), name + "/b2/1x7");
    b2 = b.conv2d(b2, 192, 7, 1, bnConv(), name + "/b2/7x1");

    NodeId mixed = b.concat({b1, b2}, name + "/concat");
    mixed = b.conv2d(mixed, channels, 1, 1, projConv(), name + "/proj");
    mixed = b.scale(mixed, name + "/scale");
    NodeId out = b.add(x, mixed, name + "/residual");
    return b.relu(out, name + "/out");
}

/** 8x8 residual module (block8). */
NodeId
block8(GraphBuilder &b, NodeId x, const std::string &name)
{
    const std::int64_t channels = b.shapeOf(x).channels();

    const NodeId b1 =
        b.conv2d(x, 192, 1, 1, bnConv(), name + "/b1/1x1");

    NodeId b2 = b.conv2d(x, 192, 1, 1, bnConv(), name + "/b2/1x1");
    b2 = b.conv2d(b2, 224, 1, 3, bnConv(), name + "/b2/1x3");
    b2 = b.conv2d(b2, 256, 3, 1, bnConv(), name + "/b2/3x1");

    NodeId mixed = b.concat({b1, b2}, name + "/concat");
    mixed = b.conv2d(mixed, channels, 1, 1, projConv(), name + "/proj");
    mixed = b.scale(mixed, name + "/scale");
    NodeId out = b.add(x, mixed, name + "/residual");
    return b.relu(out, name + "/out");
}

} // namespace

graph::Graph
buildInceptionResNetV2(std::int64_t batch)
{
    GraphBuilder b("inception_resnet_v2", batch);
    NodeId x = detail::inceptionV4Stem(b);

    for (int i = 0; i < 10; ++i)
        x = block35(b, x, util::format("block35_%d", i + 1));

    // Reduction-A with (k, l, m, n) = (256, 256, 384, 384).
    {
        const NodeId b1 = b.conv2d(x, 384, 3, 3,
                                   bnConv(2, PaddingMode::Valid),
                                   "reduction_a/b1/3x3");
        NodeId b2 =
            b.conv2d(x, 256, 1, 1, bnConv(), "reduction_a/b2/1x1");
        b2 = b.conv2d(b2, 256, 3, 3, bnConv(), "reduction_a/b2/3x3a");
        b2 = b.conv2d(b2, 384, 3, 3, bnConv(2, PaddingMode::Valid),
                      "reduction_a/b2/3x3b");
        const NodeId b3 = b.maxPool(x, 3, 2, PaddingMode::Valid,
                                    "reduction_a/pool");
        x = b.concat({b1, b2, b3}, "reduction_a/concat");
    }

    for (int i = 0; i < 20; ++i)
        x = block17(b, x, util::format("block17_%d", i + 1));

    // Reduction-B: three conv branches plus pool.
    {
        NodeId b1 =
            b.conv2d(x, 256, 1, 1, bnConv(), "reduction_b/b1/1x1");
        b1 = b.conv2d(b1, 384, 3, 3, bnConv(2, PaddingMode::Valid),
                      "reduction_b/b1/3x3");
        NodeId b2 =
            b.conv2d(x, 256, 1, 1, bnConv(), "reduction_b/b2/1x1");
        b2 = b.conv2d(b2, 288, 3, 3, bnConv(2, PaddingMode::Valid),
                      "reduction_b/b2/3x3");
        NodeId b3 =
            b.conv2d(x, 256, 1, 1, bnConv(), "reduction_b/b3/1x1");
        b3 = b.conv2d(b3, 288, 3, 3, bnConv(), "reduction_b/b3/3x3a");
        b3 = b.conv2d(b3, 320, 3, 3, bnConv(2, PaddingMode::Valid),
                      "reduction_b/b3/3x3b");
        const NodeId b4 = b.maxPool(x, 3, 2, PaddingMode::Valid,
                                    "reduction_b/pool");
        x = b.concat({b1, b2, b3, b4}, "reduction_b/concat");
    }

    for (int i = 0; i < 10; ++i)
        x = block8(b, x, util::format("block8_%d", i + 1));

    x = b.conv2d(x, 1536, 1, 1, bnConv(), "conv_final");
    x = b.globalAvgPool(x, "pool");
    x = b.dropout(x, "drop");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "logits");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
