#include "models/inception_common.h"

namespace ceer {
namespace models {
namespace detail {

using graph::GraphBuilder;
using graph::NodeId;
using graph::PaddingMode;

NodeId
inceptionV4Stem(GraphBuilder &b)
{
    NodeId x = b.imageInput(299, 299, 3);
    x = b.transpose(x, "data_format");

    x = b.conv2d(x, 32, 3, 3, bnConv(2, PaddingMode::Valid),
                 "stem/conv1a");
    x = b.conv2d(x, 32, 3, 3, bnConv(1, PaddingMode::Valid),
                 "stem/conv1b");
    x = b.conv2d(x, 64, 3, 3, bnConv(), "stem/conv1c");

    // Branch point 1: pool | stride-2 conv.
    const NodeId pool1 =
        b.maxPool(x, 3, 2, PaddingMode::Valid, "stem/pool1");
    const NodeId conv1 = b.conv2d(x, 96, 3, 3,
                                  bnConv(2, PaddingMode::Valid),
                                  "stem/conv2");
    x = b.concat({pool1, conv1}, "stem/mixed1");

    // Branch point 2: 1x1->3x3 | 1x1->7x1->1x7->3x3.
    NodeId left = b.conv2d(x, 64, 1, 1, bnConv(), "stem/b1/1x1");
    left = b.conv2d(left, 96, 3, 3, bnConv(1, PaddingMode::Valid),
                    "stem/b1/3x3");
    NodeId right = b.conv2d(x, 64, 1, 1, bnConv(), "stem/b2/1x1");
    right = b.conv2d(right, 64, 7, 1, bnConv(), "stem/b2/7x1");
    right = b.conv2d(right, 64, 1, 7, bnConv(), "stem/b2/1x7");
    right = b.conv2d(right, 96, 3, 3, bnConv(1, PaddingMode::Valid),
                     "stem/b2/3x3");
    x = b.concat({left, right}, "stem/mixed2");

    // Branch point 3: stride-2 conv | pool -> 35x35x384.
    const NodeId conv3 = b.conv2d(x, 192, 3, 3,
                                  bnConv(2, PaddingMode::Valid),
                                  "stem/conv3");
    const NodeId pool3 =
        b.maxPool(x, 3, 2, PaddingMode::Valid, "stem/pool3");
    return b.concat({conv3, pool3}, "stem/mixed3");
}

} // namespace detail
} // namespace models
} // namespace ceer
