/**
 * @file
 * Name-based model registry and the paper's train/test split.
 */

#include "models/model_zoo.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace models {

graph::Graph
buildModel(const std::string &name, std::int64_t batch)
{
    if (name == "alexnet")
        return buildAlexNet(batch);
    if (name == "vgg_11")
        return buildVgg(11, batch);
    if (name == "vgg_16")
        return buildVgg(16, batch);
    if (name == "vgg_19")
        return buildVgg(19, batch);
    if (name == "inception_v1")
        return buildInceptionV1(batch);
    if (name == "inception_v3")
        return buildInceptionV3(batch);
    if (name == "inception_v4")
        return buildInceptionV4(batch);
    if (name == "resnet_50")
        return buildResNetV2(50, batch);
    if (name == "resnet_101")
        return buildResNetV2(101, batch);
    if (name == "resnet_152")
        return buildResNetV2(152, batch);
    if (name == "resnet_200")
        return buildResNetV2(200, batch);
    if (name == "inception_resnet_v2")
        return buildInceptionResNetV2(batch);
    // Outside the 12-CNN zoo (paper Sec. VI future work).
    if (name == "transformer_encoder")
        return buildTransformerEncoder(batch);
    if (name == "lstm_classifier")
        return buildLstmClassifier(batch);
    if (name == "mobilenet_v1")
        return buildMobileNetV1(batch);
    util::fatal("unknown model '" + name + "'; known models: " +
                util::join(allModelNames(), ", "));
}

const std::vector<std::string> &
allModelNames()
{
    static const std::vector<std::string> names = {
        "alexnet",      "vgg_11",       "vgg_16",
        "vgg_19",       "inception_v1", "inception_v3",
        "inception_v4", "resnet_50",    "resnet_101",
        "resnet_152",   "resnet_200",   "inception_resnet_v2",
    };
    return names;
}

const std::vector<std::string> &
trainingSetNames()
{
    // The 8 CNNs the paper trains Ceer's models on (Sec. III).
    static const std::vector<std::string> names = {
        "vgg_11",       "vgg_16",       "inception_v1",
        "inception_v4", "resnet_50",    "resnet_152",
        "resnet_200",   "inception_resnet_v2",
    };
    return names;
}

const std::vector<std::string> &
testSetNames()
{
    // The 4 held-out CNNs used for validation/evaluation (Secs. IV-V).
    static const std::vector<std::string> names = {
        "inception_v3", "alexnet", "resnet_101", "vgg_19",
    };
    return names;
}

int
modelInputSize(const std::string &name)
{
    if (name == "alexnet")
        return 227;
    if (util::startsWith(name, "inception") && name != "inception_v1")
        return 299;
    return 224;
}

} // namespace models
} // namespace ceer
