/**
 * @file
 * The 12-CNN model zoo from the paper's empirical study.
 *
 * Training set (8): VGG-11, VGG-16, Inception-v1, Inception-v4,
 * ResNet-50, ResNet-152, ResNet-200, Inception-ResNet-v2.
 * Test set (4): Inception-v3, AlexNet, ResNet-101, VGG-19.
 *
 * Every builder produces a full training graph (forward + backward +
 * optimizer + data pipeline) at a given per-GPU batch size, with layer
 * configurations taken from the architectures' original papers so that
 * op mixes, tensor shapes and parameter counts are realistic
 * (e.g. AlexNet ~61M params, VGG-19 ~144M, Inception-v1 ~6.6M).
 */

#ifndef CEER_MODELS_MODEL_ZOO_H
#define CEER_MODELS_MODEL_ZOO_H

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ceer {
namespace models {

/** AlexNet (227x227 input, LRN, dropout, 3 FC layers; ~61M params). */
graph::Graph buildAlexNet(std::int64_t batch);

/**
 * VGG-A/D/E (224x224, 2x2 max pools, 3 FC layers).
 *
 * @param layers One of 11, 16, 19.
 * @param batch  Per-GPU batch size.
 */
graph::Graph buildVgg(int layers, std::int64_t batch);

/** GoogLeNet / Inception-v1 (224x224, LRN stem, 9 inception modules). */
graph::Graph buildInceptionV1(std::int64_t batch);

/** Inception-v3 (299x299, factorized 7x1/1x7 modules; ~24M params). */
graph::Graph buildInceptionV3(std::int64_t batch);

/** Inception-v4 (299x299, deeper stem and more modules; ~43M params). */
graph::Graph buildInceptionV4(std::int64_t batch);

/**
 * ResNet-v2 with pre-activation bottleneck blocks (224x224).
 *
 * @param layers One of 50, 101, 152, 200.
 * @param batch  Per-GPU batch size.
 */
graph::Graph buildResNetV2(int layers, std::int64_t batch);

/** Inception-ResNet-v2 (299x299, scaled residual inception; ~56M). */
graph::Graph buildInceptionResNetV2(std::int64_t batch);

/**
 * BERT-base-style Transformer encoder (~110M params). NOT part of the
 * paper's 12-CNN zoo: built to exercise the paper's unseen-operation
 * limitation (Secs. IV-D, VI); see bench/ext_unseen_ops.
 */
graph::Graph buildTransformerEncoder(std::int64_t batch);

/**
 * Unrolled LSTM sequence classifier (~7.5M params, 64 steps). Also
 * outside the zoo (paper Sec. VI: RNNs are future work); unlike the
 * Transformer its kernels are mostly CNN-known, so it is the
 * "predictable without retraining" contrast in bench/ext_unseen_ops.
 */
graph::Graph buildLstmClassifier(std::int64_t batch);

/**
 * MobileNet-v1 (~4.2M params). A CNN, but built on depthwise
 * convolutions the paper's zoo never exercises — the canonical
 * "new operation developed over time" of Sec. IV-D. Outside the zoo.
 */
graph::Graph buildMobileNetV1(std::int64_t batch);

/**
 * Builds a model by zoo name (e.g. "vgg_16", "resnet_101").
 * Fatals on unknown names; see allModelNames().
 */
graph::Graph buildModel(const std::string &name, std::int64_t batch);

/** All 12 zoo model names. */
const std::vector<std::string> &allModelNames();

/** The paper's 8 training-set model names. */
const std::vector<std::string> &trainingSetNames();

/** The paper's 4 test-set model names. */
const std::vector<std::string> &testSetNames();

/** Default input resolution (height == width) for a zoo model. */
int modelInputSize(const std::string &name);

} // namespace models
} // namespace ceer

#endif // CEER_MODELS_MODEL_ZOO_H
