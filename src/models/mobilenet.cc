/**
 * @file
 * MobileNet-v1 (Howard et al., 2017): 13 depthwise-separable blocks.
 *
 * Also outside the paper's zoo. MobileNet is the canonical instance of
 * the paper's Sec. IV-D caveat that "new operations may be developed
 * over time by researchers": its DepthwiseConv2dNative kernels did not
 * exist in the CNNs the paper profiles, so a Ceer trained on that zoo
 * hits the unseen-heavy-op fallback even though MobileNet is a plain
 * image-classification CNN (see bench/ext_unseen_ops). ~4.2M params.
 */

#include "models/model_zoo.h"

#include "graph/autodiff.h"
#include "graph/builder.h"
#include "util/strings.h"

namespace ceer {
namespace models {

using graph::ConvOptions;
using graph::GraphBuilder;
using graph::NodeId;

namespace {

/** Depthwise 3x3 + pointwise 1x1, each with BN + ReLU. */
NodeId
separableBlock(GraphBuilder &b, NodeId x, std::int64_t out_channels,
               int stride, const std::string &name)
{
    NodeId out = b.depthwiseConv2d(x, 3, stride, name + "/dw");
    ConvOptions pointwise;
    pointwise.batchNorm = true;
    pointwise.bias = false;
    pointwise.relu = true;
    return b.conv2d(out, out_channels, 1, 1, pointwise, name + "/pw");
}

} // namespace

graph::Graph
buildMobileNetV1(std::int64_t batch)
{
    GraphBuilder b("mobilenet_v1", batch);
    NodeId x = b.imageInput(224, 224, 3);
    x = b.transpose(x, "data_format");

    ConvOptions stem;
    stem.batchNorm = true;
    stem.relu = true;
    stem.strideH = stem.strideW = 2;
    x = b.conv2d(x, 32, 3, 3, stem, "conv1");

    struct BlockSpec
    {
        std::int64_t channels;
        int stride;
    };
    const BlockSpec blocks[] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1},  {512, 1},
        {512, 1}, {1024, 2}, {1024, 1},
    };
    int index = 0;
    for (const BlockSpec &block : blocks) {
        x = separableBlock(b, x, block.channels, block.stride,
                           util::format("block_%02d", ++index));
    }

    x = b.globalAvgPool(x, "pool");
    x = b.dropout(x, "drop");
    x = b.fullyConnected(x, 1000, /*relu=*/false, "logits");

    const NodeId loss = b.softmaxLoss(x);
    graph::addTrainingOps(b.graph(), loss);
    return b.finish();
}

} // namespace models
} // namespace ceer
