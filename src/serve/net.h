/**
 * @file
 * Minimal POSIX TCP helpers for ceerd and its clients.
 *
 * All helpers retry on EINTR and send with MSG_NOSIGNAL, so a peer
 * that disappears mid-write surfaces as an EPIPE error return instead
 * of a process-killing SIGPIPE. Errors are reported through
 * `std::string *error` out-params in the repo's try* idiom; no helper
 * throws.
 */

#ifndef CEER_SERVE_NET_H
#define CEER_SERVE_NET_H

#include <cstddef>
#include <string>

namespace ceer {
namespace serve {

/**
 * Opens a listening TCP socket on @p host:@p port (port 0 binds an
 * ephemeral port). Returns the fd, or -1 with @p error set. The
 * kernel-assigned port is written to @p bound_port.
 *
 * @p host must be a numeric IPv4 address or "localhost".
 *
 * With @p reuse_port the socket is created with SO_REUSEPORT so
 * several listeners can bind the same port and the kernel shards
 * accepted connections across them (ceerd's multi-reactor mode). All
 * listeners of a group must set the flag before binding.
 */
int listenTcp(const std::string &host, int port, int backlog,
              int *bound_port, std::string *error,
              bool reuse_port = false);

/** Connects to @p host:@p port; returns the fd or -1 with @p error. */
int connectTcp(const std::string &host, int port, std::string *error);

/** accept(2) with EINTR retry; returns fd, or -1 (EAGAIN => *again). */
int acceptRetry(int listen_fd, bool *again, std::string *error);

/**
 * Writes all @p size bytes (EINTR-safe, MSG_NOSIGNAL). False with
 * @p error on any unrecoverable send failure.
 */
bool sendAll(int fd, const void *data, std::size_t size,
             std::string *error);

/**
 * Reads exactly @p size bytes (EINTR-safe, blocking). False with
 * @p error on EOF, timeout (SO_RCVTIMEO) or any socket error.
 */
bool recvAll(int fd, void *data, std::size_t size, std::string *error);

/** Sets SO_RCVTIMEO; ms <= 0 means block forever. */
bool setRecvTimeoutMs(int fd, int ms, std::string *error);

/** Puts @p fd into non-blocking mode. */
bool setNonBlocking(int fd, std::string *error);

/** close(2) with EINTR tolerance; safe on -1. */
void closeFd(int fd);

/** Move-only RAII wrapper closing the fd on destruction. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { closeFd(fd_); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            closeFd(fd_);
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    /** The wrapped descriptor (-1 when empty). */
    int get() const { return fd_; }

    /** True when a descriptor is held. */
    explicit operator bool() const { return fd_ >= 0; }

    /** Releases ownership without closing. */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Closes the held descriptor now. */
    void
    reset(int fd = -1)
    {
        closeFd(fd_);
        fd_ = fd;
    }

  private:
    int fd_ = -1;
};

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_NET_H
