/**
 * @file
 * Blocking client for the ceerd protocol (one request in flight).
 *
 * A ServeClient owns one TCP connection and exchanges frames
 * synchronously: send one Request/Ping/Reload, read one reply. Server
 * Error frames surface as a typed `errorCode` (one of the
 * protocol.h errc:: strings) so callers can distinguish backpressure
 * (`overloaded`) from their own mistakes (`bad_request`); transport
 * failures leave the code empty and describe themselves in
 * `errorMessage`.
 */

#ifndef CEER_SERVE_CLIENT_H
#define CEER_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace ceer {
namespace serve {

/** Result of one client call. */
struct CallOutcome
{
    bool ok = false;          ///< Reply was the expected frame type.
    std::string errorCode;    ///< errc:: string when the server said no.
    std::string errorMessage; ///< Human-readable failure detail.
};

/** One blocking connection to a ceerd server. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connects to @p host:@p port. @p timeout_ms bounds every
     * subsequent reply read (<= 0 blocks forever).
     */
    bool tryConnect(const std::string &host, int port, int timeout_ms,
                    std::string *error);

    /** True while a connection is open. */
    bool connected() const { return fd_ >= 0; }

    /** Closes the connection (safe when already closed). */
    void close();

    /**
     * Sends a recommendation request and decodes the reply into
     * @p response. When @p raw_payload is non-null it receives the
     * undecoded Response payload bytes (for byte-identity checks
     * against an in-process recommend()).
     */
    CallOutcome recommend(const RecommendRequest &request,
                          RecommendResponse *response,
                          std::string *raw_payload = nullptr);

    /** Ping/Pong liveness round-trip. */
    CallOutcome ping();

    /**
     * Asks the server to hot-reload its model from a server-local
     * path; @p generation receives the new engine generation.
     */
    CallOutcome reload(const std::string &model_path,
                       std::uint64_t *generation);

    /**
     * Low-level exchange: send one frame, read one reply frame.
     * False with @p error on any transport failure (the connection is
     * closed: a failed exchange leaves undefined stream state).
     */
    bool rawCall(FrameType type, const std::string &payload,
                 FrameType *reply_type, std::string *reply_payload,
                 std::string *error);

  private:
    CallOutcome exchange(FrameType type, const std::string &payload,
                         FrameType expected,
                         std::string *reply_payload);

    int fd_ = -1;
};

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_CLIENT_H
