#include "serve/client.h"

#include "io/cbf.h"
#include "serve/net.h"
#include "util/strings.h"

namespace ceer {
namespace serve {

namespace {

/** Replies larger than this are implausible and refused. */
constexpr std::size_t kMaxReplyPayloadBytes = 64u << 20;

} // namespace

ServeClient::~ServeClient() { close(); }

bool
ServeClient::tryConnect(const std::string &host, int port,
                        int timeout_ms, std::string *error)
{
    close();
    const int fd = connectTcp(host, port, error);
    if (fd < 0)
        return false;
    std::string timeout_error;
    if (!setRecvTimeoutMs(fd, timeout_ms, &timeout_error)) {
        closeFd(fd);
        if (error)
            *error = timeout_error;
        return false;
    }
    fd_ = fd;
    return true;
}

void
ServeClient::close()
{
    closeFd(fd_);
    fd_ = -1;
}

bool
ServeClient::rawCall(FrameType type, const std::string &payload,
                     FrameType *reply_type, std::string *reply_payload,
                     std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    const std::string frame = buildFrame(type, payload);
    if (!sendAll(fd_, frame.data(), frame.size(), error)) {
        close();
        return false;
    }
    char header_bytes[kFrameHeaderBytes];
    if (!recvAll(fd_, header_bytes, sizeof header_bytes, error)) {
        close();
        return false;
    }
    FrameHeader header;
    if (!decodeFrameHeader(header_bytes, &header, error)) {
        close();
        return false;
    }
    if (header.payloadBytes > kMaxReplyPayloadBytes) {
        if (error)
            *error = util::format("reply payload of %u bytes exceeds "
                                  "the client limit",
                                  header.payloadBytes);
        close();
        return false;
    }
    std::string reply(header.payloadBytes, '\0');
    if (header.payloadBytes > 0 &&
        !recvAll(fd_, reply.data(), reply.size(), error)) {
        close();
        return false;
    }
    if (io::xxhash64(reply.data(), reply.size()) != header.checksum) {
        if (error)
            *error = "reply payload checksum mismatch";
        close();
        return false;
    }
    *reply_type = header.type;
    *reply_payload = std::move(reply);
    return true;
}

CallOutcome
ServeClient::exchange(FrameType type, const std::string &payload,
                      FrameType expected, std::string *reply_payload)
{
    CallOutcome outcome;
    FrameType reply_type;
    std::string reply;
    std::string error;
    if (!rawCall(type, payload, &reply_type, &reply, &error)) {
        outcome.errorMessage = error;
        return outcome;
    }
    if (reply_type == FrameType::Error) {
        ErrorInfo info;
        if (decodeError(reply, &info, &error)) {
            outcome.errorCode = info.code;
            outcome.errorMessage = info.message;
        } else {
            outcome.errorMessage =
                "undecodable error frame: " + error;
        }
        // The server fails closed: every Error frame is followed by a
        // disconnect, so the stream is done either way.
        close();
        return outcome;
    }
    if (reply_type != expected) {
        outcome.errorMessage = util::format(
            "unexpected reply frame type %u (wanted %u)",
            static_cast<unsigned>(reply_type),
            static_cast<unsigned>(expected));
        close();
        return outcome;
    }
    if (reply_payload)
        *reply_payload = std::move(reply);
    outcome.ok = true;
    return outcome;
}

CallOutcome
ServeClient::recommend(const RecommendRequest &request,
                       RecommendResponse *response,
                       std::string *raw_payload)
{
    std::string reply;
    CallOutcome outcome =
        exchange(FrameType::Request, encodeRecommendRequest(request),
                 FrameType::Response, &reply);
    if (!outcome.ok)
        return outcome;
    std::string error;
    if (!decodeRecommendResponse(reply, response, &error)) {
        outcome.ok = false;
        outcome.errorMessage = "bad response payload: " + error;
        close();
        return outcome;
    }
    if (raw_payload)
        *raw_payload = std::move(reply);
    return outcome;
}

CallOutcome
ServeClient::ping()
{
    return exchange(FrameType::Ping, "", FrameType::Pong, nullptr);
}

CallOutcome
ServeClient::reload(const std::string &model_path,
                    std::uint64_t *generation)
{
    ReloadRequest request;
    request.modelPath = model_path;
    std::string reply;
    CallOutcome outcome =
        exchange(FrameType::Reload, encodeReloadRequest(request),
                 FrameType::ReloadDone, &reply);
    if (!outcome.ok)
        return outcome;
    ReloadDone done;
    std::string error;
    if (!decodeReloadDone(reply, &done, &error)) {
        outcome.ok = false;
        outcome.errorMessage = "bad reload ack: " + error;
        close();
        return outcome;
    }
    if (generation)
        *generation = done.generation;
    return outcome;
}

} // namespace serve
} // namespace ceer
