/**
 * @file
 * ceerd: a persistent recommendation server.
 *
 * One reactor thread owns every socket: it accepts connections,
 * assembles frames (protocol.h) and enforces admission control; each
 * complete request is executed on util::ThreadPool::shared(). A
 * session has at most one request in flight — the reactor stops
 * polling its socket until the worker has written the response — so
 * per-session state (the plan cache) needs no locking: the
 * mutex-guarded re-arm handoff between worker and reactor gives the
 * happens-before edge.
 *
 * Admission control is a bounded queue: once `maxQueueDepth` requests
 * are admitted and not yet answered, further requests are refused
 * with a typed `overloaded` Error frame (backpressure the client can
 * see, never a silent drop). Slow-loris clients that stall mid-frame
 * past `readTimeoutMs` get `read_timeout` and are disconnected.
 *
 * Model hot-reload swaps an atomically published
 * `shared_ptr<const Engine>`; in-flight requests finish on the
 * engine they started with, so a reload never drops work. Plan-cache
 * entries remember the engine generation that compiled them and
 * recompile lazily after a swap.
 */

#ifndef CEER_SERVE_SERVER_H
#define CEER_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cloud/instances.h"
#include "core/ceer_model.h"
#include "core/predictor.h"
#include "serve/protocol.h"

namespace ceer {
namespace serve {

/** ceerd configuration. */
struct ServerOptions
{
    std::string host = "127.0.0.1"; ///< Bind address.
    int port = 0;                   ///< 0 = kernel-assigned port.
    int backlog = 64;               ///< listen(2) backlog.

    /**
     * Admission bound: maximum requests admitted (queued or
     * executing) at once. Beyond it new requests are refused with an
     * `overloaded` Error frame. 0 refuses everything (useful in
     * tests).
     */
    std::size_t maxQueueDepth = 64;

    /** Payloads larger than this are refused before buffering. */
    std::size_t maxPayloadBytes = 1 << 20;

    /**
     * A connection stalled mid-frame longer than this is disconnected
     * with `read_timeout`. <= 0 disables the guard.
     */
    int readTimeoutMs = 5000;

    /** Thread hint for the per-request candidate sweep (1 = serial). */
    int sweepThreads = 1;
};

/** A persistent recommendation server over the ceerd protocol. */
class Server
{
  public:
    /**
     * @param model   Trained model served to clients.
     * @param catalog Candidate instances for every recommendation.
     * @param options Server configuration.
     */
    Server(core::CeerModel model, cloud::InstanceCatalog catalog,
           ServerOptions options = {});

    /** Stops the server (drains in-flight requests). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Binds, listens and starts the reactor thread. False with
     * @p error when the socket cannot be set up.
     */
    bool tryStart(std::string *error);

    /** The bound port (after tryStart); useful with port 0. */
    int port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting, close idle connections,
     * finish every admitted request, then return. Idempotent.
     */
    void stop();

    /**
     * Hot-swaps the served model from @p model_path (either model
     * dialect; see CeerModel::tryLoadFile). In-flight requests keep
     * the engine they started with. False with @p error on a load
     * failure, in which case the old model keeps serving.
     */
    bool tryReload(const std::string &model_path, std::string *error);

    /** Engine generation currently serving (starts at 1). */
    std::uint64_t generation() const;

  private:
    /** An immutable predictor + its generation, swapped on reload. */
    struct Engine
    {
        core::CeerPredictor predictor;
        std::uint64_t generation = 1;

        Engine(core::CeerModel model, std::uint64_t gen)
            : predictor(std::move(model)), generation(gen)
        {
        }
    };

    /** A compiled plan tagged with the generation that built it. */
    struct CachedPlan
    {
        std::uint64_t generation = 0;
        std::shared_ptr<const graph::Graph> graph;
        std::shared_ptr<const core::PredictPlan> plan;
    };

    /** Per-connection state, owned by the reactor. */
    struct Session
    {
        std::uint64_t id = 0;
        int fd = -1;
        std::string inBuf;
        bool inFlight = false;
        std::chrono::steady_clock::time_point lastActivity;

        /**
         * Plan cache keyed by graph fingerprint
         * (protocol.h graphFingerprint). Touched only by the worker
         * while the session is in flight.
         */
        std::unordered_map<std::uint64_t, CachedPlan> plans;

        /** Fingerprint memo keyed by "model:batch" request key. */
        std::unordered_map<std::string, std::uint64_t> requestKeys;

        ~Session();
    };

    void reactorLoop();
    void wake();
    bool processSession(const std::shared_ptr<Session> &session);
    bool readSession(const std::shared_ptr<Session> &session);
    void sendErrorAndClose(Session &session, const std::string &code,
                           const std::string &message);
    void execute(std::shared_ptr<Session> session, FrameType type,
                 std::string payload);
    bool handleRequest(Session &session, const std::string &payload);
    bool handleReload(Session &session, const std::string &payload);
    void finishTask(const std::shared_ptr<Session> &session,
                    bool close);
    std::shared_ptr<const Engine> currentEngine() const;

    ServerOptions options_;
    std::vector<cloud::GpuInstance> candidates_;

    mutable std::mutex engineMutex_;
    std::shared_ptr<const Engine> engine_;

    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    int port_ = 0;
    std::thread reactor_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    /** Guards sessions_ and rearm_. */
    std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>>
        sessions_;
    /** (session id, close?) handoffs from workers to the reactor. */
    std::vector<std::pair<std::uint64_t, bool>> rearm_;
    std::uint64_t nextSessionId_ = 1;

    /** Admitted (queued or executing) requests. */
    std::atomic<std::size_t> inFlight_{0};

    /** Drain bookkeeping for stop(). */
    std::mutex drainMutex_;
    std::condition_variable drainCv_;
    std::size_t activeTasks_ = 0;
};

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_SERVER_H
