/**
 * @file
 * ceerd: a persistent recommendation server.
 *
 * The server runs `reactors` reactor threads (default 1). Each
 * reactor owns its accepted sessions outright — their sockets, frame
 * assembly, poll set and wake pipe — so reactors share no per-session
 * state. Accept sharding uses SO_REUSEPORT (every reactor binds its
 * own listener on the same port and the kernel spreads connections);
 * when that is unavailable or disabled, reactor 0 owns the single
 * listener and hands accepted fds to its peers round-robin.
 *
 * Request execution has two modes. With `sweepThreads == 1` (the
 * default) a complete request executes INLINE on its reactor thread:
 * no handoff, no wake-pipe round trip, no task allocation — request
 * parallelism comes from running one reactor per core. With
 * `sweepThreads != 1` requests are submitted to
 * util::ThreadPool::shared() as before, and the worker→reactor
 * re-arm handoff (mutex-guarded, per reactor) provides the
 * happens-before edge for the session state. Either way a session has
 * at most one request in flight.
 *
 * Compiled plans live in one process-wide sharded PlanCache
 * (plan_cache.h) keyed by structural graph fingerprint: identical
 * graphs arriving on different connections compile exactly once, and
 * a hot reload invalidates entries lazily by engine generation while
 * in-flight requests keep their pinned entry.
 *
 * The steady-state request path performs no heap allocation: frames
 * are decoded in place from the session's input buffer (CBF view
 * parse), the candidate sweep, response projection and encode all
 * write into per-session reusable scratch, and the response frame is
 * built into a reusable output buffer. bench/micro_serve enforces
 * this with an operator-new counting gate.
 *
 * Admission control is a bounded queue: once `maxQueueDepth` requests
 * are admitted and not yet answered (across all reactors), further
 * requests are refused with a typed `overloaded` Error frame
 * (backpressure the client can see, never a silent drop). Slow-loris
 * clients that stall mid-frame past `readTimeoutMs` get
 * `read_timeout` and are disconnected.
 *
 * Model hot-reload swaps an atomically published
 * `shared_ptr<const Engine>`; in-flight requests finish on the
 * engine they started with, so a reload never drops work.
 */

#ifndef CEER_SERVE_SERVER_H
#define CEER_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cloud/instances.h"
#include "core/ceer_model.h"
#include "core/predictor.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"

namespace ceer {
namespace serve {

/** ceerd configuration. */
struct ServerOptions
{
    std::string host = "127.0.0.1"; ///< Bind address.
    int port = 0;                   ///< 0 = kernel-assigned port.
    int backlog = 64;               ///< listen(2) backlog.

    /**
     * Reactor threads. Each owns its accepted sessions; with
     * `sweepThreads == 1` requests also execute on their reactor, so
     * this is the request-parallelism knob (one per core is the
     * intended production shape).
     */
    int reactors = 1;

    /**
     * Shard accepts across reactors with SO_REUSEPORT (one listener
     * per reactor). When false — or when the extra binds fail — the
     * server falls back to a single listener on reactor 0 that
     * round-robins accepted connections to its peers.
     */
    bool reusePort = true;

    /**
     * Admission bound: maximum requests admitted (queued or
     * executing) at once across all reactors. Beyond it new requests
     * are refused with an `overloaded` Error frame. 0 refuses
     * everything (useful in tests).
     */
    std::size_t maxQueueDepth = 64;

    /** Payloads larger than this are refused before buffering. */
    std::size_t maxPayloadBytes = 1 << 20;

    /**
     * A connection stalled mid-frame longer than this is disconnected
     * with `read_timeout`. <= 0 disables the guard.
     */
    int readTimeoutMs = 5000;

    /**
     * Thread hint for the per-request candidate sweep. 1 (default)
     * executes the whole request inline on its reactor; any other
     * value routes requests through the shared thread pool with this
     * sweep parallelism.
     */
    int sweepThreads = 1;

    /** Shared plan cache: total entry cap across shards. */
    std::size_t planCacheCapacity = 256;

    /** Shared plan cache: shard count (rounded up to a power of 2). */
    std::size_t planCacheShards = 8;
};

/** A persistent recommendation server over the ceerd protocol. */
class Server
{
  public:
    /**
     * @param model   Trained model served to clients.
     * @param catalog Candidate instances for every recommendation.
     * @param options Server configuration.
     */
    Server(core::CeerModel model, cloud::InstanceCatalog catalog,
           ServerOptions options = {});

    /** Stops the server (drains in-flight requests). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Binds, listens and starts the reactor threads. False with
     * @p error when the sockets cannot be set up.
     */
    bool tryStart(std::string *error);

    /** The bound port (after tryStart); useful with port 0. */
    int port() const { return port_; }

    /** True when accept sharding runs via SO_REUSEPORT (after
     *  tryStart); false in single-listener fallback mode. */
    bool usingReusePort() const { return !singleListener_; }

    /**
     * Graceful shutdown: stop accepting, close idle connections,
     * finish every admitted request, then return. Idempotent.
     */
    void stop();

    /**
     * Hot-swaps the served model from @p model_path (either model
     * dialect; see CeerModel::tryLoadFile). In-flight requests keep
     * the engine they started with. False with @p error on a load
     * failure, in which case the old model keeps serving.
     */
    bool tryReload(const std::string &model_path, std::string *error);

    /** Engine generation currently serving (starts at 1). */
    std::uint64_t generation() const;

    /** Shared plan cache counters (hits/misses/evictions/bytes). */
    PlanCache::Stats planCacheStats() const
    {
        return planCache_.stats();
    }

  private:
    /** An immutable predictor + its generation, swapped on reload. */
    struct Engine
    {
        core::CeerPredictor predictor;
        std::uint64_t generation = 1;

        Engine(core::CeerModel model, std::uint64_t gen)
            : predictor(std::move(model)), generation(gen)
        {
        }
    };

    /** Per-connection state, owned by exactly one reactor. */
    struct Session
    {
        std::uint64_t id = 0;
        int fd = -1;
        std::size_t reactorIndex = 0;
        std::string inBuf;
        bool inFlight = false;
        std::chrono::steady_clock::time_point lastActivity;

        /** Pool mode: frame handed to the worker, still at the front
         *  of inBuf (the worker decodes it in place); the reactor
         *  erases it at re-arm time. */
        FrameType pendingType = FrameType::Request;
        std::uint32_t pendingPayloadBytes = 0;
        std::size_t pendingEraseBytes = 0;

        /** Fingerprint memo keyed by "model:batch" request key —
         *  avoids rebuilding the graph just to hash it. */
        std::unordered_map<std::string, std::uint64_t> requestKeys;

        /**
         * Reusable request-path scratch. Touched only by whichever
         * thread currently executes this session's request (reactor
         * in inline mode, worker in pool mode — never both). Once
         * warm, a recommend request allocates nothing.
         */
        RecommendRequest requestScratch;     ///< Decoded request.
        io::CbfFile requestFile;             ///< View-parse scratch.
        core::Recommendation sweepScratch;   ///< Candidate sweep.
        RecommendResponse responseScratch;   ///< Columnar projection.
        ResponseEncodeScratch encodeScratch; ///< CBF encode scratch.
        std::string payloadScratch;          ///< Encoded payload.
        std::string frameScratch;            ///< Outgoing frame.
        std::string keyScratch;              ///< "model:batch" key.

        ~Session();
    };

    /** One reactor thread and everything it owns. */
    struct Reactor
    {
        std::size_t index = 0;
        int listenFd = -1; ///< Own SO_REUSEPORT listener, or -1.
        int wakeRead = -1;
        int wakeWrite = -1;
        std::thread thread;

        /** Guards rearm and inbox — the only state other threads
         *  touch. sessions is reactor-thread-private. */
        std::mutex mutex;
        /** (session id, close?) handoffs from workers (pool mode). */
        std::vector<std::pair<std::uint64_t, bool>> rearm;
        /** Accepted fds handed over in single-listener mode. */
        std::vector<int> inbox;

        std::unordered_map<std::uint64_t, std::shared_ptr<Session>>
            sessions;
    };

    void reactorLoop(Reactor &reactor);
    void wake(Reactor &reactor);
    void adoptSession(Reactor &reactor, int fd);
    bool processSession(Reactor &reactor,
                        const std::shared_ptr<Session> &session);
    bool readSession(Reactor &reactor,
                     const std::shared_ptr<Session> &session);
    /** Runs one admitted frame; returns false when the session must
     *  close. Shared by the inline and pool paths. */
    bool dispatch(Session &session, FrameType type, const char *payload,
                  std::size_t size);
    void execute(std::shared_ptr<Session> session);
    bool handleRequest(Session &session, const char *payload,
                       std::size_t size);
    bool handleReload(Session &session, const char *payload,
                      std::size_t size);
    void finishTask(const std::shared_ptr<Session> &session,
                    bool close);
    std::shared_ptr<const Engine> currentEngine() const;

    ServerOptions options_;
    std::vector<cloud::GpuInstance> candidates_;

    mutable std::mutex engineMutex_;
    std::shared_ptr<const Engine> engine_;

    /** Shared across all sessions and reactors. */
    mutable PlanCache planCache_;

    std::vector<std::unique_ptr<Reactor>> reactors_;
    bool singleListener_ = false;
    bool inlineExecute_ = true;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    std::atomic<std::uint64_t> nextSessionId_{1};
    /** Single-listener round-robin cursor; reactor 0 only. */
    std::uint64_t nextReactorRR_ = 0;

    /** Admitted (queued or executing) requests, all reactors. */
    std::atomic<std::size_t> inFlight_{0};

    /** Drain bookkeeping for stop() (pool-mode tasks only; inline
     *  requests finish before their reactor joins). */
    std::mutex drainMutex_;
    std::condition_variable drainCv_;
    std::size_t activeTasks_ = 0;
};

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_SERVER_H
