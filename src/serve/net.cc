#include "serve/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/strings.h"

namespace ceer {
namespace serve {

namespace {

bool
fillAddress(const std::string &host, int port, sockaddr_in *addr,
            std::string *error)
{
    std::memset(addr, 0, sizeof *addr);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(static_cast<std::uint16_t>(port));
    // Numeric IPv4 only (plus the "localhost" spelling): ceerd is a
    // loopback/intranet daemon and must not block on DNS inside its
    // I/O thread.
    const std::string numeric =
        host.empty() || host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, numeric.c_str(), &addr->sin_addr) != 1) {
        if (error)
            *error = "cannot parse host '" + host +
                     "' (numeric IPv4 or 'localhost' only)";
        return false;
    }
    return true;
}

std::string
errnoText(const char *what)
{
    return util::format("%s: %s", what, std::strerror(errno));
}

} // namespace

int
listenTcp(const std::string &host, int port, int backlog,
          int *bound_port, std::string *error, bool reuse_port)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, &addr, error))
        return -1;
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) {
        if (error)
            *error = errnoText("socket");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (reuse_port &&
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof one) != 0) {
        if (error)
            *error = errnoText("setsockopt(SO_REUSEPORT)");
        return -1;
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (error)
            *error = errnoText("bind");
        return -1;
    }
    if (::listen(fd.get(), backlog) != 0) {
        if (error)
            *error = errnoText("listen");
        return -1;
    }
    if (bound_port) {
        sockaddr_in bound;
        socklen_t len = sizeof bound;
        if (::getsockname(fd.get(),
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0) {
            if (error)
                *error = errnoText("getsockname");
            return -1;
        }
        *bound_port = ntohs(bound.sin_port);
    }
    return fd.release();
}

int
connectTcp(const std::string &host, int port, std::string *error)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, &addr, error))
        return -1;
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd) {
        if (error)
            *error = errnoText("socket");
        return -1;
    }
    while (::connect(fd.get(),
                     reinterpret_cast<const sockaddr *>(&addr),
                     sizeof addr) != 0) {
        if (errno == EINTR)
            continue;
        if (error)
            *error = errnoText("connect");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd.release();
}

int
acceptRetry(int listen_fd, bool *again, std::string *error)
{
    *again = false;
    while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            return fd;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            *again = true;
            return -1;
        }
        if (error)
            *error = errnoText("accept");
        return -1;
    }
}

bool
sendAll(int fd, const void *data, std::size_t size, std::string *error)
{
    const char *p = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not
        // kill the server with SIGPIPE.
        const ssize_t n =
            ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Non-blocking socket with a full buffer: wait for
            // writability instead of failing the connection.
            pollfd pfd{fd, POLLOUT, 0};
            const int ready = ::poll(&pfd, 1, 10000);
            if (ready > 0 || (ready < 0 && errno == EINTR))
                continue;
            if (error)
                *error = ready == 0 ? "send timed out"
                                    : errnoText("poll");
            return false;
        }
        if (error)
            *error = errnoText("send");
        return false;
    }
    return true;
}

bool
recvAll(int fd, void *data, std::size_t size, std::string *error)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, p + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (error)
                *error = "connection closed by peer";
            return false;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (error)
                *error = "read timed out";
            return false;
        }
        if (error)
            *error = errnoText("recv");
        return false;
    }
    return true;
}

bool
setRecvTimeoutMs(int fd, int ms, std::string *error)
{
    timeval tv;
    tv.tv_sec = ms > 0 ? ms / 1000 : 0;
    tv.tv_usec = ms > 0 ? (ms % 1000) * 1000 : 0;
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) !=
        0) {
        if (error)
            *error = errnoText("setsockopt(SO_RCVTIMEO)");
        return false;
    }
    return true;
}

bool
setNonBlocking(int fd, std::string *error)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        if (error)
            *error = errnoText("fcntl(O_NONBLOCK)");
        return false;
    }
    return true;
}

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    // POSIX leaves the fd state unspecified on EINTR from close();
    // retrying risks closing a recycled descriptor, so close once and
    // ignore the return value.
    ::close(fd);
}

} // namespace serve
} // namespace ceer
