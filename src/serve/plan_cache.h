/**
 * @file
 * Process-wide sharded plan cache for ceerd.
 *
 * PR 8 cached compiled PredictPlans per session, so ten connections
 * asking for vgg_19 compiled vgg_19 ten times and a reconnecting
 * client always paid a cold start. This cache is shared across every
 * session and reactor: keyed by the structural graph fingerprint,
 * N-way sharded (one mutex per shard, shard chosen by fingerprint
 * bits, so concurrent sessions rarely contend), LRU-capped, and
 * engine-generation-aware — a hot reload does not flush anything
 * eagerly, but an entry compiled under an older generation misses and
 * is recompiled on next use, while in-flight requests keep the pinned
 * entry they started with (shared_ptr keeps the old plan alive until
 * its last request finishes).
 *
 * Concurrent requests for the same fingerprint compile exactly once:
 * the first claims the slot and compiles OUTSIDE the shard lock, the
 * rest wait on the shard's condition variable and share the result.
 *
 * Metrics: `serve.plan_cache.{hits,misses,evictions}` counters and a
 * `serve.plan_cache.bytes` gauge (plan approxBytes accounting).
 */

#ifndef CEER_SERVE_PLAN_CACHE_H
#define CEER_SERVE_PLAN_CACHE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/predict_plan.h"
#include "core/recommender.h"
#include "graph/graph.h"

namespace ceer {
namespace serve {

/**
 * One immutable cached compilation: the graph (the request path needs
 * it for WorkloadSpec and the memory-fit check) plus the compiled
 * plan, stamped with the engine generation that compiled it.
 */
struct PlanEntry
{
    std::uint64_t fingerprint = 0; ///< Structural graph fingerprint.
    std::uint64_t generation = 0;  ///< Engine generation at compile.
    std::shared_ptr<const graph::Graph> graph;
    std::shared_ptr<const core::PredictPlan> plan;
    /** Per-GPU memory-fit verdicts, computed once at compile — the
     *  recommender's only O(nodes) per-query step otherwise. */
    core::MemoryFitTable fits{};
    std::size_t bytes = 0;         ///< approxBytes accounting.
};

/** Shared, sharded, LRU-capped fingerprint -> PlanEntry cache. */
class PlanCache
{
  public:
    /** Point-in-time counters (monotonic except bytes/entries). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t bytes = 0;
        std::size_t entries = 0;
    };

    /** Builds @p compile's result when the cache misses. Must return a
     *  fully-populated entry; may throw (the claim is rolled back and
     *  waiters retry). */
    using CompileFn = std::function<PlanEntry()>;

    /**
     * @param capacity Total entry cap across all shards (>= 1 per
     *                 shard after rounding).
     * @param shards   Shard count, rounded up to a power of two.
     */
    explicit PlanCache(std::size_t capacity = 256,
                       std::size_t shards = 8);

    /**
     * Allocation-free hit path: returns the cached entry for
     * @p fingerprint under @p generation, or null on a cold, stale or
     * still-compiling slot (no waiting, no miss accounted — callers
     * fall through to getOrCompile, which counts the miss and
     * coordinates the compile). Thread-safe.
     */
    std::shared_ptr<const PlanEntry>
    tryGet(std::uint64_t fingerprint, std::uint64_t generation);

    /**
     * Returns the entry for @p fingerprint compiled under
     * @p generation, invoking @p compile on a miss (stale generation
     * or absent). Hits pin the shared entry; a concurrent miss on the
     * same fingerprint waits for the in-progress compile instead of
     * duplicating it. Thread-safe.
     */
    std::shared_ptr<const PlanEntry>
    getOrCompile(std::uint64_t fingerprint, std::uint64_t generation,
                 const CompileFn &compile);

    Stats stats() const;

  private:
    struct Slot
    {
        std::shared_ptr<const PlanEntry> entry; ///< Null while compiling.
        bool compiling = false;
        std::uint64_t lruTick = 0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::condition_variable cv;
        std::unordered_map<std::uint64_t, Slot> slots;
        std::uint64_t tick = 0;
    };

    Shard &shardFor(std::uint64_t fingerprint);
    /** Evicts least-recently-used non-compiling slots while the shard
     *  is over its cap. Caller holds the shard lock. */
    void evictOver(Shard &shard);
    void publishBytesGauge() const;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t shardMask_ = 0;
    std::size_t perShardCapacity_ = 1;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::size_t> bytes_{0};
};

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_PLAN_CACHE_H
