#include "serve/server.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <set>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "io/cbf.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "serve/net.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ceer {
namespace serve {

namespace {

/**
 * models::buildModel fatals on unknown names, so the server validates
 * against the full buildable set (the 12-CNN zoo plus the
 * out-of-family extras) and answers `unknown_model` instead of dying.
 */
bool
isKnownModelName(const std::string &name)
{
    static const std::set<std::string> known = [] {
        std::set<std::string> names(models::allModelNames().begin(),
                                    models::allModelNames().end());
        names.insert("transformer_encoder");
        names.insert("lstm_classifier");
        names.insert("mobilenet_v1");
        return names;
    }();
    return known.count(name) > 0;
}

/** Sends a typed Error frame and counts the rejection. */
void
sendTypedError(int fd, const std::string &code,
               const std::string &message)
{
    ErrorInfo info;
    info.code = code;
    info.message = message;
    const std::string frame =
        buildFrame(FrameType::Error, encodeError(info));
    std::string send_error;
    // Best effort: the connection is closing either way; a peer that
    // already vanished just skips the courtesy reply.
    sendAll(fd, frame.data(), frame.size(), &send_error);
    OBS_COUNTER_INC("serve.rejected");
}

/** Appends the decimal rendering of @p value without allocating. */
void
appendDecimal(std::string *out, long long value)
{
    char buf[32];
    const int len = std::snprintf(buf, sizeof buf, "%lld", value);
    if (len > 0)
        out->append(buf, static_cast<std::size_t>(len));
}

} // namespace

Server::Session::~Session() { closeFd(fd); }

Server::Server(core::CeerModel model, cloud::InstanceCatalog catalog,
               ServerOptions options)
    : options_(std::move(options)),
      candidates_(catalog.instances()),
      engine_(std::make_shared<const Engine>(std::move(model), 1)),
      planCache_(options_.planCacheCapacity, options_.planCacheShards),
      inlineExecute_(options_.sweepThreads == 1)
{
}

Server::~Server() { stop(); }

std::shared_ptr<const Server::Engine>
Server::currentEngine() const
{
    std::lock_guard<std::mutex> lock(engineMutex_);
    return engine_;
}

std::uint64_t
Server::generation() const
{
    return currentEngine()->generation;
}

bool
Server::tryStart(std::string *error)
{
    if (started_) {
        if (error)
            *error = "server already started";
        return false;
    }
    const int reactor_count =
        options_.reactors < 1 ? 1 : options_.reactors;
    reactors_.clear();
    for (int i = 0; i < reactor_count; ++i) {
        reactors_.push_back(std::make_unique<Reactor>());
        reactors_.back()->index = static_cast<std::size_t>(i);
    }
    const auto cleanup = [this] {
        for (auto &reactor : reactors_) {
            closeFd(reactor->listenFd);
            closeFd(reactor->wakeRead);
            closeFd(reactor->wakeWrite);
        }
        reactors_.clear();
    };

    std::string nb_error;
    for (auto &reactor : reactors_) {
        int pipe_fds[2];
        if (::pipe(pipe_fds) != 0) {
            if (error)
                *error = "pipe: " + std::string(std::strerror(errno));
            cleanup();
            return false;
        }
        reactor->wakeRead = pipe_fds[0];
        reactor->wakeWrite = pipe_fds[1];
        if (!setNonBlocking(reactor->wakeRead, &nb_error) ||
            !setNonBlocking(reactor->wakeWrite, &nb_error)) {
            if (error)
                *error = nb_error;
            cleanup();
            return false;
        }
    }

    // Accept sharding: one SO_REUSEPORT listener per reactor, the
    // kernel spreads connections. If any bind fails (no SO_REUSEPORT,
    // exotic kernel), fall back to a single listener on reactor 0
    // that distributes accepted fds round-robin.
    singleListener_ = true;
    if (reactor_count > 1 && options_.reusePort) {
        bool all_bound = true;
        std::string rp_error;
        for (int i = 0; i < reactor_count; ++i) {
            const int bind_port = i == 0 ? options_.port : port_;
            const int fd =
                listenTcp(options_.host, bind_port, options_.backlog,
                          &port_, &rp_error, /*reuse_port=*/true);
            if (fd < 0) {
                all_bound = false;
                break;
            }
            if (!setNonBlocking(fd, &rp_error)) {
                closeFd(fd);
                all_bound = false;
                break;
            }
            reactors_[static_cast<std::size_t>(i)]->listenFd = fd;
        }
        if (all_bound) {
            singleListener_ = false;
        } else {
            for (auto &reactor : reactors_) {
                closeFd(reactor->listenFd);
                reactor->listenFd = -1;
            }
        }
    }
    if (singleListener_) {
        const int fd =
            listenTcp(options_.host, options_.port, options_.backlog,
                      &port_, error);
        if (fd < 0) {
            cleanup();
            return false;
        }
        if (!setNonBlocking(fd, &nb_error)) {
            closeFd(fd);
            if (error)
                *error = nb_error;
            cleanup();
            return false;
        }
        reactors_[0]->listenFd = fd;
    }

    started_ = true;
    stopping_ = false;
    for (auto &reactor : reactors_) {
        Reactor *r = reactor.get();
        r->thread = std::thread([this, r] { reactorLoop(*r); });
    }
    return true;
}

void
Server::stop()
{
    if (!started_)
        return;
    stopping_ = true;
    for (auto &reactor : reactors_)
        wake(*reactor);
    for (auto &reactor : reactors_)
        if (reactor->thread.joinable())
            reactor->thread.join();
    {
        // Pool-mode requests finish on the shared pool; their
        // sessions stay alive through the workers' shared_ptrs even
        // though the reactors dropped their session maps on exit.
        // (Inline requests completed before their reactor joined.)
        std::unique_lock<std::mutex> lock(drainMutex_);
        drainCv_.wait(lock, [this] { return activeTasks_ == 0; });
    }
    for (auto &reactor : reactors_) {
        closeFd(reactor->listenFd);
        closeFd(reactor->wakeRead);
        closeFd(reactor->wakeWrite);
    }
    reactors_.clear();
    started_ = false;
}

bool
Server::tryReload(const std::string &model_path, std::string *error)
{
    core::CeerModel model;
    if (!core::CeerModel::tryLoadFile(model_path, &model, error))
        return false;
    {
        std::lock_guard<std::mutex> lock(engineMutex_);
        engine_ = std::make_shared<const Engine>(
            std::move(model), engine_->generation + 1);
    }
    OBS_COUNTER_INC("serve.reloads");
    return true;
}

void
Server::wake(Reactor &reactor)
{
    if (reactor.wakeWrite < 0)
        return;
    const char byte = 1;
    while (::write(reactor.wakeWrite, &byte, 1) < 0) {
        if (errno == EINTR)
            continue;
        // EAGAIN: the pipe already holds unread wake bytes, which is
        // all a wake needs.
        break;
    }
}

void
Server::adoptSession(Reactor &reactor, int fd)
{
    std::string nb_error;
    if (!setNonBlocking(fd, &nb_error)) {
        closeFd(fd);
        return;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->reactorIndex = reactor.index;
    session->lastActivity = std::chrono::steady_clock::now();
    session->id =
        nextSessionId_.fetch_add(1, std::memory_order_relaxed);
    reactor.sessions.emplace(session->id, std::move(session));
    OBS_COUNTER_INC("serve.connections");
}

void
Server::reactorLoop(Reactor &reactor)
{
    // Everything below is hoisted so a steady-state iteration reuses
    // capacity instead of allocating.
    std::vector<std::pair<std::uint64_t, bool>> rearm;
    std::vector<int> inbox;
    std::vector<std::shared_ptr<Session>> pending;
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Session>> polled;
    while (true) {
        // Re-arm sessions whose worker finished since the last pass
        // (pool mode) and adopt fds handed over by reactor 0
        // (single-listener mode).
        rearm.clear();
        inbox.clear();
        pending.clear();
        {
            std::lock_guard<std::mutex> lock(reactor.mutex);
            rearm.swap(reactor.rearm);
            inbox.swap(reactor.inbox);
        }
        for (const auto &[id, close] : rearm) {
            auto it = reactor.sessions.find(id);
            if (it == reactor.sessions.end())
                continue;
            Session &session = *it->second;
            if (close) {
                reactor.sessions.erase(it);
                continue;
            }
            // The worker decoded the frame in place; drop it now that
            // the session is back under reactor control.
            if (session.pendingEraseBytes > 0) {
                session.inBuf.erase(0, session.pendingEraseBytes);
                session.pendingEraseBytes = 0;
            }
            session.inFlight = false;
            session.lastActivity = std::chrono::steady_clock::now();
            if (!session.inBuf.empty())
                pending.push_back(it->second);
        }
        for (const int fd : inbox)
            adoptSession(reactor, fd);
        // A client that pipelined its next request before the reply
        // already has it buffered; parse it now rather than waiting
        // for more socket data.
        for (const auto &session : pending) {
            if (!processSession(reactor, session))
                reactor.sessions.erase(session->id);
        }
        if (stopping_.load())
            break;

        fds.clear();
        polled.clear();
        fds.push_back(pollfd{reactor.wakeRead, POLLIN, 0});
        if (reactor.listenFd >= 0)
            fds.push_back(pollfd{reactor.listenFd, POLLIN, 0});
        const std::size_t fixed = fds.size();
        int timeout_ms = -1;
        const auto now = std::chrono::steady_clock::now();
        for (const auto &[id, session] : reactor.sessions) {
            if (session->inFlight)
                continue;
            fds.push_back(pollfd{session->fd, POLLIN, 0});
            polled.push_back(session);
            if (options_.readTimeoutMs > 0 &&
                !session->inBuf.empty()) {
                const auto deadline =
                    session->lastActivity +
                    std::chrono::milliseconds(options_.readTimeoutMs);
                const auto remaining =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline - now)
                        .count();
                const int clamped =
                    remaining < 0 ? 0
                                  : static_cast<int>(remaining) + 1;
                if (timeout_ms < 0 || clamped < timeout_ms)
                    timeout_ms = clamped;
            }
        }

        const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            util::fatal(util::format("ceerd poll: %s",
                                     std::strerror(errno)));
        }

        if (fds[0].revents & POLLIN) {
            char drain[64];
            while (::read(reactor.wakeRead, drain, sizeof drain) > 0) {
            }
        }

        if (reactor.listenFd >= 0 && (fds[1].revents & POLLIN)) {
            while (true) {
                bool again = false;
                std::string accept_error;
                const int fd = acceptRetry(reactor.listenFd, &again,
                                           &accept_error);
                if (fd < 0)
                    break;
                if (singleListener_ && reactors_.size() > 1) {
                    // Reactor 0 owns the only listener: spread
                    // accepted connections round-robin.
                    const std::size_t target =
                        nextReactorRR_++ % reactors_.size();
                    if (target != reactor.index) {
                        Reactor &peer = *reactors_[target];
                        {
                            std::lock_guard<std::mutex> lock(
                                peer.mutex);
                            peer.inbox.push_back(fd);
                        }
                        wake(peer);
                        continue;
                    }
                }
                adoptSession(reactor, fd);
            }
        }

        for (std::size_t i = 0; i < polled.size(); ++i) {
            const pollfd &entry = fds[fixed + i];
            const std::shared_ptr<Session> &session = polled[i];
            if (session->inFlight)
                continue; // Admitted by the pipelined-parse pass.
            bool keep = true;
            if (entry.revents & (POLLIN | POLLHUP | POLLERR))
                keep = readSession(reactor, session);
            if (keep && options_.readTimeoutMs > 0 &&
                !session->inBuf.empty() && !session->inFlight) {
                const auto stalled =
                    std::chrono::steady_clock::now() -
                    session->lastActivity;
                if (stalled > std::chrono::milliseconds(
                                  options_.readTimeoutMs)) {
                    sendTypedError(
                        session->fd, errc::kReadTimeout,
                        "frame not completed within read timeout");
                    keep = false;
                }
            }
            if (!keep)
                reactor.sessions.erase(session->id);
        }
    }

    // Shutdown: drop every session this reactor owns. Idle
    // connections close here (their destructor closes the fd);
    // pool-mode in-flight ones live on until their worker replies.
    reactor.sessions.clear();
    // Close any handed-over fds that never became sessions.
    inbox.clear();
    {
        std::lock_guard<std::mutex> lock(reactor.mutex);
        inbox.swap(reactor.inbox);
    }
    for (const int fd : inbox)
        closeFd(fd);
}

bool
Server::readSession(Reactor &reactor,
                    const std::shared_ptr<Session> &session)
{
    char chunk[65536];
    bool got_data = false;
    while (true) {
        const ssize_t n = ::recv(session->fd, chunk, sizeof chunk, 0);
        if (n > 0) {
            session->inBuf.append(chunk, static_cast<std::size_t>(n));
            got_data = true;
            continue;
        }
        if (n == 0)
            return false; // Peer closed; nothing left to answer.
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        return false;
    }
    if (got_data)
        session->lastActivity = std::chrono::steady_clock::now();
    return processSession(reactor, session);
}

bool
Server::processSession(Reactor &reactor,
                       const std::shared_ptr<Session> &session)
{
    while (session->inBuf.size() >= kFrameHeaderBytes) {
        FrameHeader header;
        std::string decode_error;
        if (!decodeFrameHeader(session->inBuf.data(), &header,
                               &decode_error)) {
            sendTypedError(session->fd, errc::kBadFrame, decode_error);
            return false;
        }
        // Length check straight off the header: a hostile length
        // field is refused before a single payload byte is buffered
        // or allocated.
        if (header.payloadBytes > options_.maxPayloadBytes) {
            sendTypedError(
                session->fd, errc::kPayloadTooLarge,
                util::format("payload of %u bytes exceeds limit %zu",
                             header.payloadBytes,
                             options_.maxPayloadBytes));
            return false;
        }
        const std::size_t frame_bytes =
            kFrameHeaderBytes + header.payloadBytes;
        if (session->inBuf.size() < frame_bytes)
            return true; // Wait for the rest of the frame.
        // The payload is decoded IN PLACE from the input buffer (it
        // sits at offset 24, which keeps CBF's 8-byte alignment); the
        // frame is erased only after it has been fully handled.
        const char *payload =
            session->inBuf.data() + kFrameHeaderBytes;
        if (io::xxhash64(payload, header.payloadBytes) !=
            header.checksum) {
            sendTypedError(session->fd, errc::kChecksumMismatch,
                           "payload checksum mismatch");
            return false;
        }
        switch (header.type) {
          case FrameType::Ping: {
            // One process-wide allocation, ever: the pong frame is a
            // constant.
            static const std::string pong =
                buildFrame(FrameType::Pong, "");
            std::string send_error;
            if (!sendAll(session->fd, pong.data(), pong.size(),
                         &send_error))
                return false;
            session->inBuf.erase(0, frame_bytes);
            continue;
          }
          case FrameType::Request:
          case FrameType::Reload: {
            if (inFlight_.load(std::memory_order_relaxed) >=
                options_.maxQueueDepth) {
                // Explicit backpressure: the client sees a typed
                // `overloaded` reply, never a silent drop.
                sendTypedError(session->fd, errc::kOverloaded,
                               util::format(
                                   "admission queue full (depth %zu)",
                                   options_.maxQueueDepth));
                return false;
            }
            const std::size_t depth =
                inFlight_.fetch_add(1, std::memory_order_relaxed) + 1;
            OBS_GAUGE_SET("serve.queue_depth",
                          static_cast<double>(depth));
            if (inlineExecute_) {
                // Inline mode: run the request right here on the
                // reactor thread — no handoff, no task allocation.
                const bool ok = dispatch(*session, header.type,
                                         payload,
                                         header.payloadBytes);
                const std::size_t after =
                    inFlight_.fetch_sub(1, std::memory_order_relaxed) -
                    1;
                OBS_GAUGE_SET("serve.queue_depth",
                              static_cast<double>(after));
                if (!ok)
                    return false;
                session->inBuf.erase(0, frame_bytes);
                session->lastActivity =
                    std::chrono::steady_clock::now();
                continue;
            }
            // Pool mode: park the frame at the front of inBuf (the
            // worker decodes it in place) and hand the session to the
            // shared pool; the reactor stops polling it until the
            // worker re-arms it.
            session->inFlight = true;
            session->pendingType = header.type;
            session->pendingPayloadBytes = header.payloadBytes;
            session->pendingEraseBytes = frame_bytes;
            {
                std::lock_guard<std::mutex> lock(drainMutex_);
                ++activeTasks_;
            }
            util::ThreadPool::shared().submit(
                [this, owned = session]() mutable {
                    execute(std::move(owned));
                });
            return true; // Not polled again until the worker re-arms.
          }
          default:
            sendTypedError(
                session->fd, errc::kBadFrame,
                util::format("frame type %u is not a client request",
                             static_cast<unsigned>(header.type)));
            return false;
        }
    }
    return true;
}

bool
Server::dispatch(Session &session, FrameType type, const char *payload,
                 std::size_t size)
{
    // The span name is only materialized when tracing is on; the
    // request path must not allocate otherwise.
    obs::ScopedSpan span(
        obs::enabled()
            ? util::format("serve.session.%llu",
                           static_cast<unsigned long long>(session.id))
            : std::string(),
        "serve");
    OBS_TIMER("serve.request_us");
    return type == FrameType::Request
               ? handleRequest(session, payload, size)
               : handleReload(session, payload, size);
}

void
Server::execute(std::shared_ptr<Session> session)
{
    const char *payload =
        session->inBuf.data() + kFrameHeaderBytes;
    const bool ok = dispatch(*session, session->pendingType, payload,
                             session->pendingPayloadBytes);
    const std::size_t depth =
        inFlight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    OBS_GAUGE_SET("serve.queue_depth", static_cast<double>(depth));
    finishTask(session, !ok);
}

bool
Server::handleRequest(Session &session, const char *payload,
                      std::size_t size)
{
    RecommendRequest &request = session.requestScratch;
    std::string error;
    if (!decodeRecommendRequestView(payload, size,
                                    &session.requestFile, &request,
                                    &error)) {
        sendTypedError(session.fd, errc::kBadRequest, error);
        return false;
    }
    if (!isKnownModelName(request.model)) {
        sendTypedError(session.fd, errc::kUnknownModel,
                       "unknown model '" + request.model + "'");
        return false;
    }
    if (request.batch < 1 || request.batch > 65536) {
        sendTypedError(session.fd, errc::kBadRequest,
                       util::format("batch %lld out of range [1, 65536]",
                                    static_cast<long long>(
                                        request.batch)));
        return false;
    }
    if (request.datasetSamples < 1) {
        sendTypedError(session.fd, errc::kBadRequest,
                       "samples must be >= 1");
        return false;
    }

    const std::shared_ptr<const Engine> engine = currentEngine();

    // model:batch -> fingerprint memo, so the warm path never
    // rebuilds a graph just to hash it.
    std::string &key = session.keyScratch;
    key.clear();
    key.append(request.model);
    key.push_back(':');
    appendDecimal(&key, static_cast<long long>(request.batch));
    std::uint64_t fingerprint = 0;
    bool have_fingerprint = false;
    const auto key_it = session.requestKeys.find(key);
    if (key_it != session.requestKeys.end()) {
        fingerprint = key_it->second;
        have_fingerprint = true;
    }
    std::shared_ptr<const graph::Graph> graph;
    if (!have_fingerprint) {
        graph = std::make_shared<const graph::Graph>(
            models::buildModel(request.model, request.batch));
        fingerprint = graphFingerprint(*graph);
        session.requestKeys.emplace(key, fingerprint);
    }

    // Process-wide shared plan cache: identical graphs compile once
    // no matter how many connections ask for them, and the entry is
    // pinned for the duration of this request even if a hot reload
    // lands mid-flight. tryGet is the allocation-free hit path;
    // getOrCompile coordinates the (cold) compile across sessions.
    std::shared_ptr<const PlanEntry> entry =
        planCache_.tryGet(fingerprint, engine->generation);
    if (!entry) {
        entry = planCache_.getOrCompile(
            fingerprint, engine->generation, [&]() {
                PlanEntry fresh;
                fresh.fingerprint = fingerprint;
                fresh.generation = engine->generation;
                fresh.graph =
                    graph ? graph
                          : std::make_shared<const graph::Graph>(
                                models::buildModel(request.model,
                                                   request.batch));
                OBS_TIMER("serve.compile_us");
                OBS_COUNTER_INC("serve.plan_compiles");
                auto plan =
                    std::make_shared<const core::PredictPlan>(
                        engine->predictor.compile(*fresh.graph));
                // Coalesced warm-up: evaluate every distinct (GPU, k)
                // cell of the catalog through one predictBatch call,
                // so the sweep below (and every request sharing this
                // plan) hits only the memo.
                std::vector<core::PredictRequest> warm;
                for (const cloud::GpuInstance &instance :
                     candidates_) {
                    bool seen = false;
                    for (const core::PredictRequest &w : warm) {
                        if (w.gpu == instance.gpu &&
                            w.numGpus == instance.numGpus) {
                            seen = true;
                            break;
                        }
                    }
                    if (!seen)
                        warm.push_back(core::PredictRequest{
                            instance.gpu, instance.numGpus});
                }
                engine->predictor.predictBatch(*plan, warm);
                // The memory-fit walk is the recommender's only
                // O(nodes) per-query step; bake the verdicts into the
                // entry so warm sweeps skip it.
                fresh.fits = core::computeMemoryFits(*fresh.graph);
                fresh.bytes = plan->approxBytes();
                fresh.plan = std::move(plan);
                return fresh;
            });
    }

    core::WorkloadSpec workload;
    workload.graph = entry->graph.get();
    workload.datasetSamples = request.datasetSamples;
    workload.batchPerGpu = request.batch;
    core::Constraints constraints;
    constraints.hourlyBudgetUsd = request.hourlyBudgetUsd;
    constraints.hourlyToleranceUsd = request.hourlyToleranceUsd;
    constraints.totalBudgetUsd = request.totalBudgetUsd;
    constraints.enforceGpuMemory = request.enforceGpuMemory;
    const core::ObjectiveFn objective = core::objectiveFunction(
        request.objective == "time" ? core::Objective::MinTrainingTime
                                    : core::Objective::MinCost);

    // The sweep, projection and encode all write into per-session
    // scratch: a warm request allocates nothing from here on.
    core::recommendInto(engine->predictor, *entry->plan, workload,
                        candidates_, objective, constraints,
                        options_.sweepThreads, &session.sweepScratch,
                        &entry->fits);
    responseFromRecommendationInto(session.sweepScratch,
                                   &session.responseScratch);
    encodeRecommendResponseInto(session.responseScratch,
                                &session.encodeScratch,
                                &session.payloadScratch);
    buildFrameInto(FrameType::Response, session.payloadScratch,
                   &session.frameScratch);
    if (!sendAll(session.fd, session.frameScratch.data(),
                 session.frameScratch.size(), &error))
        return false;
    OBS_COUNTER_INC("serve.requests");
    return true;
}

bool
Server::handleReload(Session &session, const char *payload,
                     std::size_t size)
{
    const std::string payload_str(payload, size);
    ReloadRequest reload;
    std::string error;
    if (!decodeReloadRequest(payload_str, &reload, &error)) {
        sendTypedError(session.fd, errc::kBadRequest, error);
        return false;
    }
    core::CeerModel model;
    if (!core::CeerModel::tryLoadFile(reload.modelPath, &model,
                                      &error)) {
        sendTypedError(session.fd, errc::kBadRequest,
                       "reload failed: " + error);
        return false;
    }
    ReloadDone done;
    {
        std::lock_guard<std::mutex> lock(engineMutex_);
        done.generation = engine_->generation + 1;
        engine_ = std::make_shared<const Engine>(std::move(model),
                                                 done.generation);
    }
    OBS_COUNTER_INC("serve.reloads");
    const std::string frame =
        buildFrame(FrameType::ReloadDone, encodeReloadDone(done));
    if (!sendAll(session.fd, frame.data(), frame.size(), &error))
        return false;
    OBS_COUNTER_INC("serve.requests");
    return true;
}

void
Server::finishTask(const std::shared_ptr<Session> &session, bool close)
{
    Reactor &reactor = *reactors_[session->reactorIndex];
    {
        std::lock_guard<std::mutex> lock(reactor.mutex);
        reactor.rearm.emplace_back(session->id, close);
    }
    wake(reactor);
    {
        // Notify while still holding the mutex: stop() may destroy
        // this Server the instant it observes activeTasks_ == 0, and
        // the waiter cannot get past its wait() until we release the
        // lock — which sequences the notify before any destruction.
        std::lock_guard<std::mutex> lock(drainMutex_);
        --activeTasks_;
        drainCv_.notify_all();
    }
}

} // namespace serve
} // namespace ceer
