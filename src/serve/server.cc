#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <set>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "io/cbf.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "serve/net.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ceer {
namespace serve {

namespace {

/**
 * models::buildModel fatals on unknown names, so the server validates
 * against the full buildable set (the 12-CNN zoo plus the
 * out-of-family extras) and answers `unknown_model` instead of dying.
 */
bool
isKnownModelName(const std::string &name)
{
    static const std::set<std::string> known = [] {
        std::set<std::string> names(models::allModelNames().begin(),
                                    models::allModelNames().end());
        names.insert("transformer_encoder");
        names.insert("lstm_classifier");
        names.insert("mobilenet_v1");
        return names;
    }();
    return known.count(name) > 0;
}

/** Sends a typed Error frame and counts the rejection. */
void
sendTypedError(int fd, const std::string &code,
               const std::string &message)
{
    ErrorInfo info;
    info.code = code;
    info.message = message;
    const std::string frame =
        buildFrame(FrameType::Error, encodeError(info));
    std::string send_error;
    // Best effort: the connection is closing either way; a peer that
    // already vanished just skips the courtesy reply.
    sendAll(fd, frame.data(), frame.size(), &send_error);
    OBS_COUNTER_INC("serve.rejected");
}

} // namespace

Server::Session::~Session() { closeFd(fd); }

Server::Server(core::CeerModel model, cloud::InstanceCatalog catalog,
               ServerOptions options)
    : options_(std::move(options)),
      candidates_(catalog.instances()),
      engine_(std::make_shared<const Engine>(std::move(model), 1))
{
}

Server::~Server() { stop(); }

std::shared_ptr<const Server::Engine>
Server::currentEngine() const
{
    std::lock_guard<std::mutex> lock(engineMutex_);
    return engine_;
}

std::uint64_t
Server::generation() const
{
    return currentEngine()->generation;
}

bool
Server::tryStart(std::string *error)
{
    if (started_) {
        if (error)
            *error = "server already started";
        return false;
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        if (error)
            *error = "pipe: " + std::string(std::strerror(errno));
        return false;
    }
    wakeRead_ = pipe_fds[0];
    wakeWrite_ = pipe_fds[1];
    std::string nb_error;
    if (!setNonBlocking(wakeRead_, &nb_error) ||
        !setNonBlocking(wakeWrite_, &nb_error)) {
        closeFd(wakeRead_);
        closeFd(wakeWrite_);
        wakeRead_ = wakeWrite_ = -1;
        if (error)
            *error = nb_error;
        return false;
    }
    listenFd_ = listenTcp(options_.host, options_.port,
                          options_.backlog, &port_, error);
    if (listenFd_ < 0) {
        closeFd(wakeRead_);
        closeFd(wakeWrite_);
        wakeRead_ = wakeWrite_ = -1;
        return false;
    }
    if (!setNonBlocking(listenFd_, &nb_error)) {
        closeFd(listenFd_);
        closeFd(wakeRead_);
        closeFd(wakeWrite_);
        listenFd_ = wakeRead_ = wakeWrite_ = -1;
        if (error)
            *error = nb_error;
        return false;
    }
    started_ = true;
    stopping_ = false;
    reactor_ = std::thread([this] { reactorLoop(); });
    return true;
}

void
Server::stop()
{
    if (!started_)
        return;
    stopping_ = true;
    wake();
    if (reactor_.joinable())
        reactor_.join();
    {
        // Admitted requests finish on the pool; their sessions stay
        // alive through the workers' shared_ptrs even though the
        // reactor dropped the session map on exit.
        std::unique_lock<std::mutex> lock(drainMutex_);
        drainCv_.wait(lock, [this] { return activeTasks_ == 0; });
    }
    closeFd(listenFd_);
    closeFd(wakeRead_);
    closeFd(wakeWrite_);
    listenFd_ = wakeRead_ = wakeWrite_ = -1;
    started_ = false;
}

bool
Server::tryReload(const std::string &model_path, std::string *error)
{
    core::CeerModel model;
    if (!core::CeerModel::tryLoadFile(model_path, &model, error))
        return false;
    {
        std::lock_guard<std::mutex> lock(engineMutex_);
        engine_ = std::make_shared<const Engine>(
            std::move(model), engine_->generation + 1);
    }
    OBS_COUNTER_INC("serve.reloads");
    return true;
}

void
Server::wake()
{
    if (wakeWrite_ < 0)
        return;
    const char byte = 1;
    while (::write(wakeWrite_, &byte, 1) < 0) {
        if (errno == EINTR)
            continue;
        // EAGAIN: the pipe already holds unread wake bytes, which is
        // all a wake needs.
        break;
    }
}

void
Server::reactorLoop()
{
    std::vector<std::shared_ptr<Session>> pending;
    while (true) {
        // Re-arm sessions whose worker finished since the last pass.
        pending.clear();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto &[id, close] : rearm_) {
                auto it = sessions_.find(id);
                if (it == sessions_.end())
                    continue;
                if (close) {
                    sessions_.erase(it);
                    continue;
                }
                it->second->inFlight = false;
                it->second->lastActivity =
                    std::chrono::steady_clock::now();
                if (!it->second->inBuf.empty())
                    pending.push_back(it->second);
            }
            rearm_.clear();
        }
        // A client that pipelined its next request before the reply
        // already has it buffered; parse it now rather than waiting
        // for more socket data.
        for (const auto &session : pending) {
            if (!processSession(session)) {
                std::lock_guard<std::mutex> lock(mutex_);
                sessions_.erase(session->id);
            }
        }
        if (stopping_.load())
            break;

        std::vector<pollfd> fds;
        std::vector<std::shared_ptr<Session>> polled;
        fds.push_back(pollfd{wakeRead_, POLLIN, 0});
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        int timeout_ms = -1;
        const auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto &[id, session] : sessions_) {
                if (session->inFlight)
                    continue;
                fds.push_back(pollfd{session->fd, POLLIN, 0});
                polled.push_back(session);
                if (options_.readTimeoutMs > 0 &&
                    !session->inBuf.empty()) {
                    const auto deadline =
                        session->lastActivity +
                        std::chrono::milliseconds(
                            options_.readTimeoutMs);
                    const auto remaining =
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline - now)
                            .count();
                    const int clamped =
                        remaining < 0 ? 0
                                      : static_cast<int>(remaining) + 1;
                    if (timeout_ms < 0 || clamped < timeout_ms)
                        timeout_ms = clamped;
                }
            }
        }

        int ready = ::poll(fds.data(), fds.size(), timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            util::fatal(util::format("ceerd poll: %s",
                                     std::strerror(errno)));
        }

        if (fds[0].revents & POLLIN) {
            char drain[64];
            while (::read(wakeRead_, drain, sizeof drain) > 0) {
            }
        }

        if (fds[1].revents & POLLIN) {
            while (true) {
                bool again = false;
                std::string accept_error;
                const int fd =
                    acceptRetry(listenFd_, &again, &accept_error);
                if (fd < 0)
                    break;
                std::string nb_error;
                if (!setNonBlocking(fd, &nb_error)) {
                    closeFd(fd);
                    continue;
                }
                auto session = std::make_shared<Session>();
                session->fd = fd;
                session->lastActivity =
                    std::chrono::steady_clock::now();
                std::lock_guard<std::mutex> lock(mutex_);
                session->id = nextSessionId_++;
                sessions_.emplace(session->id, session);
                OBS_COUNTER_INC("serve.connections");
            }
        }

        for (std::size_t i = 0; i < polled.size(); ++i) {
            const pollfd &entry = fds[i + 2];
            const std::shared_ptr<Session> &session = polled[i];
            if (session->inFlight)
                continue; // Admitted by the pipelined-parse pass.
            bool keep = true;
            if (entry.revents & (POLLIN | POLLHUP | POLLERR))
                keep = readSession(session);
            if (keep && options_.readTimeoutMs > 0 &&
                !session->inBuf.empty() && !session->inFlight) {
                const auto stalled =
                    std::chrono::steady_clock::now() -
                    session->lastActivity;
                if (stalled > std::chrono::milliseconds(
                                  options_.readTimeoutMs)) {
                    sendTypedError(
                        session->fd, errc::kReadTimeout,
                        "frame not completed within read timeout");
                    keep = false;
                }
            }
            if (!keep) {
                std::lock_guard<std::mutex> lock(mutex_);
                sessions_.erase(session->id);
            }
        }
    }

    // Shutdown: drop every session the reactor still owns. Idle
    // connections close here (their destructor closes the fd);
    // in-flight ones live on until their worker replies.
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.clear();
}

bool
Server::readSession(const std::shared_ptr<Session> &session)
{
    char chunk[65536];
    bool got_data = false;
    while (true) {
        const ssize_t n = ::recv(session->fd, chunk, sizeof chunk, 0);
        if (n > 0) {
            session->inBuf.append(chunk, static_cast<std::size_t>(n));
            got_data = true;
            continue;
        }
        if (n == 0)
            return false; // Peer closed; nothing left to answer.
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        return false;
    }
    if (got_data)
        session->lastActivity = std::chrono::steady_clock::now();
    return processSession(session);
}

bool
Server::processSession(const std::shared_ptr<Session> &session)
{
    while (session->inBuf.size() >= kFrameHeaderBytes) {
        FrameHeader header;
        std::string decode_error;
        if (!decodeFrameHeader(session->inBuf.data(), &header,
                               &decode_error)) {
            sendTypedError(session->fd, errc::kBadFrame, decode_error);
            return false;
        }
        // Length check straight off the header: a hostile length
        // field is refused before a single payload byte is buffered
        // or allocated.
        if (header.payloadBytes > options_.maxPayloadBytes) {
            sendTypedError(
                session->fd, errc::kPayloadTooLarge,
                util::format("payload of %u bytes exceeds limit %zu",
                             header.payloadBytes,
                             options_.maxPayloadBytes));
            return false;
        }
        const std::size_t frame_bytes =
            kFrameHeaderBytes + header.payloadBytes;
        if (session->inBuf.size() < frame_bytes)
            return true; // Wait for the rest of the frame.
        std::string payload =
            session->inBuf.substr(kFrameHeaderBytes,
                                  header.payloadBytes);
        session->inBuf.erase(0, frame_bytes);
        if (io::xxhash64(payload.data(), payload.size()) !=
            header.checksum) {
            sendTypedError(session->fd, errc::kChecksumMismatch,
                           "payload checksum mismatch");
            return false;
        }
        switch (header.type) {
          case FrameType::Ping: {
            const std::string pong = buildFrame(FrameType::Pong, "");
            std::string send_error;
            if (!sendAll(session->fd, pong.data(), pong.size(),
                         &send_error))
                return false;
            continue;
          }
          case FrameType::Request:
          case FrameType::Reload: {
            if (inFlight_.load(std::memory_order_relaxed) >=
                options_.maxQueueDepth) {
                // Explicit backpressure: the client sees a typed
                // `overloaded` reply, never a silent drop.
                sendTypedError(session->fd, errc::kOverloaded,
                               util::format(
                                   "admission queue full (depth %zu)",
                                   options_.maxQueueDepth));
                return false;
            }
            const std::size_t depth =
                inFlight_.fetch_add(1, std::memory_order_relaxed) + 1;
            OBS_GAUGE_SET("serve.queue_depth",
                          static_cast<double>(depth));
            session->inFlight = true;
            {
                std::lock_guard<std::mutex> lock(drainMutex_);
                ++activeTasks_;
            }
            const FrameType type = header.type;
            std::shared_ptr<Session> owned = session;
            util::ThreadPool::shared().submit(
                [this, owned = std::move(owned), type,
                 payload = std::move(payload)]() mutable {
                    execute(std::move(owned), type,
                            std::move(payload));
                });
            return true; // Not polled again until the worker re-arms.
          }
          default:
            sendTypedError(
                session->fd, errc::kBadFrame,
                util::format("frame type %u is not a client request",
                             static_cast<unsigned>(header.type)));
            return false;
        }
    }
    return true;
}

void
Server::execute(std::shared_ptr<Session> session, FrameType type,
                std::string payload)
{
    bool close = false;
    {
        obs::ScopedSpan span(
            util::format("serve.session.%llu",
                         static_cast<unsigned long long>(session->id)),
            "serve");
        OBS_TIMER("serve.request_us");
        if (type == FrameType::Request)
            close = !handleRequest(*session, payload);
        else
            close = !handleReload(*session, payload);
    }
    finishTask(session, close);
}

bool
Server::handleRequest(Session &session, const std::string &payload)
{
    RecommendRequest request;
    std::string error;
    if (!decodeRecommendRequest(payload, &request, &error)) {
        sendTypedError(session.fd, errc::kBadRequest, error);
        return false;
    }
    if (!isKnownModelName(request.model)) {
        sendTypedError(session.fd, errc::kUnknownModel,
                       "unknown model '" + request.model + "'");
        return false;
    }
    if (request.batch < 1 || request.batch > 65536) {
        sendTypedError(session.fd, errc::kBadRequest,
                       util::format("batch %lld out of range [1, 65536]",
                                    static_cast<long long>(
                                        request.batch)));
        return false;
    }
    if (request.datasetSamples < 1) {
        sendTypedError(session.fd, errc::kBadRequest,
                       "samples must be >= 1");
        return false;
    }

    const std::shared_ptr<const Engine> engine = currentEngine();

    // Per-session plan cache, keyed by graph fingerprint. The
    // model:batch memo avoids rebuilding the graph just to hash it.
    const std::string request_key =
        request.model + ":" + std::to_string(request.batch);
    CachedPlan *cached = nullptr;
    auto key_it = session.requestKeys.find(request_key);
    if (key_it != session.requestKeys.end()) {
        auto plan_it = session.plans.find(key_it->second);
        if (plan_it != session.plans.end())
            cached = &plan_it->second;
    }
    if (cached == nullptr) {
        auto graph = std::make_shared<const graph::Graph>(
            models::buildModel(request.model, request.batch));
        const std::uint64_t fingerprint = graphFingerprint(*graph);
        session.requestKeys[request_key] = fingerprint;
        CachedPlan entry;
        entry.graph = std::move(graph);
        cached =
            &session.plans.emplace(fingerprint, std::move(entry))
                 .first->second;
    }
    if (!cached->plan || cached->generation != engine->generation) {
        // Stale or missing: (re)compile against the serving engine.
        // Entries from before a hot reload die here lazily.
        OBS_TIMER("serve.compile_us");
        OBS_COUNTER_INC("serve.plan_compiles");
        auto plan = std::make_shared<const core::PredictPlan>(
            engine->predictor.compile(*cached->graph));
        // Coalesced warm-up: evaluate every distinct (GPU, k) cell of
        // the catalog through one predictBatch call, so the sweep
        // below (and every queued request sharing this plan) hits
        // only the memo.
        std::vector<core::PredictRequest> warm;
        for (const cloud::GpuInstance &instance : candidates_) {
            bool seen = false;
            for (const core::PredictRequest &w : warm) {
                if (w.gpu == instance.gpu &&
                    w.numGpus == instance.numGpus) {
                    seen = true;
                    break;
                }
            }
            if (!seen)
                warm.push_back(core::PredictRequest{
                    instance.gpu, instance.numGpus});
        }
        engine->predictor.predictBatch(*plan, warm);
        cached->plan = std::move(plan);
        cached->generation = engine->generation;
    }

    core::WorkloadSpec workload;
    workload.graph = cached->graph.get();
    workload.datasetSamples = request.datasetSamples;
    workload.batchPerGpu = request.batch;
    core::Constraints constraints;
    constraints.hourlyBudgetUsd = request.hourlyBudgetUsd;
    constraints.hourlyToleranceUsd = request.hourlyToleranceUsd;
    constraints.totalBudgetUsd = request.totalBudgetUsd;
    constraints.enforceGpuMemory = request.enforceGpuMemory;
    const core::ObjectiveFn objective = core::objectiveFunction(
        request.objective == "time" ? core::Objective::MinTrainingTime
                                    : core::Objective::MinCost);

    const core::Recommendation recommendation = core::recommend(
        engine->predictor, *cached->plan, workload, candidates_,
        objective, constraints, options_.sweepThreads);

    const std::string response = encodeRecommendResponse(
        responseFromRecommendation(recommendation));
    const std::string frame =
        buildFrame(FrameType::Response, response);
    if (!sendAll(session.fd, frame.data(), frame.size(), &error))
        return false;
    OBS_COUNTER_INC("serve.requests");
    return true;
}

bool
Server::handleReload(Session &session, const std::string &payload)
{
    ReloadRequest reload;
    std::string error;
    if (!decodeReloadRequest(payload, &reload, &error)) {
        sendTypedError(session.fd, errc::kBadRequest, error);
        return false;
    }
    core::CeerModel model;
    if (!core::CeerModel::tryLoadFile(reload.modelPath, &model,
                                      &error)) {
        sendTypedError(session.fd, errc::kBadRequest,
                       "reload failed: " + error);
        return false;
    }
    ReloadDone done;
    {
        std::lock_guard<std::mutex> lock(engineMutex_);
        done.generation = engine_->generation + 1;
        engine_ = std::make_shared<const Engine>(std::move(model),
                                                 done.generation);
    }
    OBS_COUNTER_INC("serve.reloads");
    const std::string frame =
        buildFrame(FrameType::ReloadDone, encodeReloadDone(done));
    if (!sendAll(session.fd, frame.data(), frame.size(), &error))
        return false;
    OBS_COUNTER_INC("serve.requests");
    return true;
}

void
Server::finishTask(const std::shared_ptr<Session> &session, bool close)
{
    const std::size_t depth =
        inFlight_.fetch_sub(1, std::memory_order_relaxed) - 1;
    OBS_GAUGE_SET("serve.queue_depth", static_cast<double>(depth));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rearm_.emplace_back(session->id, close);
    }
    wake();
    {
        // Notify while still holding the mutex: stop() may destroy
        // this Server the instant it observes activeTasks_ == 0, and
        // the waiter cannot get past its wait() until we release the
        // lock — which sequences the notify before any destruction.
        std::lock_guard<std::mutex> lock(drainMutex_);
        --activeTasks_;
        drainCv_.notify_all();
    }
}

} // namespace serve
} // namespace ceer
