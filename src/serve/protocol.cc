#include "serve/protocol.h"

#include <cstring>

#include "io/cbf.h"
#include "util/random.h"
#include "util/strings.h"

namespace ceer {
namespace serve {

namespace {

void
putU16(char *out, std::uint16_t v)
{
    out[0] = static_cast<char>(v & 0xff);
    out[1] = static_cast<char>((v >> 8) & 0xff);
}

void
putU32(char *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU64(char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint16_t
getU16(const char *data)
{
    const auto *u = reinterpret_cast<const unsigned char *>(data);
    return static_cast<std::uint16_t>(u[0] |
                                      (static_cast<unsigned>(u[1]) << 8));
}

std::uint32_t
getU32(const char *data)
{
    const auto *u = reinterpret_cast<const unsigned char *>(data);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(u[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const char *data)
{
    const auto *u = reinterpret_cast<const unsigned char *>(data);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(u[i]) << (8 * i);
    return v;
}

/** Parses @p payload as CBF with a protocol-level error message. */
bool
parsePayload(const std::string &payload, const char *what,
             io::CbfFile *file, std::string *error)
{
    std::string parse_error;
    if (!io::CbfFile::tryParse(payload, file, &parse_error)) {
        if (error)
            *error = std::string(what) + ": " + parse_error;
        return false;
    }
    return true;
}

/** Reads the single element of a required scalar i64 column. */
bool
readScalarI64(const io::CbfFile &file, const std::string &name,
              std::int64_t *out, std::string *error)
{
    const std::int64_t *data = nullptr;
    std::size_t count = 0;
    if (!file.i64(name, &data, &count, error))
        return false;
    if (count != 1) {
        if (error)
            *error = "column '" + name + "' must hold exactly 1 value";
        return false;
    }
    *out = data[0];
    return true;
}

/** Reads the single element of a required scalar f64 column. */
bool
readScalarF64(const io::CbfFile &file, const std::string &name,
              double *out, std::string *error)
{
    const double *data = nullptr;
    std::size_t count = 0;
    if (!file.f64(name, &data, &count, error))
        return false;
    if (count != 1) {
        if (error)
            *error = "column '" + name + "' must hold exactly 1 value";
        return false;
    }
    *out = data[0];
    return true;
}

/** Reads a required bytes column into a string. */
bool
readBytes(const io::CbfFile &file, const std::string &name,
          std::string *out, std::string *error)
{
    const char *data = nullptr;
    std::size_t size = 0;
    if (!file.bytes(name, &data, &size, error))
        return false;
    out->assign(data, size);
    return true;
}

/** Reads a required f64 column into a vector. */
bool
readF64Vector(const io::CbfFile &file, const std::string &name,
              std::vector<double> *out, std::string *error)
{
    const double *data = nullptr;
    std::size_t count = 0;
    if (!file.f64(name, &data, &count, error))
        return false;
    out->assign(data, data + count);
    return true;
}

} // namespace

bool
isKnownFrameType(std::uint8_t type)
{
    return type >= static_cast<std::uint8_t>(FrameType::Request) &&
           type <= static_cast<std::uint8_t>(FrameType::ReloadDone);
}

void
encodeFrameHeader(const FrameHeader &header, char *out)
{
    std::memcpy(out, kFrameMagic, 4);
    out[4] = static_cast<char>(kProtocolVersion);
    out[5] = static_cast<char>(header.type);
    putU16(out + 6, 0);
    putU32(out + 8, header.payloadBytes);
    putU32(out + 12, 0);
    putU64(out + 16, header.checksum);
}

bool
decodeFrameHeader(const char *data, FrameHeader *out,
                  std::string *error)
{
    if (std::memcmp(data, kFrameMagic, 4) != 0) {
        if (error)
            *error = "bad frame magic";
        return false;
    }
    const auto version = static_cast<std::uint8_t>(data[4]);
    if (version != kProtocolVersion) {
        if (error)
            *error = util::format("unsupported protocol version %u",
                                  static_cast<unsigned>(version));
        return false;
    }
    const auto type = static_cast<std::uint8_t>(data[5]);
    if (!isKnownFrameType(type)) {
        if (error)
            *error = util::format("unknown frame type %u",
                                  static_cast<unsigned>(type));
        return false;
    }
    if (getU16(data + 6) != 0 || getU32(data + 12) != 0) {
        if (error)
            *error = "reserved header fields must be zero";
        return false;
    }
    out->type = static_cast<FrameType>(type);
    out->payloadBytes = getU32(data + 8);
    out->checksum = getU64(data + 16);
    return true;
}

void
buildFrameInto(FrameType type, const std::string &payload,
               std::string *out)
{
    FrameHeader header;
    header.type = type;
    header.payloadBytes = static_cast<std::uint32_t>(payload.size());
    header.checksum = io::xxhash64(payload.data(), payload.size());
    out->clear();
    out->reserve(kFrameHeaderBytes + payload.size());
    out->resize(kFrameHeaderBytes);
    encodeFrameHeader(header, out->data());
    out->append(payload);
}

std::string
buildFrame(FrameType type, const std::string &payload)
{
    std::string frame;
    buildFrameInto(type, payload, &frame);
    return frame;
}

std::string
encodeRecommendRequest(const RecommendRequest &request)
{
    io::CbfBuilder builder;
    builder.addBytes("model", request.model);
    builder.addI64("batch", {request.batch});
    builder.addI64("samples", {request.datasetSamples});
    builder.addBytes("objective", request.objective);
    builder.addF64("hourly_budget", {request.hourlyBudgetUsd});
    builder.addF64("hourly_tolerance", {request.hourlyToleranceUsd});
    builder.addF64("total_budget", {request.totalBudgetUsd});
    builder.addU8("enforce_memory",
                  {request.enforceGpuMemory ? std::uint8_t(1)
                                            : std::uint8_t(0)});
    return builder.build();
}

bool
decodeRecommendRequestView(const char *payload, std::size_t size,
                           io::CbfFile *scratch, RecommendRequest *out,
                           std::string *error)
{
    std::string parse_error;
    if (!io::CbfFile::tryParseView(payload, size, scratch,
                                   &parse_error)) {
        if (error)
            *error = "recommend request: " + parse_error;
        return false;
    }
    const io::CbfFile &file = *scratch;
    RecommendRequest &request = *out;
    if (!readBytes(file, "model", &request.model, error) ||
        !readScalarI64(file, "batch", &request.batch, error) ||
        !readScalarI64(file, "samples", &request.datasetSamples,
                       error) ||
        !readBytes(file, "objective", &request.objective, error) ||
        !readScalarF64(file, "hourly_budget", &request.hourlyBudgetUsd,
                       error) ||
        !readScalarF64(file, "hourly_tolerance",
                       &request.hourlyToleranceUsd, error) ||
        !readScalarF64(file, "total_budget", &request.totalBudgetUsd,
                       error)) {
        return false;
    }
    const std::uint8_t *enforce = nullptr;
    std::size_t count = 0;
    if (!file.u8("enforce_memory", &enforce, &count, error))
        return false;
    if (count != 1) {
        if (error)
            *error = "column 'enforce_memory' must hold exactly 1 value";
        return false;
    }
    request.enforceGpuMemory = enforce[0] != 0;
    if (request.objective != "cost" && request.objective != "time") {
        if (error)
            *error = "objective must be 'cost' or 'time', got '" +
                     request.objective + "'";
        return false;
    }
    return true;
}

bool
decodeRecommendRequest(const std::string &payload,
                       RecommendRequest *out, std::string *error)
{
    io::CbfFile file;
    RecommendRequest request;
    if (!decodeRecommendRequestView(payload.data(), payload.size(),
                                    &file, &request, error))
        return false;
    *out = std::move(request);
    return true;
}

void
responseFromRecommendationInto(
    const core::Recommendation &recommendation, RecommendResponse *out)
{
    out->bestIndex = recommendation.bestIndex;
    const std::size_t n = recommendation.evaluations.size();
    out->instances.resize(n);
    out->hourlyUsd.resize(n);
    out->hours.resize(n);
    out->costUsd.resize(n);
    out->iterationUs.resize(n);
    out->feasible.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const core::CandidateEvaluation &evaluation =
            recommendation.evaluations[i];
        out->instances[i] = evaluation.instance.name;
        out->hourlyUsd[i] = evaluation.instance.hourlyUsd;
        out->hours[i] = evaluation.prediction.hours;
        out->costUsd[i] = evaluation.costUsd;
        out->iterationUs[i] = evaluation.prediction.iterationUs;
        out->feasible[i] = evaluation.feasible() ? 1 : 0;
    }
}

RecommendResponse
responseFromRecommendation(const core::Recommendation &recommendation)
{
    RecommendResponse response;
    responseFromRecommendationInto(recommendation, &response);
    return response;
}

void
encodeRecommendResponseInto(const RecommendResponse &response,
                            ResponseEncodeScratch *scratch,
                            std::string *payload)
{
    io::CbfBuilder &builder = scratch->builder;
    builder.clear();
    builder.addI64("best_index", &response.bestIndex, 1);
    // The "instance" string column, laid out exactly as
    // io::addStringColumn does but through reusable scratch buffers.
    std::string &blob = scratch->blob;
    std::vector<std::uint64_t> &offsets = scratch->offsets;
    blob.clear();
    offsets.clear();
    offsets.reserve(response.instances.size() + 1);
    offsets.push_back(0);
    for (const std::string &name : response.instances) {
        blob += name;
        offsets.push_back(blob.size());
    }
    builder.addBytes("instance", blob);
    builder.addU64("instance.off", offsets.data(), offsets.size());
    builder.addF64("hourly_usd", response.hourlyUsd.data(),
                   response.hourlyUsd.size());
    builder.addF64("hours", response.hours.data(),
                   response.hours.size());
    builder.addF64("cost_usd", response.costUsd.data(),
                   response.costUsd.size());
    builder.addF64("iteration_us", response.iterationUs.data(),
                   response.iterationUs.size());
    builder.addU8("feasible", response.feasible.data(),
                  response.feasible.size());
    builder.buildInto(payload);
}

std::string
encodeRecommendResponse(const RecommendResponse &response)
{
    ResponseEncodeScratch scratch;
    std::string payload;
    encodeRecommendResponseInto(response, &scratch, &payload);
    return payload;
}

bool
decodeRecommendResponse(const std::string &payload,
                        RecommendResponse *out, std::string *error)
{
    io::CbfFile file;
    if (!parsePayload(payload, "recommend response", &file, error))
        return false;
    RecommendResponse response;
    if (!readScalarI64(file, "best_index", &response.bestIndex, error))
        return false;
    if (!io::readStringColumn(file, "instance", &response.instances,
                              error))
        return false;
    if (!readF64Vector(file, "hourly_usd", &response.hourlyUsd, error) ||
        !readF64Vector(file, "hours", &response.hours, error) ||
        !readF64Vector(file, "cost_usd", &response.costUsd, error) ||
        !readF64Vector(file, "iteration_us", &response.iterationUs,
                       error)) {
        return false;
    }
    const std::uint8_t *feasible = nullptr;
    std::size_t count = 0;
    if (!file.u8("feasible", &feasible, &count, error))
        return false;
    response.feasible.assign(feasible, feasible + count);
    const std::size_t n = response.instances.size();
    if (response.hourlyUsd.size() != n || response.hours.size() != n ||
        response.costUsd.size() != n ||
        response.iterationUs.size() != n ||
        response.feasible.size() != n) {
        if (error)
            *error = "response columns disagree on candidate count";
        return false;
    }
    if (response.bestIndex >= static_cast<std::int64_t>(n)) {
        if (error)
            *error = util::format(
                "best_index %lld out of range for %zu candidates",
                static_cast<long long>(response.bestIndex), n);
        return false;
    }
    *out = std::move(response);
    return true;
}

std::string
encodeError(const ErrorInfo &info)
{
    io::CbfBuilder builder;
    builder.addBytes("code", info.code);
    builder.addBytes("message", info.message);
    return builder.build();
}

bool
decodeError(const std::string &payload, ErrorInfo *out,
            std::string *error)
{
    io::CbfFile file;
    if (!parsePayload(payload, "error payload", &file, error))
        return false;
    ErrorInfo info;
    if (!readBytes(file, "code", &info.code, error) ||
        !readBytes(file, "message", &info.message, error)) {
        return false;
    }
    *out = std::move(info);
    return true;
}

std::string
encodeReloadRequest(const ReloadRequest &request)
{
    io::CbfBuilder builder;
    builder.addBytes("model_path", request.modelPath);
    return builder.build();
}

bool
decodeReloadRequest(const std::string &payload, ReloadRequest *out,
                    std::string *error)
{
    io::CbfFile file;
    if (!parsePayload(payload, "reload request", &file, error))
        return false;
    ReloadRequest request;
    if (!readBytes(file, "model_path", &request.modelPath, error))
        return false;
    if (request.modelPath.empty()) {
        if (error)
            *error = "reload request has an empty model path";
        return false;
    }
    *out = std::move(request);
    return true;
}

std::string
encodeReloadDone(const ReloadDone &done)
{
    io::CbfBuilder builder;
    builder.addU64("generation", {done.generation});
    return builder.build();
}

bool
decodeReloadDone(const std::string &payload, ReloadDone *out,
                 std::string *error)
{
    io::CbfFile file;
    if (!parsePayload(payload, "reload ack", &file, error))
        return false;
    const std::uint64_t *data = nullptr;
    std::size_t count = 0;
    if (!file.u64("generation", &data, &count, error))
        return false;
    if (count != 1) {
        if (error)
            *error = "column 'generation' must hold exactly 1 value";
        return false;
    }
    out->generation = data[0];
    return true;
}

namespace {

std::uint64_t
mixShape(std::uint64_t h, const graph::TensorShape &shape)
{
    h = util::hashMix(h, shape.rank());
    for (std::int64_t dim : shape.dims())
        h = util::hashMix(h, static_cast<std::uint64_t>(dim));
    return h;
}

} // namespace

std::uint64_t
graphFingerprint(const graph::Graph &g)
{
    std::uint64_t h = util::hashMix(0x6365657264ULL, g.name());
    h = util::hashMix(h, static_cast<std::uint64_t>(g.batchSize()));
    h = util::hashMix(h, g.nodes().size());
    for (const graph::Node &node : g.nodes()) {
        h = util::hashMix(h, static_cast<std::uint64_t>(node.type));
        h = util::hashMix(h, static_cast<std::uint64_t>(node.dtype));
        h = util::hashMix(h, node.isGradient ? 1u : 0u);
        h = util::hashMix(h, node.inputs.size());
        for (graph::NodeId input : node.inputs)
            h = util::hashMix(h, static_cast<std::uint64_t>(input));
        h = util::hashMix(h, node.inputShapes.size());
        for (const graph::TensorShape &shape : node.inputShapes)
            h = mixShape(h, shape);
        h = mixShape(h, node.outputShape);
        const graph::OpAttrs &attrs = node.attrs;
        h = util::hashMix(h, static_cast<std::uint64_t>(attrs.kernelH));
        h = util::hashMix(h, static_cast<std::uint64_t>(attrs.kernelW));
        h = util::hashMix(h, static_cast<std::uint64_t>(attrs.strideH));
        h = util::hashMix(h, static_cast<std::uint64_t>(attrs.strideW));
        h = util::hashMix(h,
                          static_cast<std::uint64_t>(attrs.padding));
        h = mixShape(h, attrs.filterShape);
        h = util::hashMix(h,
                          static_cast<std::uint64_t>(attrs.paramCount));
        h = util::hashMix(h,
                          static_cast<std::uint64_t>(attrs.depthRadius));
        h = util::hashMix(h, static_cast<std::uint64_t>(attrs.axis));
    }
    h = util::hashMix(h, g.paramVars().size());
    for (const graph::ParamVar &param : g.paramVars()) {
        h = util::hashMix(h, param.name);
        h = mixShape(h, param.shape);
    }
    return h;
}

} // namespace serve
} // namespace ceer
