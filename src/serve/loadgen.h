/**
 * @file
 * Closed-loop load generator for ceerd.
 *
 * A run has two phases. The WARM-UP phase (single connection,
 * sequential) sends enough requests to compile every plan in the mix
 * and fault in server-side caches; its latencies are reported
 * separately (warmupRequests/warmupMeanUs/warmupMaxUs) and NEVER
 * enter the percentile sample, so a 2-second run no longer shows a
 * compile-dominated p50. The TIMED phase runs N connection threads
 * replaying the request mix round-robin. With a target QPS each
 * connection paces itself on an open-loop schedule (send times fixed
 * up front, so a slow server accumulates measurable queueing delay
 * instead of silently throttling the offered load); with
 * targetQps <= 0 every connection runs closed-loop as fast as replies
 * return.
 *
 * The timed phase is deliberately lean: frames are pre-encoded once
 * per mix entry and replies are validated (header, checksum, type)
 * without a full columnar decode, so on a host where the generator
 * shares cores with the server the measurement overhead stays small.
 *
 * Latency is reported as p50/p90/p99/p999 over the merged sample set;
 * use percentileResolvable() to know which of those a given sample
 * size can actually support before publishing them.
 */

#ifndef CEER_SERVE_LOADGEN_H
#define CEER_SERVE_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ceer {
namespace serve {

/** Load-generation run configuration. */
struct LoadgenOptions
{
    std::string host = "127.0.0.1"; ///< Server address.
    int port = 0;                   ///< Server port.
    int connections = 2;            ///< Concurrent connections.
    double seconds = 2.0;           ///< Timed-phase duration.
    double targetQps = 0.0;         ///< Total offered QPS; <= 0 = max.
    int timeoutMs = 30000;          ///< Per-reply read timeout.

    /**
     * Warm-up requests before the timed phase: -1 sends one request
     * per mix entry (enough to compile every distinct plan), 0
     * disables the phase, any other value sends that many requests
     * round-robin through the mix.
     */
    int warmupRequests = -1;

    /** Request mix, replayed round-robin. Must not be empty. */
    std::vector<RecommendRequest> requests;
};

/** Aggregated results of a load-generation run. */
struct LoadgenResult
{
    std::int64_t sent = 0;            ///< Timed-phase requests sent.
    std::int64_t succeeded = 0;       ///< Response frames received.
    std::int64_t overloaded = 0;      ///< Typed `overloaded` rejections.
    std::int64_t serverErrors = 0;    ///< Other typed Error replies.
    std::int64_t transportErrors = 0; ///< Connection-level failures.
    double elapsedSeconds = 0.0;      ///< Timed-phase wall clock.
    double achievedQps = 0.0;         ///< succeeded / elapsed.

    double p50Us = 0.0;  ///< Median latency.
    double p90Us = 0.0;  ///< 90th percentile latency.
    double p99Us = 0.0;  ///< 99th percentile latency.
    double p999Us = 0.0; ///< 99.9th percentile latency.
    double meanUs = 0.0; ///< Mean latency.
    double maxUs = 0.0;  ///< Worst latency.

    /** Warm-up phase, reported separately (never in the sample). */
    std::int64_t warmupRequests = 0; ///< Warm-up replies received.
    double warmupMeanUs = 0.0;       ///< Mean warm-up latency.
    double warmupMaxUs = 0.0;        ///< Worst warm-up latency.

    /** Every successful timed-phase latency, sorted ascending. */
    std::vector<double> latenciesUs;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample vector;
 * @p q in [0, 1]. Returns 0 for an empty vector.
 */
double latencyPercentile(const std::vector<double> &sorted_us,
                         double q);

/**
 * True when a sample of @p n observations can resolve quantile @p q:
 * at least one observation must lie in the (1-q) tail, i.e.
 * n * (1 - q) >= 1. With n = 76 the nearest-rank p99 and p999 both
 * degenerate to the sample maximum; reporters use this to publish
 * null instead of a number that merely repeats max.
 */
bool percentileResolvable(std::size_t n, double q);

/**
 * Runs the load. False with @p error when the configuration is
 * invalid or no connection could be established at all; individual
 * mid-run failures are counted in the result instead.
 */
bool runLoadgen(const LoadgenOptions &options, LoadgenResult *result,
                std::string *error);

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_LOADGEN_H
