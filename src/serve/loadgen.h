/**
 * @file
 * Closed-loop load generator for ceerd.
 *
 * N connection threads replay a request mix round-robin. With a
 * target QPS each connection paces itself on an open-loop schedule
 * (send times fixed up front, so a slow server accumulates measurable
 * queueing delay instead of silently throttling the offered load);
 * with targetQps <= 0 every connection runs closed-loop as fast as
 * replies return. Latency is measured per request and reported as
 * p50/p90/p99/p999 over the merged sample set.
 */

#ifndef CEER_SERVE_LOADGEN_H
#define CEER_SERVE_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ceer {
namespace serve {

/** Load-generation run configuration. */
struct LoadgenOptions
{
    std::string host = "127.0.0.1"; ///< Server address.
    int port = 0;                   ///< Server port.
    int connections = 2;            ///< Concurrent connections.
    double seconds = 2.0;           ///< Run duration.
    double targetQps = 0.0;         ///< Total offered QPS; <= 0 = max.
    int timeoutMs = 30000;          ///< Per-reply read timeout.

    /** Request mix, replayed round-robin. Must not be empty. */
    std::vector<RecommendRequest> requests;
};

/** Aggregated results of a load-generation run. */
struct LoadgenResult
{
    std::int64_t sent = 0;            ///< Requests sent.
    std::int64_t succeeded = 0;       ///< Response frames received.
    std::int64_t overloaded = 0;      ///< Typed `overloaded` rejections.
    std::int64_t serverErrors = 0;    ///< Other typed Error replies.
    std::int64_t transportErrors = 0; ///< Connection-level failures.
    double elapsedSeconds = 0.0;      ///< Wall-clock run time.
    double achievedQps = 0.0;         ///< succeeded / elapsed.

    double p50Us = 0.0;  ///< Median latency.
    double p90Us = 0.0;  ///< 90th percentile latency.
    double p99Us = 0.0;  ///< 99th percentile latency.
    double p999Us = 0.0; ///< 99.9th percentile latency.
    double meanUs = 0.0; ///< Mean latency.
    double maxUs = 0.0;  ///< Worst latency.

    /** Every successful-request latency, sorted ascending. */
    std::vector<double> latenciesUs;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample vector;
 * @p q in [0, 1]. Returns 0 for an empty vector.
 */
double latencyPercentile(const std::vector<double> &sorted_us,
                         double q);

/**
 * Runs the load. False with @p error when the configuration is
 * invalid or no connection could be established at all; individual
 * mid-run failures are counted in the result instead.
 */
bool runLoadgen(const LoadgenOptions &options, LoadgenResult *result,
                std::string *error);

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_LOADGEN_H
