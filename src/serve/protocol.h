/**
 * @file
 * ceerd wire protocol: length-prefixed binary frames over TCP.
 *
 * Every message is a 24-byte fixed header followed by a payload whose
 * integrity is guarded by the same xxhash64 used for CBF file frames
 * (io/cbf.h). The payload itself is a CBF document built with the
 * column encodings from src/io, so the server and client reuse the
 * validated columnar codecs instead of inventing a second
 * serialization dialect.
 *
 * Header layout (little-endian):
 *
 *   offset  size  field
 *        0     4  magic "CERF"
 *        4     1  protocol version (kProtocolVersion)
 *        5     1  frame type (FrameType)
 *        6     2  reserved, must be zero
 *        8     4  payload length in bytes
 *       12     4  reserved, must be zero
 *       16     8  xxhash64(payload, seed 0)
 *
 * The receiver validates magic/version/type as soon as the header is
 * complete and rejects oversized payloads *before* buffering them, so
 * a hostile length field never drives an allocation. Checksum
 * verification happens once the payload is fully buffered. Every
 * violation is answered with a typed Error frame and the connection
 * is closed (fail closed; see docs/serving.md).
 */

#ifndef CEER_SERVE_PROTOCOL_H
#define CEER_SERVE_PROTOCOL_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "graph/graph.h"
#include "io/cbf.h"

namespace ceer {
namespace serve {

/** Bytes in the fixed frame header. */
constexpr std::size_t kFrameHeaderBytes = 24;

/** Wire magic; first bytes of every frame. */
constexpr char kFrameMagic[4] = {'C', 'E', 'R', 'F'};

/** Current protocol version. */
constexpr std::uint8_t kProtocolVersion = 1;

/** What a frame carries. */
enum class FrameType : std::uint8_t
{
    Request = 1,    ///< RecommendRequest payload (client -> server).
    Response = 2,   ///< RecommendResponse payload (server -> client).
    Error = 3,      ///< ErrorInfo payload (server -> client).
    Ping = 4,       ///< Empty payload; liveness probe.
    Pong = 5,       ///< Empty payload; Ping reply.
    Reload = 6,     ///< ReloadRequest payload: hot-swap the model.
    ReloadDone = 7, ///< ReloadDone payload: reload acknowledgement.
};

/** True for the FrameType values the protocol defines. */
bool isKnownFrameType(std::uint8_t type);

/** Decoded frame header. */
struct FrameHeader
{
    FrameType type = FrameType::Error; ///< Frame type.
    std::uint32_t payloadBytes = 0;    ///< Payload length.
    std::uint64_t checksum = 0;        ///< xxhash64 of the payload.
};

/**
 * Typed error codes carried by Error frames. Stable wire strings:
 * clients branch on these, so they never change spelling.
 */
namespace errc {
constexpr const char *kOverloaded = "overloaded";
constexpr const char *kBadFrame = "bad_frame";
constexpr const char *kPayloadTooLarge = "payload_too_large";
constexpr const char *kChecksumMismatch = "checksum_mismatch";
constexpr const char *kReadTimeout = "read_timeout";
constexpr const char *kBadRequest = "bad_request";
constexpr const char *kUnknownModel = "unknown_model";
constexpr const char *kInternal = "internal";
} // namespace errc

/** Encodes @p header into exactly kFrameHeaderBytes at @p out. */
void encodeFrameHeader(const FrameHeader &header, char *out);

/**
 * Decodes and validates a frame header from @p data (which must hold
 * at least kFrameHeaderBytes). Rejects bad magic, unknown versions,
 * unknown frame types and nonzero reserved fields. @p out is
 * untouched on failure.
 */
bool decodeFrameHeader(const char *data, FrameHeader *out,
                       std::string *error);

/** Builds a complete frame (header + payload) ready to send. */
std::string buildFrame(FrameType type, const std::string &payload);

/**
 * Builds a complete frame into @p out (cleared first), reusing its
 * capacity. Byte-identical to buildFrame().
 */
void buildFrameInto(FrameType type, const std::string &payload,
                    std::string *out);

/** One recommendation query. */
struct RecommendRequest
{
    std::string model;                 ///< Zoo model name.
    std::int64_t batch = 32;           ///< Per-GPU batch B.
    std::int64_t datasetSamples = 1200000; ///< Dataset size D.
    std::string objective = "cost";    ///< "cost" or "time".
    double hourlyBudgetUsd =
        std::numeric_limits<double>::infinity(); ///< Hourly cap.
    double hourlyToleranceUsd = 0.0;   ///< Tolerated hourly overshoot.
    double totalBudgetUsd =
        std::numeric_limits<double>::infinity(); ///< Total cap.
    bool enforceGpuMemory = true;      ///< Reject OOM instances.
};

/** Serializes a request as a CBF payload. */
std::string encodeRecommendRequest(const RecommendRequest &request);

/**
 * Parses a Request payload. @p out is untouched on failure; @p error
 * explains the first violation.
 */
bool decodeRecommendRequest(const std::string &payload,
                            RecommendRequest *out, std::string *error);

/**
 * Zero-copy variant of decodeRecommendRequest: parses @p size bytes
 * at @p payload in place (no payload copy) through @p scratch, whose
 * column table is reused across calls, and assigns into @p out's
 * existing storage. On a warm (scratch, out) pair decoding allocates
 * nothing — this is ceerd's request path. Unlike the string overload,
 * @p out may be partially written on failure.
 */
bool decodeRecommendRequestView(const char *payload, std::size_t size,
                                io::CbfFile *scratch,
                                RecommendRequest *out,
                                std::string *error);

/**
 * One recommendation reply: the full candidate sweep in columnar
 * form plus the winner index. A pure function of (request, model,
 * catalog) — deliberately no timestamps or server identity, so a
 * reply is byte-comparable against an in-process recommend() run.
 */
struct RecommendResponse
{
    std::int64_t bestIndex = -1;           ///< Winner, -1 if none.
    std::vector<std::string> instances;    ///< Candidate names.
    std::vector<double> hourlyUsd;         ///< Rental price / hour.
    std::vector<double> hours;             ///< Predicted hours.
    std::vector<double> costUsd;           ///< Predicted total cost.
    std::vector<double> iterationUs;       ///< Per-iteration time.
    std::vector<std::uint8_t> feasible;    ///< 1 = meets constraints.
};

/** Columnar projection of a Recommendation. */
RecommendResponse
responseFromRecommendation(const core::Recommendation &recommendation);

/**
 * Out-parameter variant of responseFromRecommendation: overwrites
 * @p out element-wise, reusing vector and string capacity. A warm
 * @p out makes the projection allocation-free.
 */
void
responseFromRecommendationInto(const core::Recommendation &recommendation,
                               RecommendResponse *out);

/** Serializes a response as a CBF payload. */
std::string encodeRecommendResponse(const RecommendResponse &response);

/** Reusable state for encodeRecommendResponseInto. */
struct ResponseEncodeScratch
{
    io::CbfBuilder builder;
    std::string blob;                   ///< Concatenated instance names.
    std::vector<std::uint64_t> offsets; ///< String-column offsets.
};

/**
 * Serializes a response into @p payload through @p scratch.
 * Byte-identical to encodeRecommendResponse(); allocation-free once
 * both are warm.
 */
void encodeRecommendResponseInto(const RecommendResponse &response,
                                 ResponseEncodeScratch *scratch,
                                 std::string *payload);

/** Parses a Response payload; @p out untouched on failure. */
bool decodeRecommendResponse(const std::string &payload,
                             RecommendResponse *out,
                             std::string *error);

/** Typed error reply. */
struct ErrorInfo
{
    std::string code;    ///< One of the errc:: strings.
    std::string message; ///< Human-readable detail.
};

/** Serializes an error as a CBF payload. */
std::string encodeError(const ErrorInfo &info);

/** Parses an Error payload; @p out untouched on failure. */
bool decodeError(const std::string &payload, ErrorInfo *out,
                 std::string *error);

/** Hot-reload command: load a new model from a server-local path. */
struct ReloadRequest
{
    std::string modelPath; ///< Path readable by the server process.
};

/** Serializes a reload command as a CBF payload. */
std::string encodeReloadRequest(const ReloadRequest &request);

/** Parses a Reload payload; @p out untouched on failure. */
bool decodeReloadRequest(const std::string &payload, ReloadRequest *out,
                         std::string *error);

/** Reload acknowledgement. */
struct ReloadDone
{
    std::uint64_t generation = 0; ///< Engine generation now serving.
};

/** Serializes a reload ack as a CBF payload. */
std::string encodeReloadDone(const ReloadDone &done);

/** Parses a ReloadDone payload; @p out untouched on failure. */
bool decodeReloadDone(const std::string &payload, ReloadDone *out,
                      std::string *error);

/**
 * Structural fingerprint of a graph: a 64-bit hash over the graph
 * name, batch size, every node (type, dtype, gradient flag, inputs,
 * shapes, attributes) and every trainable variable. Two graphs with
 * the same fingerprint predict identically, so the server keys its
 * per-session plan caches on it.
 */
std::uint64_t graphFingerprint(const graph::Graph &g);

} // namespace serve
} // namespace ceer

#endif // CEER_SERVE_PROTOCOL_H
