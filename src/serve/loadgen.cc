#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "io/cbf.h"
#include "serve/net.h"

namespace ceer {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/** Replies larger than this are treated as protocol violations. */
constexpr std::size_t kMaxReplyBytes = 64u << 20;

/** Per-connection tallies, merged after the joins. */
struct ThreadResult
{
    std::int64_t sent = 0;
    std::int64_t succeeded = 0;
    std::int64_t overloaded = 0;
    std::int64_t serverErrors = 0;
    std::int64_t transportErrors = 0;
    std::vector<double> latenciesUs;
    bool connected = false;
};

/** What one reply turned out to be. */
enum class ReplyKind
{
    Response,    ///< Valid Response frame.
    Overloaded,  ///< Typed `overloaded` rejection.
    ServerError, ///< Any other typed Error frame.
    Transport,   ///< Socket/framing failure.
};

/**
 * Reads and validates one reply frame (header, checksum, type)
 * without the full columnar decode — the generator only needs to
 * classify the reply, and skipping the decode keeps measurement
 * overhead off hosts where the generator shares cores with the
 * server. @p payload_buf is reused across calls.
 */
ReplyKind
readReply(int fd, std::string *payload_buf)
{
    char header_buf[kFrameHeaderBytes];
    std::string io_error;
    if (!recvAll(fd, header_buf, sizeof header_buf, &io_error))
        return ReplyKind::Transport;
    FrameHeader header;
    if (!decodeFrameHeader(header_buf, &header, &io_error))
        return ReplyKind::Transport;
    if (header.payloadBytes > kMaxReplyBytes)
        return ReplyKind::Transport;
    payload_buf->resize(header.payloadBytes);
    if (header.payloadBytes > 0 &&
        !recvAll(fd, &(*payload_buf)[0], header.payloadBytes,
                 &io_error))
        return ReplyKind::Transport;
    if (io::xxhash64(payload_buf->data(), payload_buf->size()) !=
        header.checksum)
        return ReplyKind::Transport;
    if (header.type == FrameType::Response)
        return ReplyKind::Response;
    if (header.type == FrameType::Error) {
        ErrorInfo info;
        std::string parse_error;
        if (decodeError(*payload_buf, &info, &parse_error) &&
            info.code == errc::kOverloaded)
            return ReplyKind::Overloaded;
        return ReplyKind::ServerError;
    }
    return ReplyKind::Transport;
}

/** Connects and applies the reply timeout; -1 on failure. */
int
openConnection(const LoadgenOptions &options)
{
    std::string error;
    const int fd = connectTcp(options.host, options.port, &error);
    if (fd < 0)
        return -1;
    if (options.timeoutMs > 0 &&
        !setRecvTimeoutMs(fd, options.timeoutMs, &error)) {
        closeFd(fd);
        return -1;
    }
    return fd;
}

void
runConnection(const LoadgenOptions &options,
              const std::vector<std::string> &frames,
              ThreadResult *result)
{
    int fd = openConnection(options);
    if (fd < 0) {
        ++result->transportErrors;
        return;
    }
    result->connected = true;
    std::string payload_buf;

    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.seconds));
    // Open-loop pacing: this connection's share of the target rate,
    // with send times fixed relative to the start so server-side
    // queueing shows up as latency rather than as reduced load.
    const double per_connection_qps =
        options.targetQps > 0.0
            ? options.targetQps / options.connections
            : 0.0;
    std::int64_t iteration = 0;
    while (true) {
        if (per_connection_qps > 0.0) {
            const Clock::time_point next_send =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                iteration / per_connection_qps));
            if (next_send >= deadline)
                break;
            std::this_thread::sleep_until(next_send);
        } else if (Clock::now() >= deadline) {
            break;
        }
        const std::string &frame =
            frames[static_cast<std::size_t>(iteration) %
                   frames.size()];
        ++iteration;

        if (fd < 0) {
            fd = openConnection(options);
            if (fd < 0) {
                ++result->transportErrors;
                // Connection refused while the server drains or
                // restarts: back off briefly instead of spinning.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
        }

        ++result->sent;
        std::string send_error;
        const Clock::time_point sent_at = Clock::now();
        if (!sendAll(fd, frame.data(), frame.size(), &send_error)) {
            ++result->transportErrors;
            closeFd(fd);
            fd = -1;
            continue;
        }
        switch (readReply(fd, &payload_buf)) {
          case ReplyKind::Response:
            result->latenciesUs.push_back(
                std::chrono::duration<double, std::micro>(
                    Clock::now() - sent_at)
                    .count());
            ++result->succeeded;
            break;
          case ReplyKind::Overloaded:
            ++result->overloaded;
            // The server closes the connection after any typed error.
            closeFd(fd);
            fd = -1;
            break;
          case ReplyKind::ServerError:
            ++result->serverErrors;
            closeFd(fd);
            fd = -1;
            break;
          case ReplyKind::Transport:
            ++result->transportErrors;
            closeFd(fd);
            fd = -1;
            break;
        }
    }
    closeFd(fd);
}

/**
 * Warm-up: a single sequential connection sends @p count requests
 * round-robin through the mix so every distinct plan compiles before
 * the clock starts. Latencies land in @p result's warmup fields only.
 */
void
runWarmup(const LoadgenOptions &options,
          const std::vector<std::string> &frames, int count,
          LoadgenResult *result)
{
    if (count <= 0)
        return;
    int fd = openConnection(options);
    if (fd < 0)
        return; // The timed phase will surface connectivity errors.
    std::string payload_buf;
    double sum_us = 0.0;
    for (int i = 0; i < count; ++i) {
        if (fd < 0) {
            fd = openConnection(options);
            if (fd < 0)
                break;
        }
        const std::string &frame =
            frames[static_cast<std::size_t>(i) % frames.size()];
        std::string send_error;
        const Clock::time_point sent_at = Clock::now();
        if (!sendAll(fd, frame.data(), frame.size(), &send_error))
            break;
        if (readReply(fd, &payload_buf) != ReplyKind::Response) {
            // Errors close the connection server-side; retry the rest
            // of the warm-up on a fresh one.
            closeFd(fd);
            fd = -1;
            continue;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - sent_at)
                              .count();
        sum_us += us;
        result->warmupMaxUs = std::max(result->warmupMaxUs, us);
        ++result->warmupRequests;
    }
    closeFd(fd);
    if (result->warmupRequests > 0)
        result->warmupMeanUs =
            sum_us / static_cast<double>(result->warmupRequests);
}

} // namespace

double
latencyPercentile(const std::vector<double> &sorted_us, double q)
{
    if (sorted_us.empty())
        return 0.0;
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    const double rank =
        std::ceil(clamped * static_cast<double>(sorted_us.size()));
    const std::size_t index =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted_us[std::min(index, sorted_us.size() - 1)];
}

bool
percentileResolvable(std::size_t n, double q)
{
    if (n == 0)
        return false;
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    return static_cast<double>(n) * (1.0 - clamped) >= 1.0;
}

bool
runLoadgen(const LoadgenOptions &options, LoadgenResult *result,
           std::string *error)
{
    if (options.requests.empty()) {
        if (error)
            *error = "loadgen needs at least one request in the mix";
        return false;
    }
    if (options.connections < 1) {
        if (error)
            *error = "loadgen needs at least one connection";
        return false;
    }
    if (options.seconds <= 0.0) {
        if (error)
            *error = "loadgen run duration must be positive";
        return false;
    }

    // Pre-encode every mix entry once; the timed loops just replay
    // bytes.
    std::vector<std::string> frames;
    frames.reserve(options.requests.size());
    for (const RecommendRequest &request : options.requests)
        frames.push_back(buildFrame(FrameType::Request,
                                    encodeRecommendRequest(request)));

    LoadgenResult merged;
    const int warmup_count =
        options.warmupRequests < 0
            ? static_cast<int>(options.requests.size())
            : options.warmupRequests;
    runWarmup(options, frames, warmup_count, &merged);

    std::vector<ThreadResult> per_thread(
        static_cast<std::size_t>(options.connections));
    // Dedicated threads, not the shared pool: a connection blocks on
    // socket reads for its whole lifetime, which would starve the
    // pool's compute workers.
    std::vector<std::thread> threads;
    threads.reserve(per_thread.size());
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < per_thread.size(); ++i) {
        threads.emplace_back([&options, &frames, i, &per_thread] {
            runConnection(options, frames, &per_thread[i]);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    bool any_connected = false;
    for (const ThreadResult &thread_result : per_thread) {
        any_connected = any_connected || thread_result.connected;
        merged.sent += thread_result.sent;
        merged.succeeded += thread_result.succeeded;
        merged.overloaded += thread_result.overloaded;
        merged.serverErrors += thread_result.serverErrors;
        merged.transportErrors += thread_result.transportErrors;
        merged.latenciesUs.insert(merged.latenciesUs.end(),
                                  thread_result.latenciesUs.begin(),
                                  thread_result.latenciesUs.end());
    }
    if (!any_connected) {
        if (error)
            *error = "no connection to " + options.host + ":" +
                     std::to_string(options.port) + " succeeded";
        return false;
    }
    std::sort(merged.latenciesUs.begin(), merged.latenciesUs.end());
    merged.elapsedSeconds = elapsed;
    merged.achievedQps =
        elapsed > 0.0 ? merged.succeeded / elapsed : 0.0;
    merged.p50Us = latencyPercentile(merged.latenciesUs, 0.50);
    merged.p90Us = latencyPercentile(merged.latenciesUs, 0.90);
    merged.p99Us = latencyPercentile(merged.latenciesUs, 0.99);
    merged.p999Us = latencyPercentile(merged.latenciesUs, 0.999);
    if (!merged.latenciesUs.empty()) {
        double sum = 0.0;
        for (double us : merged.latenciesUs)
            sum += us;
        merged.meanUs =
            sum / static_cast<double>(merged.latenciesUs.size());
        merged.maxUs = merged.latenciesUs.back();
    }
    *result = std::move(merged);
    return true;
}

} // namespace serve
} // namespace ceer
