#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "serve/client.h"

namespace ceer {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/** Per-connection tallies, merged after the joins. */
struct ThreadResult
{
    std::int64_t sent = 0;
    std::int64_t succeeded = 0;
    std::int64_t overloaded = 0;
    std::int64_t serverErrors = 0;
    std::int64_t transportErrors = 0;
    std::vector<double> latenciesUs;
    bool connected = false;
};

void
runConnection(const LoadgenOptions &options, ThreadResult *result)
{
    ServeClient client;
    std::string error;
    if (!client.tryConnect(options.host, options.port,
                           options.timeoutMs, &error)) {
        ++result->transportErrors;
        return;
    }
    result->connected = true;

    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.seconds));
    // Open-loop pacing: this connection's share of the target rate,
    // with send times fixed relative to the start so server-side
    // queueing shows up as latency rather than as reduced load.
    const double per_connection_qps =
        options.targetQps > 0.0
            ? options.targetQps / options.connections
            : 0.0;
    std::int64_t iteration = 0;
    while (true) {
        if (per_connection_qps > 0.0) {
            const Clock::time_point next_send =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                iteration / per_connection_qps));
            if (next_send >= deadline)
                break;
            std::this_thread::sleep_until(next_send);
        } else if (Clock::now() >= deadline) {
            break;
        }
        const RecommendRequest &request =
            options.requests[static_cast<std::size_t>(iteration) %
                             options.requests.size()];
        ++iteration;

        if (!client.connected() &&
            !client.tryConnect(options.host, options.port,
                               options.timeoutMs, &error)) {
            ++result->transportErrors;
            // Connection refused while the server drains or restarts:
            // back off briefly instead of spinning.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            continue;
        }

        ++result->sent;
        RecommendResponse response;
        const Clock::time_point sent_at = Clock::now();
        const CallOutcome outcome =
            client.recommend(request, &response);
        if (outcome.ok) {
            const double us =
                std::chrono::duration<double, std::micro>(
                    Clock::now() - sent_at)
                    .count();
            result->latenciesUs.push_back(us);
            ++result->succeeded;
        } else if (outcome.errorCode == errc::kOverloaded) {
            ++result->overloaded;
        } else if (!outcome.errorCode.empty()) {
            ++result->serverErrors;
        } else {
            ++result->transportErrors;
        }
    }
}

} // namespace

double
latencyPercentile(const std::vector<double> &sorted_us, double q)
{
    if (sorted_us.empty())
        return 0.0;
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    const double rank =
        std::ceil(clamped * static_cast<double>(sorted_us.size()));
    const std::size_t index =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted_us[std::min(index, sorted_us.size() - 1)];
}

bool
runLoadgen(const LoadgenOptions &options, LoadgenResult *result,
           std::string *error)
{
    if (options.requests.empty()) {
        if (error)
            *error = "loadgen needs at least one request in the mix";
        return false;
    }
    if (options.connections < 1) {
        if (error)
            *error = "loadgen needs at least one connection";
        return false;
    }
    if (options.seconds <= 0.0) {
        if (error)
            *error = "loadgen run duration must be positive";
        return false;
    }

    std::vector<ThreadResult> per_thread(
        static_cast<std::size_t>(options.connections));
    // Dedicated threads, not the shared pool: a connection blocks on
    // socket reads for its whole lifetime, which would starve the
    // pool's compute workers.
    std::vector<std::thread> threads;
    threads.reserve(per_thread.size());
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < per_thread.size(); ++i) {
        threads.emplace_back([&options, i, &per_thread] {
            runConnection(options, &per_thread[i]);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    LoadgenResult merged;
    bool any_connected = false;
    for (const ThreadResult &thread_result : per_thread) {
        any_connected = any_connected || thread_result.connected;
        merged.sent += thread_result.sent;
        merged.succeeded += thread_result.succeeded;
        merged.overloaded += thread_result.overloaded;
        merged.serverErrors += thread_result.serverErrors;
        merged.transportErrors += thread_result.transportErrors;
        merged.latenciesUs.insert(merged.latenciesUs.end(),
                                  thread_result.latenciesUs.begin(),
                                  thread_result.latenciesUs.end());
    }
    if (!any_connected) {
        if (error)
            *error = "no connection to " + options.host + ":" +
                     std::to_string(options.port) + " succeeded";
        return false;
    }
    std::sort(merged.latenciesUs.begin(), merged.latenciesUs.end());
    merged.elapsedSeconds = elapsed;
    merged.achievedQps =
        elapsed > 0.0 ? merged.succeeded / elapsed : 0.0;
    merged.p50Us = latencyPercentile(merged.latenciesUs, 0.50);
    merged.p90Us = latencyPercentile(merged.latenciesUs, 0.90);
    merged.p99Us = latencyPercentile(merged.latenciesUs, 0.99);
    merged.p999Us = latencyPercentile(merged.latenciesUs, 0.999);
    if (!merged.latenciesUs.empty()) {
        double sum = 0.0;
        for (double us : merged.latenciesUs)
            sum += us;
        merged.meanUs =
            sum / static_cast<double>(merged.latenciesUs.size());
        merged.maxUs = merged.latenciesUs.back();
    }
    *result = std::move(merged);
    return true;
}

} // namespace serve
} // namespace ceer
