#include "serve/plan_cache.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ceer {
namespace serve {

namespace {

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

PlanCache::PlanCache(std::size_t capacity, std::size_t shards)
{
    const std::size_t shard_count =
        roundUpPow2(shards == 0 ? 1 : shards);
    shardMask_ = shard_count - 1;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (capacity == 0)
        capacity = 1;
    perShardCapacity_ =
        (capacity + shard_count - 1) / shard_count;
    if (perShardCapacity_ == 0)
        perShardCapacity_ = 1;
}

PlanCache::Shard &
PlanCache::shardFor(std::uint64_t fingerprint)
{
    // The fingerprint is already a mixed 64-bit hash; fold the high
    // half in so shard choice is not captive to the low bits.
    const std::uint64_t folded = fingerprint ^ (fingerprint >> 32);
    return *shards_[static_cast<std::size_t>(folded) & shardMask_];
}

void
PlanCache::evictOver(Shard &shard)
{
    while (shard.slots.size() > perShardCapacity_) {
        auto victim = shard.slots.end();
        for (auto it = shard.slots.begin(); it != shard.slots.end();
             ++it) {
            if (it->second.compiling)
                continue;
            if (victim == shard.slots.end() ||
                it->second.lruTick < victim->second.lruTick)
                victim = it;
        }
        if (victim == shard.slots.end())
            return; // everything in flight; nothing evictable
        if (victim->second.entry)
            bytes_.fetch_sub(victim->second.entry->bytes,
                             std::memory_order_relaxed);
        shard.slots.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        OBS_COUNTER_INC("serve.plan_cache.evictions");
    }
}

void
PlanCache::publishBytesGauge() const
{
    OBS_GAUGE_SET(
        "serve.plan_cache.bytes",
        static_cast<double>(bytes_.load(std::memory_order_relaxed)));
}

std::shared_ptr<const PlanEntry>
PlanCache::tryGet(std::uint64_t fingerprint, std::uint64_t generation)
{
    Shard &shard = shardFor(fingerprint);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.slots.find(fingerprint);
    if (it == shard.slots.end())
        return nullptr;
    Slot &slot = it->second;
    if (slot.compiling || !slot.entry ||
        slot.entry->generation != generation)
        return nullptr;
    slot.lruTick = ++shard.tick;
    hits_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_INC("serve.plan_cache.hits");
    return slot.entry;
}

std::shared_ptr<const PlanEntry>
PlanCache::getOrCompile(std::uint64_t fingerprint,
                        std::uint64_t generation,
                        const CompileFn &compile)
{
    Shard &shard = shardFor(fingerprint);
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
        auto it = shard.slots.find(fingerprint);
        if (it == shard.slots.end())
            break; // absent -> claim below
        Slot &slot = it->second;
        if (slot.compiling) {
            // Another session is compiling this fingerprint right
            // now; share its result instead of duplicating the work.
            shard.cv.wait(lock);
            continue;
        }
        if (slot.entry && slot.entry->generation == generation) {
            slot.lruTick = ++shard.tick;
            hits_.fetch_add(1, std::memory_order_relaxed);
            OBS_COUNTER_INC("serve.plan_cache.hits");
            return slot.entry;
        }
        break; // stale generation -> recompile in place
    }

    // Claim the slot and compile outside the shard lock: plan
    // compilation takes milliseconds and must not stall hits on other
    // fingerprints in this shard.
    Slot &claimed = shard.slots[fingerprint];
    claimed.compiling = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_INC("serve.plan_cache.misses");
    lock.unlock();

    PlanEntry computed;
    std::exception_ptr failure;
    try {
        computed = compile();
    } catch (...) {
        failure = std::current_exception();
    }

    lock.lock();
    auto it = shard.slots.find(fingerprint);
    if (it == shard.slots.end())
        util::panic("PlanCache: compiling slot vanished");
    Slot &slot = it->second;
    slot.compiling = false;
    if (failure) {
        // Roll the claim back so the next request retries the
        // compile; a stale entry (if any) stays usable for pinning
        // but will miss again.
        if (!slot.entry)
            shard.slots.erase(it);
        shard.cv.notify_all();
        std::rethrow_exception(failure);
    }
    auto entry = std::make_shared<const PlanEntry>(std::move(computed));
    if (slot.entry)
        bytes_.fetch_sub(slot.entry->bytes,
                         std::memory_order_relaxed);
    slot.entry = entry;
    slot.lruTick = ++shard.tick;
    bytes_.fetch_add(entry->bytes, std::memory_order_relaxed);
    evictOver(shard);
    publishBytesGauge();
    shard.cv.notify_all();
    return entry;
}

PlanCache::Stats
PlanCache::stats() const
{
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.bytes = bytes_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.entries += shard->slots.size();
    }
    return stats;
}

} // namespace serve
} // namespace ceer
