/**
 * @file
 * Common interface over every per-iteration time predictor the repo
 * can compare (ROADMAP: "baseline predictor suite from the related
 * work").
 *
 * Registered engines, in registry order:
 *
 *   ceer             the full paper model (regression + medians + comm)
 *   ceer_heavy_only  Ceer without the light/CPU median terms (Sec. IV-B)
 *   ceer_no_comm     Ceer without S_GPU (Sec. IV-A)
 *   paleo_flops      PALEO-style FLOPs / (peak * utilization)
 *   profet           PROFET-style (arXiv 2208.05130): per-op-type
 *                    regressions fitted on ONE reference GPU's
 *                    profiles, transferred to the other instances via
 *                    per-(GPU, op type) scaling factors
 *   dnnabacus        DNNAbacus-style (arXiv 2205.12095): per-GPU
 *                    linear regression of run-level compute time on
 *                    the dense graph::netFeatures() structure vector,
 *                    plus a non-negative comm slope in (k-1) * params
 *
 * Contract every implementation honors (tests/property_test.cc):
 *  - predictIterationUs is a pure const function after trainFrom():
 *    deterministic, thread-safe, finite and non-negative on the whole
 *    model zoo, and monotone non-decreasing in k;
 *  - trainFrom() fully resets state, so retraining is safe;
 *  - training on a dataset missing what the engine needs is a fatal
 *    error naming the engine, never UB.
 */

#ifndef CEER_BASELINES_PREDICTOR_H
#define CEER_BASELINES_PREDICTOR_H

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "hw/gpu_spec.h"
#include "profile/profiler.h"

namespace ceer {
namespace baselines {

/** One per-iteration training-time prediction engine. */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Registry name, e.g. "ceer" or "profet". */
    virtual const std::string &name() const = 0;

    /**
     * Fits the engine from op- and run-level profiles. Replaces any
     * previous fit. Fatal (naming the engine) when the dataset lacks
     * the rows this engine trains on.
     */
    virtual void trainFrom(const profile::ProfileDataset &dataset) = 0;

    /**
     * Predicted per-iteration training time in microseconds.
     *
     * Thread-safe and deterministic; requires trainFrom() first
     * (fatal otherwise). @p g must outlive the predictor when the
     * engine memoizes per-graph state (the Ceer variants cache a
     * compiled plan keyed by graph address).
     *
     * @param g        Training graph at the per-GPU batch size.
     * @param gpu      GPU model.
     * @param num_gpus Data-parallel width k (>= 1).
     */
    virtual double predictIterationUs(const graph::Graph &g,
                                      hw::GpuModel gpu,
                                      int num_gpus) const = 0;
};

/** Registry names, in canonical report order. */
const std::vector<std::string> &allPredictorNames();

/** Constructs one engine by registry name; fatal on an unknown name. */
std::unique_ptr<Predictor> makePredictor(const std::string &name);

/** Constructs every registered engine, in registry order. */
std::vector<std::unique_ptr<Predictor>> makeAllPredictors();

/**
 * Constructs the engines named in @p names (registry order is NOT
 * imposed — the report shows predictors in the order requested).
 * An empty list means all engines. Fatal on an unknown name.
 */
std::vector<std::unique_ptr<Predictor>>
makePredictors(const std::vector<std::string> &names);

} // namespace baselines
} // namespace ceer

#endif // CEER_BASELINES_PREDICTOR_H
