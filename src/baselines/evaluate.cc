#include "baselines/evaluate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "cloud/instances.h"
#include "core/predictor.h"
#include "core/recommender.h"
#include "io/cbf.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/simulator.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ceer {
namespace baselines {

namespace {

/** %.17g: the shortest text that round-trips the exact bits. */
std::string
f17(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** |pred - obs| / obs in percent; 0 when obs is not positive. */
double
absPctErr(double observed, double predicted)
{
    if (observed <= 0.0)
        return 0.0;
    return std::abs(predicted - observed) / observed * 100.0;
}

/**
 * One min-cost instance pick over the on-grid candidates. Costs use
 * the shared core arithmetic (iterations = ceil(D / (k * B))) on the
 * per-(GPU, k) iteration times in @p timeUs; ties break to the first
 * candidate in catalog order. Returns "" when nothing is feasible.
 */
struct GridCandidate
{
    const cloud::GpuInstance *instance;
    std::size_t cellIndex; ///< (gpu, k) slot in the model's sub-grid.
};

std::string
pickCheapest(const std::vector<GridCandidate> &candidates,
             const std::vector<double> &timeUs,
             const EvalOptions &options)
{
    const cloud::GpuInstance *best = nullptr;
    double bestCost = 0.0;
    for (const GridCandidate &candidate : candidates) {
        const double cost =
            core::makeTrainingPrediction(timeUs[candidate.cellIndex],
                                         candidate.instance->numGpus,
                                         options.datasetSamples,
                                         options.batch)
                .costUsd(candidate.instance->hourlyUsd);
        if (!best || cost < bestCost) {
            best = candidate.instance;
            bestCost = cost;
        }
    }
    return best ? best->name : std::string();
}

const char *const kCsvHeader[] = {
    "kind",      "predictor",   "model",    "gpu",
    "k",         "observed_us", "predicted_us", "ape_pct",
    "mape_pct",  "rmse_us",     "spearman", "recommended",
    "observed_best", "agree",
};
constexpr std::size_t kCsvColumns =
    sizeof(kCsvHeader) / sizeof(kCsvHeader[0]);

/** Parse helper carrying "row N, column C" context into @p error. */
bool
parseF64(const std::string &text, std::size_t row, const char *column,
         double *out, std::string *error)
{
    const util::ParseResult<double> parsed = util::parseDouble(text);
    if (!parsed) {
        *error = util::format("row %zu, column %s: %s", row, column,
                              parsed.error);
        return false;
    }
    *out = parsed.value;
    return true;
}

bool
parseI64(const std::string &text, std::size_t row, const char *column,
         std::int64_t *out, std::string *error)
{
    const util::ParseResult<std::int64_t> parsed =
        util::parseInt64(text);
    if (!parsed) {
        *error = util::format("row %zu, column %s: %s", row, column,
                              parsed.error);
        return false;
    }
    *out = parsed.value;
    return true;
}

} // namespace

void
EvalReport::saveCsv(std::ostream &out) const
{
    util::CsvWriter writer(out);
    std::vector<std::string> row(kCsvHeader, kCsvHeader + kCsvColumns);
    writer.writeRow(row);
    for (const EvalCell &cell : cells) {
        row.assign(kCsvColumns, std::string());
        row[0] = "cell";
        row[1] = cell.predictor;
        row[2] = cell.model;
        row[3] = hw::gpuModelName(cell.gpu);
        row[4] = std::to_string(cell.k);
        row[5] = f17(cell.observedUs);
        row[6] = f17(cell.predictedUs);
        row[7] = f17(cell.apePct);
        writer.writeRow(row);
    }
    for (const EvalModelRow &model : modelRows) {
        row.assign(kCsvColumns, std::string());
        row[0] = "model";
        row[1] = model.predictor;
        row[2] = model.model;
        row[8] = f17(model.mapePct);
        row[9] = f17(model.rmseUs);
        row[10] = f17(model.spearman);
        row[11] = model.recommended;
        row[12] = model.observedBest;
        row[13] = model.agree ? "1" : "0";
        writer.writeRow(row);
    }
    for (const EvalSummaryRow &sum : summary) {
        row.assign(kCsvColumns, std::string());
        row[0] = "summary";
        row[1] = sum.predictor;
        row[8] = f17(sum.mapePct);
        row[9] = f17(sum.rmseUs);
        row[10] = f17(sum.meanSpearman);
        row[13] = f17(sum.agreementRate);
        writer.writeRow(row);
    }
}

bool
EvalReport::tryLoadCsv(std::istream &in, EvalReport *report,
                       std::string *error)
{
    std::vector<std::vector<std::string>> rows;
    if (!util::tryReadCsv(in, &rows, error))
        return false;
    if (rows.empty()) {
        *error = "empty evaluation report";
        return false;
    }
    for (std::size_t c = 0; c < kCsvColumns; ++c) {
        if (rows[0].size() != kCsvColumns ||
            rows[0][c] != kCsvHeader[c]) {
            *error = "not an evaluation report CSV (bad header)";
            return false;
        }
    }
    EvalReport parsed;
    for (std::size_t r = 1; r < rows.size(); ++r) {
        const std::vector<std::string> &row = rows[r];
        if (row.size() != kCsvColumns) {
            *error = util::format("row %zu: expected %zu fields, got "
                                  "%zu",
                                  r, kCsvColumns, row.size());
            return false;
        }
        const std::string &kind = row[0];
        if (kind == "cell") {
            EvalCell cell;
            cell.predictor = row[1];
            cell.model = row[2];
            if (!hw::gpuModelFromName(row[3], cell.gpu)) {
                *error = util::format("row %zu: unknown GPU '%s'", r,
                                      row[3].c_str());
                return false;
            }
            std::int64_t k = 0;
            if (!parseI64(row[4], r, "k", &k, error) ||
                !parseF64(row[5], r, "observed_us", &cell.observedUs,
                          error) ||
                !parseF64(row[6], r, "predicted_us", &cell.predictedUs,
                          error) ||
                !parseF64(row[7], r, "ape_pct", &cell.apePct, error))
                return false;
            cell.k = static_cast<int>(k);
            parsed.cells.push_back(std::move(cell));
        } else if (kind == "model") {
            EvalModelRow model;
            model.predictor = row[1];
            model.model = row[2];
            std::int64_t agree = 0;
            if (!parseF64(row[8], r, "mape_pct", &model.mapePct,
                          error) ||
                !parseF64(row[9], r, "rmse_us", &model.rmseUs, error) ||
                !parseF64(row[10], r, "spearman", &model.spearman,
                          error) ||
                !parseI64(row[13], r, "agree", &agree, error))
                return false;
            model.recommended = row[11];
            model.observedBest = row[12];
            model.agree = agree != 0;
            parsed.modelRows.push_back(std::move(model));
        } else if (kind == "summary") {
            EvalSummaryRow sum;
            sum.predictor = row[1];
            if (!parseF64(row[8], r, "mape_pct", &sum.mapePct, error) ||
                !parseF64(row[9], r, "rmse_us", &sum.rmseUs, error) ||
                !parseF64(row[10], r, "spearman", &sum.meanSpearman,
                          error) ||
                !parseF64(row[13], r, "agree", &sum.agreementRate,
                          error))
                return false;
            parsed.summary.push_back(std::move(sum));
        } else {
            *error = util::format("row %zu: unknown kind '%s'", r,
                                  kind.c_str());
            return false;
        }
    }
    *report = std::move(parsed);
    return true;
}

void
EvalReport::saveCbf(std::ostream &out) const
{
    io::CbfBuilder builder;
    builder.addBytes("schema", "ceer.evalreport.v1");

    std::vector<std::string> predictor, model, gpu, recommended,
        observed_best;
    std::vector<std::int64_t> k;
    std::vector<double> observed_us, predicted_us, ape_pct;
    for (const EvalCell &cell : cells) {
        predictor.push_back(cell.predictor);
        model.push_back(cell.model);
        gpu.push_back(hw::gpuModelName(cell.gpu));
        k.push_back(cell.k);
        observed_us.push_back(cell.observedUs);
        predicted_us.push_back(cell.predictedUs);
        ape_pct.push_back(cell.apePct);
    }
    io::addStringColumn(&builder, "cell.predictor", predictor);
    io::addStringColumn(&builder, "cell.model", model);
    io::addStringColumn(&builder, "cell.gpu", gpu);
    builder.addI64("cell.k", k);
    builder.addF64("cell.observed_us", observed_us);
    builder.addF64("cell.predicted_us", predicted_us);
    builder.addF64("cell.ape_pct", ape_pct);

    predictor.clear();
    model.clear();
    std::vector<double> mape_pct, rmse_us, spearman;
    std::vector<std::uint8_t> agree;
    for (const EvalModelRow &row : modelRows) {
        predictor.push_back(row.predictor);
        model.push_back(row.model);
        mape_pct.push_back(row.mapePct);
        rmse_us.push_back(row.rmseUs);
        spearman.push_back(row.spearman);
        recommended.push_back(row.recommended);
        observed_best.push_back(row.observedBest);
        agree.push_back(row.agree ? 1 : 0);
    }
    io::addStringColumn(&builder, "model.predictor", predictor);
    io::addStringColumn(&builder, "model.model", model);
    builder.addF64("model.mape_pct", mape_pct);
    builder.addF64("model.rmse_us", rmse_us);
    builder.addF64("model.spearman", spearman);
    io::addStringColumn(&builder, "model.recommended", recommended);
    io::addStringColumn(&builder, "model.observed_best", observed_best);
    builder.addU8("model.agree", agree);

    predictor.clear();
    mape_pct.clear();
    rmse_us.clear();
    std::vector<double> mean_spearman, agreement_rate;
    for (const EvalSummaryRow &row : summary) {
        predictor.push_back(row.predictor);
        mape_pct.push_back(row.mapePct);
        rmse_us.push_back(row.rmseUs);
        mean_spearman.push_back(row.meanSpearman);
        agreement_rate.push_back(row.agreementRate);
    }
    io::addStringColumn(&builder, "summary.predictor", predictor);
    builder.addF64("summary.mape_pct", mape_pct);
    builder.addF64("summary.rmse_us", rmse_us);
    builder.addF64("summary.mean_spearman", mean_spearman);
    builder.addF64("summary.agreement_rate", agreement_rate);

    builder.write(out);
}

bool
EvalReport::tryLoadCbf(const io::CbfFile &file, EvalReport *report,
                       std::string *error)
{
    const char *schema = nullptr;
    std::size_t schema_size = 0;
    if (!file.bytes("schema", &schema, &schema_size, error))
        return false;
    const std::string schema_text(schema, schema_size);
    if (schema_text != "ceer.evalreport.v1") {
        *error = "not an evaluation report CBF (schema '" +
                 schema_text + "')";
        return false;
    }

    // Each group's columns must agree on their row count.
    const auto sized = [&](const char *name, io::DType dtype,
                           std::size_t rows, const void **data) {
        const io::ColumnDesc *desc = file.find(name);
        if (!desc) {
            *error = std::string("missing column ") + name;
            return false;
        }
        if (desc->count != rows) {
            *error = util::format("column %s: expected %zu rows, got "
                                  "%zu",
                                  name, rows,
                                  static_cast<std::size_t>(desc->count));
            return false;
        }
        std::size_t count = 0;
        switch (dtype) {
          case io::DType::F64:
            return file.f64(name, reinterpret_cast<const double **>(
                                      data),
                            &count, error);
          case io::DType::I64:
            return file.i64(name,
                            reinterpret_cast<const std::int64_t **>(
                                data),
                            &count, error);
          case io::DType::U8:
            return file.u8(name,
                           reinterpret_cast<const std::uint8_t **>(
                               data),
                           &count, error);
          default:
            *error = std::string("column ") + name +
                     ": unsupported dtype";
            return false;
        }
    };

    EvalReport parsed;

    std::vector<std::string> predictor, model, gpu;
    if (!io::readStringColumn(file, "cell.predictor", &predictor,
                              error) ||
        !io::readStringColumn(file, "cell.model", &model, error) ||
        !io::readStringColumn(file, "cell.gpu", &gpu, error))
        return false;
    const std::size_t n_cells = predictor.size();
    if (model.size() != n_cells || gpu.size() != n_cells) {
        *error = "cell.* columns disagree on row count";
        return false;
    }
    const std::int64_t *k = nullptr;
    const double *observed_us = nullptr, *predicted_us = nullptr,
                 *ape_pct = nullptr;
    if (!sized("cell.k", io::DType::I64, n_cells,
               reinterpret_cast<const void **>(&k)) ||
        !sized("cell.observed_us", io::DType::F64, n_cells,
               reinterpret_cast<const void **>(&observed_us)) ||
        !sized("cell.predicted_us", io::DType::F64, n_cells,
               reinterpret_cast<const void **>(&predicted_us)) ||
        !sized("cell.ape_pct", io::DType::F64, n_cells,
               reinterpret_cast<const void **>(&ape_pct)))
        return false;
    parsed.cells.resize(n_cells);
    for (std::size_t i = 0; i < n_cells; ++i) {
        EvalCell &cell = parsed.cells[i];
        cell.predictor = std::move(predictor[i]);
        cell.model = std::move(model[i]);
        if (!hw::gpuModelFromName(gpu[i], cell.gpu)) {
            *error = util::format("cell.gpu row %zu: unknown GPU '%s'",
                                  i, gpu[i].c_str());
            return false;
        }
        cell.k = static_cast<int>(k[i]);
        cell.observedUs = observed_us[i];
        cell.predictedUs = predicted_us[i];
        cell.apePct = ape_pct[i];
    }

    std::vector<std::string> recommended, observed_best;
    predictor.clear();
    model.clear();
    if (!io::readStringColumn(file, "model.predictor", &predictor,
                              error) ||
        !io::readStringColumn(file, "model.model", &model, error) ||
        !io::readStringColumn(file, "model.recommended", &recommended,
                              error) ||
        !io::readStringColumn(file, "model.observed_best",
                              &observed_best, error))
        return false;
    const std::size_t n_models = predictor.size();
    if (model.size() != n_models || recommended.size() != n_models ||
        observed_best.size() != n_models) {
        *error = "model.* columns disagree on row count";
        return false;
    }
    const double *mape_pct = nullptr, *rmse_us = nullptr,
                 *spearman = nullptr;
    const std::uint8_t *agree = nullptr;
    if (!sized("model.mape_pct", io::DType::F64, n_models,
               reinterpret_cast<const void **>(&mape_pct)) ||
        !sized("model.rmse_us", io::DType::F64, n_models,
               reinterpret_cast<const void **>(&rmse_us)) ||
        !sized("model.spearman", io::DType::F64, n_models,
               reinterpret_cast<const void **>(&spearman)) ||
        !sized("model.agree", io::DType::U8, n_models,
               reinterpret_cast<const void **>(&agree)))
        return false;
    parsed.modelRows.resize(n_models);
    for (std::size_t i = 0; i < n_models; ++i) {
        EvalModelRow &row = parsed.modelRows[i];
        row.predictor = std::move(predictor[i]);
        row.model = std::move(model[i]);
        row.mapePct = mape_pct[i];
        row.rmseUs = rmse_us[i];
        row.spearman = spearman[i];
        row.recommended = std::move(recommended[i]);
        row.observedBest = std::move(observed_best[i]);
        row.agree = agree[i] != 0;
    }

    predictor.clear();
    if (!io::readStringColumn(file, "summary.predictor", &predictor,
                              error))
        return false;
    const std::size_t n_summary = predictor.size();
    const double *s_mape = nullptr, *s_rmse = nullptr,
                 *s_spearman = nullptr, *s_agreement = nullptr;
    if (!sized("summary.mape_pct", io::DType::F64, n_summary,
               reinterpret_cast<const void **>(&s_mape)) ||
        !sized("summary.rmse_us", io::DType::F64, n_summary,
               reinterpret_cast<const void **>(&s_rmse)) ||
        !sized("summary.mean_spearman", io::DType::F64, n_summary,
               reinterpret_cast<const void **>(&s_spearman)) ||
        !sized("summary.agreement_rate", io::DType::F64, n_summary,
               reinterpret_cast<const void **>(&s_agreement)))
        return false;
    parsed.summary.resize(n_summary);
    for (std::size_t i = 0; i < n_summary; ++i) {
        EvalSummaryRow &row = parsed.summary[i];
        row.predictor = std::move(predictor[i]);
        row.mapePct = s_mape[i];
        row.rmseUs = s_rmse[i];
        row.meanSpearman = s_spearman[i];
        row.agreementRate = s_agreement[i];
    }

    *report = std::move(parsed);
    return true;
}

bool
EvalReport::tryLoadFile(const std::string &path, EvalReport *report,
                        std::string *error)
{
    io::FileFormat format;
    if (!io::sniffFile(path, &format, error))
        return false;
    if (format == io::FileFormat::Cbf) {
        io::CbfFile file;
        if (!io::CbfFile::tryLoad(path, &file, error))
            return false;
        return tryLoadCbf(file, report, error);
    }
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open " + path;
        return false;
    }
    return tryLoadCsv(in, report, error);
}

EvalReport
runEvaluation(const profile::ProfileDataset &dataset,
              const std::vector<Predictor *> &predictors,
              const EvalOptions &options)
{
    OBS_SPAN("eval.run", "eval");
    if (dataset.ops().empty() && dataset.iterations().empty())
        util::fatal(
            "evaluate: empty profile dataset (no op or run rows)");
    if (predictors.empty())
        util::fatal("evaluate: no predictors to evaluate");
    if (options.models.empty())
        util::fatal("evaluate: no models to evaluate");
    if (options.gpus.empty() || options.ks.empty())
        util::fatal("evaluate: empty GPU or k grid");
    for (const int k : options.ks) {
        if (k < 1)
            util::fatal(util::format("evaluate: invalid width k=%d",
                                     k));
    }

    // Train every engine up front; a dataset missing what an engine
    // needs fatals here, before any sweep work.
    for (Predictor *predictor : predictors) {
        OBS_TIMER("eval.train_us");
        predictor->trainFrom(dataset);
    }

    // Graphs are built once, serially, before any prediction: the
    // plan-memoizing engines key on graph addresses, so the vector is
    // fully sized first and never reallocates.
    const std::size_t n_models = options.models.size();
    const std::size_t n_gpus = options.gpus.size();
    const std::size_t n_ks = options.ks.size();
    std::vector<graph::Graph> graphs;
    graphs.reserve(n_models);
    for (const std::string &model : options.models)
        graphs.push_back(models::buildModel(model, options.batch));

    // The parallel sweep: one task per (model, GPU, k) grid cell.
    // Each task simulates its own observed run — seeded per cell via
    // profile::runSeed, so the value is independent of sweep order —
    // and evaluates every engine, writing into preallocated slots.
    const std::size_t n_cells = n_models * n_gpus * n_ks;
    std::vector<double> observed(n_cells, 0.0);
    std::vector<std::vector<double>> predicted(
        predictors.size(), std::vector<double>(n_cells, 0.0));
    const auto evaluateCell = [&](std::size_t index) {
        OBS_TIMER("eval.cell_us");
        const std::size_t m = index / (n_gpus * n_ks);
        const std::size_t g = (index / n_ks) % n_gpus;
        const std::size_t ki = index % n_ks;
        const hw::GpuModel gpu = options.gpus[g];
        const int k = options.ks[ki];
        sim::SimConfig config;
        config.gpu = gpu;
        config.numGpus = k;
        config.gpusPerHost = options.gpusPerHost;
        config.seed = profile::runSeed(options.seed, options.models[m],
                                       gpu, k);
        sim::TrainingSimulator simulator(graphs[m], config);
        observed[index] =
            simulator.run(options.evalIterations).iterationUs.mean();
        for (std::size_t p = 0; p < predictors.size(); ++p) {
            predicted[p][index] =
                predictors[p]->predictIterationUs(graphs[m], gpu, k);
        }
        OBS_COUNTER_INC("eval.cells");
    };
    const std::size_t effective =
        options.threads == 1
            ? 1
            : util::ThreadPool::effectiveThreads(options.threads);
    if (effective <= 1 || n_cells <= 1) {
        for (std::size_t i = 0; i < n_cells; ++i)
            evaluateCell(i);
    } else {
        util::ParallelOptions parallel;
        parallel.costHintUs = 2000.0;
        parallel.maxThreads = effective;
        util::ThreadPool::shared().parallelForRange(
            n_cells, parallel, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    evaluateCell(i);
            });
    }

    // The recommendation-agreement candidates: catalog instances whose
    // (GPU, width) lies on the evaluated grid, in catalog order.
    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::awsOnDemand();
    std::vector<core::MemoryFitTable> fits;
    fits.reserve(n_models);
    for (const graph::Graph &g : graphs)
        fits.push_back(core::computeMemoryFits(g));

    // Serial canonical-order reduction: cells and aggregates come out
    // predictor-major, then model, GPU and k in options order —
    // independent of sweep scheduling, so the report is byte-identical
    // at any thread count.
    EvalReport report;
    report.cells.reserve(predictors.size() * n_cells);
    report.modelRows.reserve(predictors.size() * n_models);
    for (std::size_t p = 0; p < predictors.size(); ++p) {
        const std::string &name = predictors[p]->name();
        std::vector<double> all_observed, all_predicted;
        double ape_sum = 0.0;
        double spearman_sum = 0.0;
        std::size_t agree_count = 0;
        for (std::size_t m = 0; m < n_models; ++m) {
            std::vector<double> model_observed, model_predicted;
            std::vector<GridCandidate> candidates;
            double model_ape_sum = 0.0;
            for (std::size_t g = 0; g < n_gpus; ++g) {
                for (std::size_t ki = 0; ki < n_ks; ++ki) {
                    const std::size_t index =
                        (m * n_gpus + g) * n_ks + ki;
                    EvalCell cell;
                    cell.predictor = name;
                    cell.model = options.models[m];
                    cell.gpu = options.gpus[g];
                    cell.k = options.ks[ki];
                    cell.observedUs = observed[index];
                    cell.predictedUs = predicted[p][index];
                    cell.apePct =
                        absPctErr(cell.observedUs, cell.predictedUs);
                    model_ape_sum += cell.apePct;
                    model_observed.push_back(cell.observedUs);
                    model_predicted.push_back(cell.predictedUs);
                    report.cells.push_back(std::move(cell));
                }
            }
            // The model's on-grid candidate list, restricted to
            // instances whose GPU can hold a replica.
            for (const cloud::GpuInstance &instance :
                 catalog.instances()) {
                std::size_t g_index = n_gpus, k_index = n_ks;
                for (std::size_t g = 0; g < n_gpus; ++g) {
                    if (options.gpus[g] == instance.gpu)
                        g_index = g;
                }
                for (std::size_t ki = 0; ki < n_ks; ++ki) {
                    if (options.ks[ki] == instance.numGpus)
                        k_index = ki;
                }
                if (g_index == n_gpus || k_index == n_ks)
                    continue;
                if (!fits[m][static_cast<std::size_t>(instance.gpu)])
                    continue;
                candidates.push_back(
                    {&instance, g_index * n_ks + k_index});
            }

            EvalModelRow row;
            row.predictor = name;
            row.model = options.models[m];
            row.mapePct =
                model_observed.empty()
                    ? 0.0
                    : model_ape_sum /
                          static_cast<double>(model_observed.size());
            row.rmseUs = util::rootMeanSquaredError(model_observed,
                                                    model_predicted);
            row.spearman = util::spearmanRankCorrelation(
                model_observed, model_predicted);
            row.recommended =
                pickCheapest(candidates, model_predicted, options);
            row.observedBest =
                pickCheapest(candidates, model_observed, options);
            row.agree = !row.recommended.empty() &&
                        row.recommended == row.observedBest;
            ape_sum += model_ape_sum;
            spearman_sum += row.spearman;
            if (row.agree)
                ++agree_count;
            all_observed.insert(all_observed.end(),
                                model_observed.begin(),
                                model_observed.end());
            all_predicted.insert(all_predicted.end(),
                                 model_predicted.begin(),
                                 model_predicted.end());
            report.modelRows.push_back(std::move(row));
        }
        EvalSummaryRow sum;
        sum.predictor = name;
        sum.mapePct = all_observed.empty()
                          ? 0.0
                          : ape_sum / static_cast<double>(
                                          all_observed.size());
        sum.rmseUs =
            util::rootMeanSquaredError(all_observed, all_predicted);
        sum.meanSpearman =
            spearman_sum / static_cast<double>(n_models);
        sum.agreementRate = static_cast<double>(agree_count) /
                            static_cast<double>(n_models);
        report.summary.push_back(std::move(sum));
    }
    OBS_COUNTER_ADD("eval.predictions",
                    predictors.size() * n_cells);
    return report;
}

EvalReport
runEvaluation(const profile::ProfileDataset &dataset,
              const std::vector<std::unique_ptr<Predictor>> &predictors,
              const EvalOptions &options)
{
    std::vector<Predictor *> raw;
    raw.reserve(predictors.size());
    for (const std::unique_ptr<Predictor> &predictor : predictors)
        raw.push_back(predictor.get());
    return runEvaluation(dataset, raw, options);
}

} // namespace baselines
} // namespace ceer
