#include "baselines/baselines.h"

#include "core/predictor.h"
#include "hw/op_cost.h"
#include "util/logging.h"

namespace ceer {
namespace baselines {

const cloud::GpuInstance &
cheapestInstance(const std::vector<cloud::GpuInstance> &candidates)
{
    const cloud::GpuInstance *best = nullptr;
    for (const auto &candidate : candidates) {
        if (!best || candidate.hourlyUsd < best->hourlyUsd)
            best = &candidate;
    }
    if (!best)
        util::fatal("cheapestInstance: empty candidate list");
    return *best;
}

const cloud::GpuInstance &
latestGenerationInstance(
    const std::vector<cloud::GpuInstance> &candidates,
    double hourly_budget)
{
    const cloud::GpuInstance *best = nullptr;
    for (const auto &candidate : candidates) {
        if (candidate.gpu != hw::GpuModel::V100 ||
            candidate.hourlyUsd > hourly_budget) {
            continue;
        }
        if (!best || candidate.numGpus > best->numGpus)
            best = &candidate;
    }
    if (!best)
        util::fatal("latestGenerationInstance: no P3 candidate within "
                    "budget");
    return *best;
}

core::PredictOptions
heavyOnlyOptions()
{
    core::PredictOptions options;
    options.includeLightAndCpu = false;
    return options;
}

core::PredictOptions
noCommOptions()
{
    core::PredictOptions options;
    options.includeComm = false;
    return options;
}

FlopsPredictor::FlopsPredictor(double utilization)
    : utilization_(utilization)
{
    if (utilization <= 0.0 || utilization > 1.0)
        util::fatal("FlopsPredictor: utilization must be in (0, 1]");
}

double
FlopsPredictor::predictIterationUs(const graph::Graph &g,
                                   hw::GpuModel gpu) const
{
    const hw::GpuSpec &spec = hw::gpuSpec(gpu);
    double total_flops = 0.0;
    for (const graph::Node &node : g.nodes()) {
        if (node.device() != graph::Device::Gpu)
            continue;
        total_flops += hw::opCost(node).flops;
    }
    return total_flops / (spec.peakTflops * utilization_ * 1e6);
}

double
FlopsPredictor::predictTrainingHours(const graph::Graph &g,
                                     hw::GpuModel gpu, int num_gpus,
                                     std::int64_t dataset_samples,
                                     std::int64_t batch_per_gpu) const
{
    return core::makeTrainingPrediction(predictIterationUs(g, gpu),
                                        num_gpus, dataset_samples,
                                        batch_per_gpu)
        .hours;
}

} // namespace baselines
} // namespace ceer
