/**
 * @file
 * Baselines the paper compares Ceer against.
 *
 * Instance-selection strategies (Sec. V):
 *  - "cheapest": rent the instance with the lowest hourly price;
 *  - "latest generation": rent the newest-GPU (P3) instance, as AWS
 *    lists by default — the largest one that fits the constraint.
 *
 * Predictor ablations/comparators (Secs. IV, VII):
 *  - heavy-only: Ceer without the light/CPU median terms (Giannini
 *    et al.-style layer modeling that ignores small ops);
 *  - no-comm: Ceer without S_GPU (Cai et al. / Justus et al., which
 *    ignore communication);
 *  - PALEO-style: per-iteration time from the FLOP count alone at a
 *    fixed utilization, no input-size or communication modeling.
 */

#ifndef CEER_BASELINES_BASELINES_H
#define CEER_BASELINES_BASELINES_H

#include <limits>

#include "cloud/instances.h"
#include "core/predictor.h"

namespace ceer {
namespace baselines {

/** The lowest-hourly-price candidate; fatals on an empty list. */
const cloud::GpuInstance &
cheapestInstance(const std::vector<cloud::GpuInstance> &candidates);

/**
 * The largest latest-generation (P3/V100) candidate whose hourly price
 * is within @p hourly_budget; falls back to the largest P3 when the
 * budget is infinite. Fatals when no P3 candidate fits.
 */
const cloud::GpuInstance &latestGenerationInstance(
    const std::vector<cloud::GpuInstance> &candidates,
    double hourly_budget = std::numeric_limits<double>::infinity());

/** Ceer ablation: no light/CPU median terms (Sec. IV-B, 15-25% err). */
core::PredictOptions heavyOnlyOptions();

/** Ceer ablation: no communication overhead (Sec. IV-A, 5-30% err). */
core::PredictOptions noCommOptions();

/**
 * PALEO-style FLOP-count predictor: iteration time is the summed FLOPs
 * of GPU ops divided by peak throughput at a fixed utilization. Knows
 * nothing about memory-bound ops, input sizes, light/CPU ops or
 * communication.
 */
class FlopsPredictor
{
  public:
    /** @param utilization Fraction of peak FLOP/s assumed achieved. */
    explicit FlopsPredictor(double utilization = 0.5);

    /** Predicted per-iteration time on @p gpu. */
    double predictIterationUs(const graph::Graph &g,
                              hw::GpuModel gpu) const;

    /** Predicted full-training time in hours. */
    double predictTrainingHours(const graph::Graph &g, hw::GpuModel gpu,
                                int num_gpus,
                                std::int64_t dataset_samples,
                                std::int64_t batch_per_gpu) const;

  private:
    double utilization_;
};

} // namespace baselines
} // namespace ceer

#endif // CEER_BASELINES_BASELINES_H
