#include "baselines/predictor.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>

#include "baselines/baselines.h"
#include "core/predictor.h"
#include "core/regression.h"
#include "core/trainer.h"
#include "graph/net_features.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"
#include "profile/features.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/strings.h"

namespace ceer {
namespace baselines {

namespace {

using graph::Graph;
using graph::OpType;
using hw::GpuModel;

/** Kernels cannot beat launch overhead (same floor as OpTimeModel). */
constexpr double kMinOpUs = 1.0;

/** Fatal helper that prefixes the engine name. */
[[noreturn]] void
engineFatal(const std::string &engine, const std::string &message)
{
    util::fatal(engine + ": " + message);
}

/**
 * The three Ceer-backed engines: the full model and its two paper
 * ablations, differing only in PredictOptions. Compiled plans are
 * memoized per graph address under a mutex so grid sweeps pay one
 * compile per (engine, graph); the plan's own per-GPU memo handles
 * concurrent first-touch (see core/predict_plan.h).
 */
class CeerVariantPredictor final : public Predictor
{
  public:
    CeerVariantPredictor(std::string name, core::PredictOptions options)
        : name_(std::move(name)), options_(options)
    {
    }

    const std::string &name() const override { return name_; }

    void
    trainFrom(const profile::ProfileDataset &dataset) override
    {
        if (dataset.ops().empty())
            engineFatal(name_, "profile dataset has no op rows");
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            plans_.clear();
        }
        ceer_.emplace(core::trainCeer(dataset));
    }

    double
    predictIterationUs(const Graph &g, GpuModel gpu,
                       int num_gpus) const override
    {
        if (!ceer_)
            engineFatal(name_, "predict before trainFrom()");
        std::shared_ptr<const core::PredictPlan> plan;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            auto it = plans_.find(&g);
            if (it == plans_.end()) {
                it = plans_
                         .emplace(&g,
                                  std::make_shared<core::PredictPlan>(
                                      ceer_->compile(g)))
                         .first;
            }
            plan = it->second;
        }
        return ceer_->predictIterationUs(*plan, gpu, num_gpus,
                                         options_);
    }

  private:
    std::string name_;
    core::PredictOptions options_;
    std::optional<core::CeerPredictor> ceer_;
    mutable std::mutex mutex_;
    mutable std::map<const Graph *,
                     std::shared_ptr<const core::PredictPlan>>
        plans_;
};

/** PALEO-style wrapper; training is a no-op (analytic model). */
class PaleoFlopsPredictor final : public Predictor
{
  public:
    PaleoFlopsPredictor() : name_("paleo_flops") {}

    const std::string &name() const override { return name_; }

    void
    trainFrom(const profile::ProfileDataset &dataset) override
    {
        // Analytic: nothing to fit, but honor the harness's contract
        // that an empty dataset is an error, not a silent no-op.
        if (dataset.ops().empty() && dataset.iterations().empty())
            engineFatal(name_, "profile dataset is empty");
        trained_ = true;
    }

    double
    predictIterationUs(const Graph &g, GpuModel gpu,
                       int /*num_gpus*/) const override
    {
        if (!trained_)
            engineFatal(name_, "predict before trainFrom()");
        return flops_.predictIterationUs(g, gpu);
    }

  private:
    std::string name_;
    FlopsPredictor flops_;
    bool trained_ = false;
};

/**
 * PROFET-style transfer predictor (arXiv 2208.05130).
 *
 * PROFET profiles a workload on ONE reference instance and predicts
 * the others by transferring the reference model across hardware.
 * Here: per-op-type input-size regressions (median fallback below
 * profile::kNumOpFeatures-friendly instance counts) are fitted from
 * the reference GPU's op rows only; every other GPU is predicted by
 * scaling the reference estimate with a per-(GPU, op type) factor —
 * the ratio of dataset mean times when the target GPU was profiled,
 * or the ratio of calibrated category throughputs when it was not.
 * Like PROFET, the engine carries no communication model: predictions
 * are constant in k, which the evaluation report surfaces as its
 * characteristic multi-GPU error.
 */
class ProfetPredictor final : public Predictor
{
  public:
    explicit ProfetPredictor(GpuModel reference = GpuModel::V100)
        : name_("profet"), reference_(reference)
    {
    }

    const std::string &name() const override { return name_; }

    void
    trainFrom(const profile::ProfileDataset &dataset) override
    {
        opModels_.clear();
        scales_.clear();
        refFallbackUs_ = kMinOpUs;
        cpuMedianUs_ = kMinOpUs;
        trained_ = false;

        const auto ref_rows = dataset.opsFor(reference_);
        bool has_ref_gpu_rows = false;
        for (const profile::OpProfile *row : ref_rows)
            has_ref_gpu_rows |= !row->onCpu;
        if (!has_ref_gpu_rows)
            engineFatal(name_,
                        "no op profiles for reference GPU " +
                            hw::gpuModelName(reference_) +
                            " in dataset");

        // Per-op-type estimator on the reference GPU.
        std::vector<double> ref_means;
        for (OpType op : dataset.opTypes(reference_)) {
            std::vector<std::vector<double>> features;
            std::vector<double> means;
            for (const profile::OpProfile *row :
                 dataset.opsFor(reference_, op)) {
                if (row->onCpu)
                    continue;
                features.push_back(row->features);
                means.push_back(row->timeUs.mean());
            }
            if (means.empty())
                continue;
            OpEstimator estimator;
            estimator.medianUs = util::median(means);
            if (means.size() >= kMinFitInstances) {
                estimator.model =
                    core::LinearModel::fit(features, means);
                estimator.fitted = true;
            }
            opModels_.emplace(op, std::move(estimator));
            ref_means.insert(ref_means.end(), means.begin(),
                             means.end());
        }
        refFallbackUs_ =
            std::max(util::median(ref_means), kMinOpUs);

        // CPU ops run on the host: no cross-instance scaling.
        std::vector<double> cpu_means;
        for (const profile::OpProfile &row : dataset.ops())
            if (row.onCpu)
                cpu_means.push_back(row.timeUs.mean());
        if (!cpu_means.empty())
            cpuMedianUs_ =
                std::max(util::median(cpu_means), kMinOpUs);

        // Transfer factors: dataset mean-time ratio when the target
        // GPU has rows for the op type, else the calibrated-spec
        // throughput ratio.
        for (GpuModel gpu : hw::allGpuModels()) {
            if (gpu == reference_)
                continue;
            for (const auto &[op, estimator] : opModels_) {
                const double target = dataset.meanTimeUs(gpu, op);
                const double ref =
                    dataset.meanTimeUs(reference_, op);
                if (target > 0.0 && ref > 0.0)
                    scales_.emplace(std::make_pair(gpu, op),
                                    target / ref);
            }
        }
        trained_ = true;
    }

    double
    predictIterationUs(const Graph &g, GpuModel gpu,
                       int /*num_gpus*/) const override
    {
        if (!trained_)
            engineFatal(name_, "predict before trainFrom()");
        double total = 0.0;
        for (const graph::Node &node : g.nodes()) {
            if (node.device() == graph::Device::Cpu) {
                total += cpuMedianUs_;
                continue;
            }
            double estimate = refFallbackUs_;
            const auto model = opModels_.find(node.type);
            if (model != opModels_.end()) {
                estimate =
                    model->second.fitted
                        ? model->second.model.predict(
                              profile::opFeatures(node))
                        : model->second.medianUs;
            }
            estimate = std::max(estimate, kMinOpUs);
            total += estimate * transferScale(gpu, node);
        }
        return total;
    }

  private:
    struct OpEstimator
    {
        core::LinearModel model;
        double medianUs = 0.0;
        bool fitted = false;
    };

    /** Distinct instances needed before fitting a regression. */
    static constexpr std::size_t kMinFitInstances = 4;

    /** Reference-to-target time scale for @p node on @p gpu. */
    double
    transferScale(GpuModel gpu, const graph::Node &node) const
    {
        if (gpu == reference_)
            return 1.0;
        const auto it = scales_.find({gpu, node.type});
        if (it != scales_.end())
            return it->second;
        // Spec fallback: time scales inversely with the calibrated
        // throughput of the op's cost category (compute-bound
        // categories by TFLOP/s, the rest by GB/s).
        const graph::CostCategory category = node.category();
        const auto &ref =
            hw::gpuSpec(reference_).throughput(category);
        const auto &target = hw::gpuSpec(gpu).throughput(category);
        const bool compute_bound =
            category == graph::CostCategory::Conv ||
            category == graph::CostCategory::ConvFilterGrad ||
            category == graph::CostCategory::MatMulCat;
        return compute_bound ? ref.tflops / target.tflops
                             : ref.gbps / target.gbps;
    }

    std::string name_;
    GpuModel reference_;
    std::map<OpType, OpEstimator> opModels_;
    std::map<std::pair<GpuModel, OpType>, double> scales_;
    double refFallbackUs_ = kMinOpUs;
    double cpuMedianUs_ = kMinOpUs;
    bool trained_ = false;
};

/**
 * DNNAbacus-style structure-matrix predictor (arXiv 2205.12095).
 *
 * Ignores per-op timings entirely: per GPU, run-level compute times
 * are regressed on the dense graph::netFeatures() structure vector of
 * each profiled CNN (rebuilt at the training batch size), and the
 * communication part is a separate non-negative linear term in
 * (k-1) * params anchored at the mean k=1 overhead. The split keeps
 * predictions monotone non-decreasing in k by construction — a raw
 * (features, k) regression can learn a negative k weight from noisy
 * small datasets.
 */
class DnnAbacusPredictor final : public Predictor
{
  public:
    explicit DnnAbacusPredictor(std::int64_t batch = 32)
        : name_("dnnabacus"), batch_(batch)
    {
    }

    const std::string &name() const override { return name_; }

    void
    trainFrom(const profile::ProfileDataset &dataset) override
    {
        perGpu_.clear();
        trained_ = false;
        if (dataset.iterations().empty())
            engineFatal(name_,
                        "no run-level iteration profiles in dataset "
                        "(profile with multi-GPU runs enabled)");

        // Structure vectors of every profiled CNN, built once.
        std::map<std::string, std::vector<double>> features;
        for (const profile::IterationProfile &run :
             dataset.iterations()) {
            if (features.count(run.model))
                continue;
            const Graph g = models::buildModel(run.model, batch_);
            features.emplace(run.model, graph::netFeatures(g, flops));
        }

        for (GpuModel gpu : hw::allGpuModels()) {
            std::vector<std::vector<double>> x;
            std::vector<double> y;
            double comm_base = 0.0;
            std::size_t base_rows = 0;
            double slope_num = 0.0, slope_den = 0.0;
            for (const profile::IterationProfile &run :
                 dataset.iterations()) {
                if (run.gpu != gpu)
                    continue;
                x.push_back(features.at(run.model));
                y.push_back(run.meanComputeUs);
                if (run.numGpus == 1) {
                    comm_base += run.meanCommUs;
                    ++base_rows;
                }
            }
            if (y.empty())
                continue;
            PerGpuFit fit;
            fit.compute = core::LinearModel::fit(x, y);
            fit.commBaseUs =
                base_rows ? std::max(comm_base /
                                         static_cast<double>(
                                             base_rows),
                                     0.0)
                          : 0.0;
            // Through-origin slope of the k>1 overhead beyond the
            // k=1 base, clamped non-negative (monotonicity).
            for (const profile::IterationProfile &run :
                 dataset.iterations()) {
                if (run.gpu != gpu || run.numGpus < 2)
                    continue;
                const double scaled_params =
                    static_cast<double>(run.numGpus - 1) *
                    static_cast<double>(run.paramCount);
                slope_num += scaled_params *
                             (run.meanCommUs - fit.commBaseUs);
                slope_den += scaled_params * scaled_params;
            }
            fit.commSlopeUsPerParam =
                slope_den > 0.0
                    ? std::max(slope_num / slope_den, 0.0)
                    : 0.0;
            perGpu_.emplace(gpu, std::move(fit));
        }
        trained_ = true;
    }

    double
    predictIterationUs(const Graph &g, GpuModel gpu,
                       int num_gpus) const override
    {
        if (!trained_)
            engineFatal(name_, "predict before trainFrom()");
        const auto it = perGpu_.find(gpu);
        if (it == perGpu_.end())
            engineFatal(name_,
                        "no iteration profiles for GPU " +
                            hw::gpuModelName(gpu) + " in dataset");
        const std::vector<double> x = graph::netFeatures(g, flops);
        const double compute =
            std::max(it->second.compute.predict(x), kMinOpUs);
        const double comm =
            it->second.commBaseUs +
            it->second.commSlopeUsPerParam *
                static_cast<double>(num_gpus - 1) *
                static_cast<double>(g.totalParameters());
        return compute + comm;
    }

  private:
    struct PerGpuFit
    {
        core::LinearModel compute;
        double commBaseUs = 0.0;
        double commSlopeUsPerParam = 0.0;
    };

    static double
    flops(const graph::Node &node)
    {
        return hw::opCost(node).flops;
    }

    std::string name_;
    std::int64_t batch_;
    std::map<GpuModel, PerGpuFit> perGpu_;
    bool trained_ = false;
};

} // namespace

const std::vector<std::string> &
allPredictorNames()
{
    static const std::vector<std::string> names = {
        "ceer",        "ceer_heavy_only", "ceer_no_comm",
        "paleo_flops", "profet",          "dnnabacus",
    };
    return names;
}

std::unique_ptr<Predictor>
makePredictor(const std::string &name)
{
    if (name == "ceer")
        return std::make_unique<CeerVariantPredictor>(
            name, core::PredictOptions{});
    if (name == "ceer_heavy_only")
        return std::make_unique<CeerVariantPredictor>(
            name, heavyOnlyOptions());
    if (name == "ceer_no_comm")
        return std::make_unique<CeerVariantPredictor>(name,
                                                      noCommOptions());
    if (name == "paleo_flops")
        return std::make_unique<PaleoFlopsPredictor>();
    if (name == "profet")
        return std::make_unique<ProfetPredictor>();
    if (name == "dnnabacus")
        return std::make_unique<DnnAbacusPredictor>();
    util::fatal("unknown predictor '" + name + "' (have: " +
                util::join(allPredictorNames(), ", ") + ")");
}

std::vector<std::unique_ptr<Predictor>>
makeAllPredictors()
{
    return makePredictors({});
}

std::vector<std::unique_ptr<Predictor>>
makePredictors(const std::vector<std::string> &names)
{
    std::vector<std::unique_ptr<Predictor>> out;
    for (const std::string &name :
         names.empty() ? allPredictorNames() : names)
        out.push_back(makePredictor(name));
    return out;
}

} // namespace baselines
} // namespace ceer
