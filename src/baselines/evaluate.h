/**
 * @file
 * Cross-predictor evaluation harness: every registered Predictor swept
 * over a model x GPU x k grid against simulated ground truth, reduced
 * to the paper's Table-5-style accuracy report.
 *
 * Grid cells are independent tasks fanned out on ThreadPool::shared()
 * with slot-indexed writes and a serial canonical-order reduction, so
 * the report is byte-identical at any thread count. Serialization is
 * deterministic (fixed key order, %.17g numerics) with a CSV
 * interchange dialect and a bit-exact CBF binary dialect
 * (schema ceer.evalreport.v1); see docs/evaluation.md.
 */

#ifndef CEER_BASELINES_EVALUATE_H
#define CEER_BASELINES_EVALUATE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "baselines/predictor.h"
#include "hw/gpu_spec.h"
#include "profile/profiler.h"

namespace ceer {

namespace io {
class CbfFile;
}

namespace baselines {

/** Grid and ground-truth knobs of one evaluation run. */
struct EvalOptions
{
    /** CNNs to evaluate (zoo names); must be non-empty. */
    std::vector<std::string> models;

    /** GPU models of the grid (default: all four, paper order). */
    std::vector<hw::GpuModel> gpus = hw::allGpuModels();

    /** Data-parallel widths of the grid. */
    std::vector<int> ks = {1, 2, 4, 8};

    /** Per-GPU batch size the graphs are built at. */
    std::int64_t batch = 32;

    /** Dataset size D for the recommendation-agreement metric. */
    std::int64_t datasetSamples = 1'200'000;

    /** Simulated iterations behind each observed cell value. */
    int evalIterations = 60;

    /** Base RNG seed of the observed runs (salted per cell). */
    std::uint64_t seed = 42;

    /** Host topology of the observed runs. */
    int gpusPerHost = 8;

    /**
     * Sweep parallelism: 1 = serial (default), 0 = one per hardware
     * thread, n > 1 = exactly n. The report is byte-identical at any
     * value.
     */
    int threads = 1;
};

/** One (predictor, model, GPU, k) grid cell. */
struct EvalCell
{
    std::string predictor;                 ///< Engine name.
    std::string model;                     ///< CNN name.
    hw::GpuModel gpu = hw::GpuModel::V100; ///< GPU model.
    int k = 1;                             ///< Data-parallel width.
    double observedUs = 0.0;  ///< Simulated mean iteration time.
    double predictedUs = 0.0; ///< Engine's prediction.
    double apePct = 0.0;      ///< |pred - obs| / obs * 100.
};

/** Per-(predictor, model) aggregate over the GPU x k sub-grid. */
struct EvalModelRow
{
    std::string predictor;    ///< Engine name.
    std::string model;        ///< CNN name.
    double mapePct = 0.0;     ///< Mean APE over the sub-grid (%).
    double rmseUs = 0.0;      ///< RMSE over the sub-grid (us).
    double spearman = 0.0;    ///< Rank corr. of predicted vs observed.
    std::string recommended;  ///< Engine's min-cost instance pick.
    std::string observedBest; ///< Min-cost pick under observed times.
    bool agree = false;       ///< recommended == observedBest.
};

/** Per-predictor aggregate over every cell. */
struct EvalSummaryRow
{
    std::string predictor;      ///< Engine name.
    double mapePct = 0.0;       ///< Pooled MAPE over all cells (%).
    double rmseUs = 0.0;        ///< Pooled RMSE over all cells (us).
    double meanSpearman = 0.0;  ///< Mean per-model rank correlation.
    double agreementRate = 0.0; ///< Fraction of models that agree.
};

/** The full report; rows in canonical (predictor, model, gpu, k) order. */
struct EvalReport
{
    std::vector<EvalCell> cells;
    std::vector<EvalModelRow> modelRows;
    std::vector<EvalSummaryRow> summary;

    /**
     * Writes the CSV dialect: one header, then cell/model/summary
     * rows discriminated by the leading "kind" column, doubles as
     * %.17g (bit-exact round trips).
     */
    void saveCsv(std::ostream &out) const;

    /** Parses a report written by saveCsv(). */
    static bool tryLoadCsv(std::istream &in, EvalReport *report,
                           std::string *error);

    /** Writes the CBF dialect (schema ceer.evalreport.v1). */
    void saveCbf(std::ostream &out) const;

    /** Parses a validated CBF file produced by saveCbf(). */
    static bool tryLoadCbf(const io::CbfFile &file, EvalReport *report,
                           std::string *error);

    /**
     * Loads @p path in either dialect, sniffed by magic bytes.
     * @p report is untouched on failure.
     */
    static bool tryLoadFile(const std::string &path, EvalReport *report,
                            std::string *error);
};

/**
 * Trains every predictor on @p dataset, sweeps the full grid and
 * reduces the report.
 *
 * Observed cell values come from the simulated substrate: a dedicated
 * deterministic run per (model, GPU, k) cell, seeded independently of
 * sweep order and thread count. Fatal on an empty dataset, an empty
 * predictor list, or an empty/invalid grid.
 *
 * The instance-recommendation agreement restricts the candidate
 * catalog (cloud::InstanceCatalog::awsOnDemand) to instances whose
 * (GPU, width) lies on the evaluated grid, so every engine is judged
 * from exactly the cells the report shows.
 *
 * @param dataset    Training profiles (op + run level).
 * @param predictors Engines to evaluate (trained in place).
 * @param options    Grid and ground-truth knobs.
 */
EvalReport runEvaluation(const profile::ProfileDataset &dataset,
                         const std::vector<Predictor *> &predictors,
                         const EvalOptions &options);

/** Convenience overload for owning containers. */
EvalReport
runEvaluation(const profile::ProfileDataset &dataset,
              const std::vector<std::unique_ptr<Predictor>> &predictors,
              const EvalOptions &options);

} // namespace baselines
} // namespace ceer

#endif // CEER_BASELINES_EVALUATE_H
