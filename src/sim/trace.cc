#include "sim/trace.h"

#include <algorithm>
#include <ostream>

#include "obs/trace_sink.h"
#include "util/strings.h"

namespace ceer {
namespace sim {

using graph::Device;
using graph::Node;

void
IterationTrace::add(TraceEvent event)
{
    events_.push_back(std::move(event));
}

double
IterationTrace::laneTotalUs(int lane) const
{
    double total = 0.0;
    for (const auto &event : events_)
        if (event.lane == lane)
            total += event.durationUs;
    return total;
}

namespace {

const char *
laneName(int lane)
{
    switch (lane) {
      case 0: return "GPU stream";
      case 1: return "host (CPU ops)";
      case 2: return "synchronization";
    }
    return "?";
}

} // namespace

void
IterationTrace::writeChromeTrace(std::ostream &out) const
{
    // The event lines come from the shared obs chrome-trace helpers
    // (byte-identical to the historical inline formatting; pinned by
    // TraceTest.ChromeTraceUsesSharedWriter).
    out << "[\n";
    // Thread-name metadata per lane.
    for (int lane = 0; lane <= 2; ++lane)
        obs::chromeThreadNameEvent(out, lane, laneName(lane));
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &event = events_[i];
        obs::chromeCompleteEvent(out, event.name, event.category,
                                 event.startUs, event.durationUs,
                                 event.lane,
                                 i + 1 == events_.size());
    }
    out << "]\n";
}

IterationTrace
traceIteration(const graph::Graph &g, const SimConfig &config)
{
    TrainingSimulator simulator(g, config);
    IterationTrace trace;
    double gpu_cursor = 0.0;
    double cpu_cursor = 0.0;
    const IterationResult result = simulator.runIteration(
        [&](const Node &node, double time_us) {
            TraceEvent event;
            event.name = node.name;
            event.category = graph::opTypeName(node.type);
            event.durationUs = time_us;
            if (node.device() == Device::Gpu) {
                event.lane = 0;
                event.startUs = gpu_cursor;
                gpu_cursor += time_us;
            } else {
                event.lane = 1;
                event.startUs = cpu_cursor;
                cpu_cursor += time_us;
            }
            trace.add(std::move(event));
        });

    TraceEvent sync;
    sync.name = util::format("sync (k=%d)", config.numGpus);
    sync.category = "Communication";
    sync.lane = 2;
    sync.startUs = std::max(gpu_cursor, cpu_cursor);
    sync.durationUs = result.commUs;
    trace.add(std::move(sync));
    trace.setTotalUs(result.totalUs());
    return trace;
}

} // namespace sim
} // namespace ceer
