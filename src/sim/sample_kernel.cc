#include "sim/sample_kernel.h"

#include <algorithm>
#include <array>

// The two hot loops are multiversioned via the shared macro; this TU
// is compiled with -ffp-contract=off (see CMakeLists.txt) so no clone
// fuses into FMA and every clone returns bit-identical doubles —
// sampling stays deterministic across hosts, not just across thread
// counts.
#include "util/target_clones.h"

namespace ceer {
namespace sim {
namespace kernel {

CEER_VECTOR_CLONES void
normalBlock(std::uint64_t key, std::size_t slot0, std::size_t n,
            double *z)
{
    // Three separated passes so each loop autovectorizes on its own:
    // integer hashing, then the branch-free central quantile
    // polynomial over *every* element, then a scalar fix-up for the
    // ~5% of uniforms that fall in the tails. Pass 2 evaluates the
    // central rational even for tail inputs; near the branch point
    // the denominator stays finite and IEEE arithmetic produces an
    // (unused) finite garbage value that pass 3 overwrites.
    std::array<double, kBlock> u;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t bits = util::hashMix(
            key, static_cast<std::uint64_t>(slot0 + i));
        u[i] = util::uniformFromBits(bits);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double q = u[i] - 0.5;
        z[i] = util::inverseNormalCdfCentral(q, q * q);
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (u[i] < util::kInverseNormalCdfLow ||
            u[i] > 1.0 - util::kInverseNormalCdfLow)
            z[i] = util::inverseNormalCdfTail(u[i]);
    }
}

CEER_VECTOR_CLONES double
lognormalAccumulate(const double *base, const double *sigma,
                    const double *z, std::size_t n, double *times)
{
    // Two passes: the multiply-exp pass is straight-line arithmetic
    // the compiler vectorizes freely; the left-to-right sum stays its
    // own scalar loop so the accumulation order is fixed no matter
    // what vector width the first pass compiled to.
    std::array<double, kBlock> buf; // n <= kBlock (gpuLaneUs chunks)
    double *out = times ? times : buf.data();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = base[i] * fastExp(sigma[i] * z[i]);
    // Four striped accumulators break the serial add dependence; the
    // combination order is still fixed, so results stay deterministic.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += out[i];
        s1 += out[i + 1];
        s2 += out[i + 2];
        s3 += out[i + 3];
    }
    for (; i < n; ++i)
        s0 += out[i];
    return (s0 + s1) + (s2 + s3);
}

double
gpuLaneUs(std::uint64_t stream_key, const double *base,
          const double *sigma, std::size_t n, double *scratch,
          double *times)
{
    const std::uint64_t lane_key = util::hashMix(stream_key, kGpuLane);
    double sum = 0.0;
    for (std::size_t start = 0; start < n; start += kBlock) {
        const std::size_t len = std::min(kBlock, n - start);
        normalBlock(lane_key, start, len, scratch);
        sum += lognormalAccumulate(base + start, sigma + start, scratch,
                                   len, times ? times + start : nullptr);
    }
    return sum;
}

double
cpuLaneUs(std::uint64_t stream_key, const double *mean, std::size_t n,
          double *times)
{
    // CPU ops are heavy-tailed (gamma, CV ~= 0.6) and rare — a few
    // slots per graph — so each draw seeds a throwaway Rng from its
    // sample key and walks Marsaglia-Tsang. Still a pure function of
    // (stream key, slot).
    constexpr double kShape = 2.78;
    const std::uint64_t lane_key = util::hashMix(stream_key, kCpuLane);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        util::Rng rng(
            util::hashMix(lane_key, static_cast<std::uint64_t>(i)));
        const double t = mean[i] * rng.gamma(kShape, 1.0 / kShape);
        if (times)
            times[i] = t;
        sum += t;
    }
    return sum;
}

} // namespace kernel
} // namespace sim
} // namespace ceer
