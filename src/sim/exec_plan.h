/**
 * @file
 * Structure-of-arrays execution plan for the training simulator.
 *
 * The simulator's hot loop evaluates every node of the training graph
 * once per replica per iteration. Walking the graph's array-of-structs
 * node list means a branch (GPU vs CPU placement) and a strided load
 * per node. The ExecPlan partitions the graph at construction into two
 * contiguous lanes — GPU ops (base time + lognormal sigma) and CPU ops
 * (gamma mean) — so the sampling kernel can run branch-free over dense
 * arrays, while index maps preserve the graph-order view needed by the
 * observer path (profiling, tracing).
 */

#ifndef CEER_SIM_EXEC_PLAN_H
#define CEER_SIM_EXEC_PLAN_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "hw/device_model.h"

namespace ceer {
namespace sim {

/** Immutable SoA view of one training graph on one device model. */
struct ExecPlan
{
    /// Median GPU-op times in microseconds, in graph order (dense).
    std::vector<double> gpuBaseUs;
    /// Lognormal sigma per GPU op, parallel to gpuBaseUs.
    std::vector<double> gpuSigma;
    /// Mean CPU-op times in microseconds, in graph order (dense).
    std::vector<double> cpuMeanUs;

    /// GPU lane slot -> graph node index.
    std::vector<std::uint32_t> gpuNode;
    /// CPU lane slot -> graph node index.
    std::vector<std::uint32_t> cpuNode;
    /// Graph node index -> slot within its lane.
    std::vector<std::uint32_t> nodeSlot;
    /// Graph node index -> true when the node is in the GPU lane.
    std::vector<std::uint8_t> nodeOnGpu;

    /// Trainable parameter bytes (comm-model feature).
    double paramBytes = 0.0;
    /// Per-replica input batch bytes moved host->device per iteration.
    double inputBytes = 0.0;

    /** Total node count across both lanes. */
    std::size_t nodeCount() const { return nodeOnGpu.size(); }

    /** Noise-free per-iteration compute sum (both lanes). */
    double meanComputeUs() const;

    /**
     * Builds the plan for @p g under the given timing models.
     *
     * @param g         Training graph (not retained).
     * @param gpu_model Timing model for GPU-placed nodes.
     * @param cpu_model Timing model for CPU-placed nodes.
     */
    static ExecPlan build(const graph::Graph &g,
                          const hw::GpuTimingModel &gpu_model,
                          const hw::CpuTimingModel &cpu_model);
};

} // namespace sim
} // namespace ceer

#endif // CEER_SIM_EXEC_PLAN_H
