#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ceer {
namespace sim {

using graph::Device;
using graph::Node;
using graph::OpType;

TrainingSimulator::TrainingSimulator(const graph::Graph &g,
                                     const SimConfig &config)
    : graph_(&g),
      config_(config),
      gpuModel_(config.gpu),
      cpuModel_(hw::hostSpeedFactor(config.gpu)),
      commRng_(config.seed, 0xC0FFEEull)
{
    if (config.numGpus < 1)
        util::panic("TrainingSimulator: numGpus must be >= 1");
    if (config.gpusPerHost < 1)
        util::panic("TrainingSimulator: gpusPerHost must be >= 1");

    timings_.reserve(g.size());
    for (const Node &node : g.nodes()) {
        NodeTiming timing{};
        timing.onGpu = node.device() == Device::Gpu;
        if (timing.onGpu) {
            timing.baseUs = gpuModel_.meanTimeUs(node);
            timing.sigma = gpuModel_.effectiveSigma(node);
        } else {
            timing.cpuMean = cpuModel_.meanTimeUs(node);
        }
        timings_.push_back(timing);

        if (node.type == OpType::IteratorGetNext) {
            inputBytes_ += static_cast<double>(node.outputBytes());
        }
    }
    paramBytes_ = static_cast<double>(g.totalParameters()) * 4.0;

    replicaRngs_.reserve(static_cast<std::size_t>(config.numGpus));
    for (int r = 0; r < config.numGpus; ++r)
        replicaRngs_.emplace_back(config.seed,
                                  static_cast<std::uint64_t>(r) + 1);
}

double
TrainingSimulator::sampleNode(std::size_t index, util::Rng &rng) const
{
    const NodeTiming &timing = timings_[index];
    if (timing.onGpu)
        return timing.baseUs * rng.lognormalFactor(timing.sigma);
    constexpr double kShape = 2.78;
    return timing.cpuMean * rng.gamma(kShape, 1.0 / kShape);
}

IterationResult
TrainingSimulator::runIteration()
{
    return runIteration(OpObserver());
}

IterationResult
TrainingSimulator::runIteration(const OpObserver &observer)
{
    // The `r == 0 && observer` test is hoisted out of the per-node loop
    // so the common unobserved path is a tight sample-and-accumulate
    // loop. Every replica still draws its own sample for every node —
    // including light ops — because the iteration time is the *max*
    // over replicas: reusing one replica's draws would collapse the
    // straggler distribution and is not distributionally neutral.
    IterationResult result;
    const std::size_t node_count = timings_.size();
    double slowest = 0.0;
    for (std::size_t r = 0; r < replicaRngs_.size(); ++r) {
        double replica_total = 0.0;
        util::Rng &rng = replicaRngs_[r];
        if (r == 0 && observer) {
            const auto &nodes = graph_->nodes();
            for (std::size_t i = 0; i < node_count; ++i) {
                const double t = sampleNode(i, rng);
                replica_total += t;
                observer(nodes[i], t);
            }
        } else {
            for (std::size_t i = 0; i < node_count; ++i)
                replica_total += sampleNode(i, rng);
        }
        slowest = std::max(slowest, replica_total);
    }
    result.computeUs = slowest;
    result.commUs = hw::sampleCommOverheadUs(
        config_.gpu, config_.numGpus, paramBytes_, inputBytes_,
        commRng_, config_.gpusPerHost);
    return result;
}

RunStats
TrainingSimulator::run(int iterations, const OpObserver &observer)
{
    if (iterations < 1)
        util::panic("TrainingSimulator::run: iterations must be >= 1");
    RunStats stats;
    for (int i = 0; i < iterations; ++i) {
        const IterationResult result = runIteration(observer);
        stats.iterationUs.add(result.totalUs());
        stats.computeUs.add(result.computeUs);
        stats.commUs.add(result.commUs);
    }
    return stats;
}

double
TrainingSimulator::meanIterationUs() const
{
    double compute = 0.0;
    for (const NodeTiming &timing : timings_)
        compute += timing.onGpu ? timing.baseUs : timing.cpuMean;
    return compute + hw::commOverheadUs(config_.gpu, config_.numGpus,
                                        paramBytes_, inputBytes_,
                                        config_.gpusPerHost);
}

TrainingRunEstimate
simulateTraining(const graph::Graph &g, const SimConfig &config,
                 std::int64_t dataset_samples, std::int64_t batch_per_gpu,
                 int sample_iterations)
{
    if (dataset_samples <= 0 || batch_per_gpu <= 0)
        util::panic("simulateTraining: dataset and batch must be > 0");
    TrainingSimulator simulator(g, config);
    const RunStats stats = simulator.run(sample_iterations);

    TrainingRunEstimate estimate;
    const std::int64_t samples_per_iteration =
        batch_per_gpu * config.numGpus;
    estimate.iterations = (dataset_samples + samples_per_iteration - 1) /
                          samples_per_iteration;
    estimate.meanIterationUs = stats.iterationUs.mean();
    estimate.totalHours = estimate.meanIterationUs *
                          static_cast<double>(estimate.iterations) /
                          3.6e9;
    return estimate;
}

} // namespace sim
} // namespace ceer
