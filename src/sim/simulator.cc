#include "sim/simulator.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "sim/sample_kernel.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ceer {
namespace sim {

TrainingSimulator::TrainingSimulator(const graph::Graph &g,
                                     const SimConfig &config)
    : graph_(&g), config_(config)
{
    if (config.numGpus < 1)
        util::panic("TrainingSimulator: numGpus must be >= 1");
    if (config.gpusPerHost < 1)
        util::panic("TrainingSimulator: gpusPerHost must be >= 1");

    const hw::GpuTimingModel gpu_model(config.gpu);
    const hw::CpuTimingModel cpu_model(hw::hostSpeedFactor(config.gpu));
    plan_ = ExecPlan::build(g, gpu_model, cpu_model);
}

IterationResult
TrainingSimulator::simulateIteration(std::int64_t iteration,
                                     const OpObserver *observer,
                                     Scratch &scratch) const
{
    const std::size_t gpu_n = plan_.gpuBaseUs.size();
    const std::size_t cpu_n = plan_.cpuMeanUs.size();
    scratch.z.resize(std::min(kernel::kBlock, std::max<std::size_t>(gpu_n, 1)));

    const bool observing = observer && *observer;
    double slowest = 0.0;
    for (int r = 0; r < config_.numGpus; ++r) {
        const std::uint64_t stream_key =
            kernel::replicaStreamKey(config_.seed, iteration, r);
        if (r == 0 && observing) {
            // Observer path: materialize per-slot times, then emit and
            // accumulate in graph order so the observed sum equals
            // computeUs exactly (single replica).
            scratch.gpuTimes.resize(gpu_n);
            scratch.cpuTimes.resize(cpu_n);
            kernel::gpuLaneUs(stream_key, plan_.gpuBaseUs.data(),
                              plan_.gpuSigma.data(), gpu_n,
                              scratch.z.data(), scratch.gpuTimes.data());
            kernel::cpuLaneUs(stream_key, plan_.cpuMeanUs.data(), cpu_n,
                              scratch.cpuTimes.data());
            double total = 0.0;
            const auto &nodes = graph_->nodes();
            for (std::size_t i = 0; i < plan_.nodeCount(); ++i) {
                const double t = plan_.nodeOnGpu[i]
                                     ? scratch.gpuTimes[plan_.nodeSlot[i]]
                                     : scratch.cpuTimes[plan_.nodeSlot[i]];
                total += t;
                (*observer)(nodes[i], t);
            }
            slowest = std::max(slowest, total);
        } else {
            // Hot path: fused block accumulation over the SoA lanes.
            const double total =
                kernel::gpuLaneUs(stream_key, plan_.gpuBaseUs.data(),
                                  plan_.gpuSigma.data(), gpu_n,
                                  scratch.z.data(), nullptr) +
                kernel::cpuLaneUs(stream_key, plan_.cpuMeanUs.data(),
                                  cpu_n, nullptr);
            slowest = std::max(slowest, total);
        }
    }

    IterationResult result;
    result.computeUs = slowest;
    result.commUs = hw::sampleCommOverheadUs(
        config_.gpu, config_.numGpus, plan_.paramBytes, plan_.inputBytes,
        config_.seed, iteration, config_.gpusPerHost);
    return result;
}

IterationResult
TrainingSimulator::runIteration()
{
    return runIteration(OpObserver());
}

IterationResult
TrainingSimulator::runIteration(const OpObserver &observer)
{
    Scratch scratch;
    return simulateIteration(nextIteration_++, &observer, scratch);
}

IterationResult
TrainingSimulator::iterationAt(std::int64_t iteration) const
{
    Scratch scratch;
    return simulateIteration(iteration, nullptr, scratch);
}

RunStats
TrainingSimulator::run(int iterations, const OpObserver &observer)
{
    return run(iterations, 1, observer);
}

RunStats
TrainingSimulator::run(int iterations, int threads,
                       const OpObserver &observer)
{
    if (iterations < 1)
        util::panic("TrainingSimulator::run: iterations must be >= 1");
    const std::int64_t first = nextIteration_;
    nextIteration_ += iterations;

    // Wall-clock throughput gauge: the clock is read only while
    // observability is on, so the disabled path stays untouched (and
    // recording never feeds back into the simulated times).
    OBS_COUNTER_ADD("sim.iterations", iterations);
    std::chrono::steady_clock::time_point wall_start;
    if (obs::enabled())
        wall_start = std::chrono::steady_clock::now();
    const auto publish_rate = [&] {
        if (!obs::enabled())
            return;
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        if (seconds > 0.0)
            OBS_GAUGE_SET("sim.iters_per_sec", iterations / seconds);
    };

    RunStats stats;
    if (observer) {
        // Observers consume an ordered stream of replica-0 op times
        // (profiling, tracing), so the run stays serial and in
        // iteration order regardless of the requested thread count.
        Scratch scratch;
        for (int i = 0; i < iterations; ++i) {
            const IterationResult result =
                simulateIteration(first + i, &observer, scratch);
            stats.iterationUs.add(result.totalUs());
            stats.computeUs.add(result.computeUs);
            stats.commUs.add(result.commUs);
        }
        publish_rate();
        return stats;
    }

    // Unobserved runs aggregate in fixed chunks of iterations: chunk c
    // always covers the same iteration range and chunks always merge
    // in index order, so the result is bit-identical at every thread
    // count (counter-based sampling makes the per-iteration results
    // themselves order-independent).
    constexpr std::int64_t kChunk = 32;
    const std::size_t chunks = static_cast<std::size_t>(
        (iterations + kChunk - 1) / kChunk);
    std::vector<RunStats> parts(chunks);
    auto run_chunk = [&](std::size_t c) {
        OBS_TIMER("sim.chunk_us");
        Scratch scratch;
        const std::int64_t lo = first + static_cast<std::int64_t>(c) * kChunk;
        const std::int64_t hi =
            std::min<std::int64_t>(first + iterations, lo + kChunk);
        RunStats part;
        for (std::int64_t it = lo; it < hi; ++it) {
            const IterationResult result =
                simulateIteration(it, nullptr, scratch);
            part.iterationUs.add(result.totalUs());
            part.computeUs.add(result.computeUs);
            part.commUs.add(result.commUs);
        }
        parts[c] = part;
    };

    const std::size_t effective =
        util::ThreadPool::effectiveThreads(threads);
    if (effective <= 1 || chunks <= 1) {
        for (std::size_t c = 0; c < chunks; ++c)
            run_chunk(c);
    } else {
        // Per-chunk cost is model-dependent (graph size times 32
        // iterations), so let the scheduler measure the first chunk
        // and coarsen: small graphs get several statistical chunks
        // per claim, big graphs stay at one.
        util::ParallelOptions parallel;
        parallel.maxThreads = effective;
        util::ThreadPool::shared().parallelForRange(
            chunks, parallel, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t c = lo; c < hi; ++c)
                    run_chunk(c);
            });
    }

    for (const RunStats &part : parts) {
        stats.iterationUs.merge(part.iterationUs);
        stats.computeUs.merge(part.computeUs);
        stats.commUs.merge(part.commUs);
    }
    publish_rate();
    return stats;
}

double
TrainingSimulator::meanIterationUs() const
{
    return plan_.meanComputeUs() +
           hw::commOverheadUs(config_.gpu, config_.numGpus,
                              plan_.paramBytes, plan_.inputBytes,
                              config_.gpusPerHost);
}

TrainingRunEstimate
simulateTraining(const graph::Graph &g, const SimConfig &config,
                 std::int64_t dataset_samples, std::int64_t batch_per_gpu,
                 int sample_iterations)
{
    if (dataset_samples <= 0 || batch_per_gpu <= 0)
        util::panic("simulateTraining: dataset and batch must be > 0");
    TrainingSimulator simulator(g, config);
    const RunStats stats = simulator.run(sample_iterations);

    TrainingRunEstimate estimate;
    const std::int64_t samples_per_iteration =
        batch_per_gpu * config.numGpus;
    estimate.iterations = (dataset_samples + samples_per_iteration - 1) /
                          samples_per_iteration;
    estimate.meanIterationUs = stats.iterationUs.mean();
    estimate.totalHours = estimate.meanIterationUs *
                          static_cast<double>(estimate.iterations) /
                          3.6e9;
    return estimate;
}

} // namespace sim
} // namespace ceer
