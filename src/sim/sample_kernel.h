/**
 * @file
 * Batched, stateless sampling kernel for the training simulator.
 *
 * Every sample is a pure function of a 64-bit key derived as
 *
 *   replicaStreamKey(seed, iteration, replica)  -> stream key
 *   hashMix(stream key, lane tag ^ slot)        -> per-sample key
 *
 * so the draw for (iteration, replica, node) never depends on
 * execution order: iterations can run on any thread in any order and
 * produce bit-identical values, and the kernel can generate normals in
 * blocks and fold them through a fused multiply-exp accumulation loop
 * over the ExecPlan's contiguous arrays.
 */

#ifndef CEER_SIM_SAMPLE_KERNEL_H
#define CEER_SIM_SAMPLE_KERNEL_H

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "util/random.h"

namespace ceer {
namespace sim {
namespace kernel {

/// Lane tags keeping GPU and CPU draws of one replica stream disjoint
/// even when slot indices coincide. (The communication lane is keyed
/// inside hw::sampleCommOverheadUs with its own tag.)
constexpr std::uint64_t kGpuLane = 0x47505500ull; // "GPU"
constexpr std::uint64_t kCpuLane = 0x43505500ull; // "CPU"

/** Normals are generated and accumulated in blocks of this size. */
constexpr std::size_t kBlock = 512;

/**
 * Stream key for one (seed, iteration, replica) triple.
 *
 * Pure hash — no dependence on how many iterations ran before.
 */
inline std::uint64_t
replicaStreamKey(std::uint64_t seed, std::int64_t iteration, int replica)
{
    std::uint64_t h =
        util::hashMix(seed, static_cast<std::uint64_t>(iteration));
    return util::hashMix(h, static_cast<std::uint64_t>(replica));
}

/**
 * Fast exp(x) for the fused lognormal accumulation loop.
 *
 * Standard 2^k * P(r) decomposition with a degree-11 Taylor kernel on
 * |r| <= ln(2)/2; relative error < 1e-13 for |x| <= 30 (the simulator
 * only evaluates |x| = |sigma * z| <= ~4). Branch-free straight-line
 * arithmetic so the accumulation loop stays autovectorizable.
 */
inline double
fastExp(double x)
{
    constexpr double kLog2e = 1.4426950408889634074;
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    // 1.5 * 2^52. Adding and subtracting it rounds to the nearest
    // integer in pure FP (no floor call, which baseline x86-64 cannot
    // inline branch-free), and parks that integer in the low mantissa
    // bits of the sum for the exponent-scaling step below.
    constexpr double kRound = 6755399441055744.0;
    // The simulator never leaves |x| <= ~4; clamp so extreme inputs
    // saturate instead of corrupting the exponent bit arithmetic.
    x = x < -700.0 ? -700.0 : (x > 700.0 ? 700.0 : x);
    const double t = x * kLog2e + kRound;
    const double kd = t - kRound;
    const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
    // Taylor series to degree 11 via Horner; max |r| = 0.3466 keeps
    // the truncation error below 7e-15 relative.
    double p = 1.0 / 39916800.0; // 1/11!
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // Scale by 2^k through the exponent bits. k sits (biased by
    // 2^51, which shifts out) in the low mantissa bits of t, so the
    // scale needs no double->int64 conversion — just integer add and
    // shift, both SIMD-friendly.
    std::uint64_t ki;
    std::memcpy(&ki, &t, sizeof ki);
    const std::uint64_t bits = (ki + 1023) << 52;
    double scale;
    std::memcpy(&scale, &bits, sizeof scale);
    return p * scale;
}

/**
 * Fills z[0..n) with standard normals keyed by (key, slot0 + i).
 *
 * Each deviate is inverseNormalCdf(uniform(hashMix(key, slot))) — a
 * pure function of its key, so any sub-range can be regenerated
 * independently.
 */
void normalBlock(std::uint64_t key, std::size_t slot0, std::size_t n,
                 double *z);

/**
 * Sum of base[i] * exp(sigma[i] * z[i]) over one block.
 *
 * When @p times is non-null the per-element products are also stored
 * (observer path).
 */
double lognormalAccumulate(const double *base, const double *sigma,
                           const double *z, std::size_t n, double *times);

/**
 * One replica's GPU-lane compute time: sum over all GPU slots of
 * base[i] * exp(sigma[i] * N(key, slot i)).
 *
 * Runs in kBlock-sized chunks through a scratch buffer (>= kBlock
 * doubles). When @p times is non-null, per-slot times are written
 * (length n).
 */
double gpuLaneUs(std::uint64_t stream_key, const double *base,
                 const double *sigma, std::size_t n, double *scratch,
                 double *times);

/**
 * One replica's CPU-lane compute time: sum over CPU slots of
 * mean[i] * Gamma(shape, 1/shape) with the gamma draw seeded from
 * (stream key, slot). When @p times is non-null, per-slot times are
 * written.
 */
double cpuLaneUs(std::uint64_t stream_key, const double *mean,
                 std::size_t n, double *times);

} // namespace kernel
} // namespace sim
} // namespace ceer

#endif // CEER_SIM_SAMPLE_KERNEL_H
