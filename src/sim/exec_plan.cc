#include "sim/exec_plan.h"

namespace ceer {
namespace sim {

using graph::Device;
using graph::Node;
using graph::OpType;

double
ExecPlan::meanComputeUs() const
{
    double total = 0.0;
    for (double t : gpuBaseUs)
        total += t;
    for (double t : cpuMeanUs)
        total += t;
    return total;
}

ExecPlan
ExecPlan::build(const graph::Graph &g, const hw::GpuTimingModel &gpu_model,
                const hw::CpuTimingModel &cpu_model)
{
    ExecPlan plan;
    const std::size_t n = g.size();
    plan.nodeSlot.reserve(n);
    plan.nodeOnGpu.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        const Node &node = g.nodes()[i];
        const bool on_gpu = node.device() == Device::Gpu;
        plan.nodeOnGpu.push_back(on_gpu ? 1 : 0);
        if (on_gpu) {
            plan.nodeSlot.push_back(
                static_cast<std::uint32_t>(plan.gpuBaseUs.size()));
            plan.gpuNode.push_back(static_cast<std::uint32_t>(i));
            plan.gpuBaseUs.push_back(gpu_model.meanTimeUs(node));
            plan.gpuSigma.push_back(gpu_model.effectiveSigma(node));
        } else {
            plan.nodeSlot.push_back(
                static_cast<std::uint32_t>(plan.cpuMeanUs.size()));
            plan.cpuNode.push_back(static_cast<std::uint32_t>(i));
            plan.cpuMeanUs.push_back(cpu_model.meanTimeUs(node));
        }

        if (node.type == OpType::IteratorGetNext)
            plan.inputBytes += static_cast<double>(node.outputBytes());
    }
    plan.paramBytes = static_cast<double>(g.totalParameters()) * 4.0;
    return plan;
}

} // namespace sim
} // namespace ceer
