/**
 * @file
 * Training-run simulator: executes a CNN training graph on simulated
 * GPU instances, iteration by iteration.
 *
 * This substitutes for the paper's measurement substrate (TensorFlow on
 * AWS GPU instances). One iteration executes every node of the graph on
 * its device's timing model, then adds the data-parallel communication
 * overhead. With k GPUs the whole model is replicated, each replica
 * keeps the same per-GPU batch (the paper's setup), and the iteration
 * time is the slowest replica plus synchronization.
 *
 * Sampling is counter-based: every (iteration, replica, node) draw is
 * a pure function of the config seed (src/sim/sample_kernel.h), so
 * iteration i produces the same result whether it runs first, last, or
 * on another thread. run() exploits this to execute iterations in
 * parallel with bit-identical aggregate statistics at any thread
 * count.
 */

#ifndef CEER_SIM_SIMULATOR_H
#define CEER_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "hw/device_model.h"
#include "hw/interconnect.h"
#include "sim/exec_plan.h"
#include "util/stats.h"

namespace ceer {
namespace sim {

/** Configuration of one simulated training deployment. */
struct SimConfig
{
    hw::GpuModel gpu = hw::GpuModel::V100; ///< GPU silicon.
    int numGpus = 1;                       ///< Data-parallel replicas.
    /**
     * GPUs per host. The paper's instances are single-host (up to 8
     * GPUs); smaller values spread the replicas across hosts and put
     * the NIC on the synchronization path (Sec. VI limitation 2).
     */
    int gpusPerHost = 8;
    std::uint64_t seed = 42;               ///< Noise seed.
};

/**
 * Callback invoked for every op execution on replica 0.
 *
 * @param node   The executed node.
 * @param timeUs Sampled compute time in microseconds.
 */
using OpObserver =
    std::function<void(const graph::Node &node, double timeUs)>;

/** Timing of one training iteration. */
struct IterationResult
{
    double computeUs = 0.0; ///< Slowest replica's summed op time.
    double commUs = 0.0;    ///< Communication/synchronization overhead.

    /** Total iteration latency. */
    double totalUs() const { return computeUs + commUs; }
};

/** Aggregated timings over a simulated run. */
struct RunStats
{
    util::RunningStats iterationUs; ///< Per-iteration totals.
    util::RunningStats computeUs;   ///< Per-iteration compute parts.
    util::RunningStats commUs;      ///< Per-iteration comm parts.
};

/**
 * Simulates training of one graph on one instance configuration.
 *
 * Per-node base times and noise levels are precomputed at construction
 * into a structure-of-arrays ExecPlan, so iterations are cheap enough
 * to run the paper's 1000-iteration profiling studies by default.
 */
class TrainingSimulator
{
  public:
    /**
     * @param g      Training graph (forward+backward), which must
     *               outlive the simulator.
     * @param config Deployment to simulate.
     */
    TrainingSimulator(const graph::Graph &g, const SimConfig &config);

    /** Runs the next iteration without observation. */
    IterationResult runIteration();

    /** Runs the next iteration, reporting replica-0 op times to @p observer. */
    IterationResult runIteration(const OpObserver &observer);

    /**
     * Computes iteration @p iteration as a pure function — the
     * simulator's iteration cursor does not move. Calling this for the
     * same index always returns the same result, in any order, on any
     * thread (each call uses its own scratch space).
     */
    IterationResult iterationAt(std::int64_t iteration) const;

    /**
     * Runs @p iterations iterations serially and aggregates their
     * timings. Equivalent to run(iterations, 1, observer).
     *
     * @param iterations Number of iterations (>= 1).
     * @param observer   Optional per-op observer (replica 0).
     */
    RunStats run(int iterations, const OpObserver &observer = nullptr);

    /**
     * Runs @p iterations iterations, fanning fixed-size chunks of
     * iterations out over @p threads threads.
     *
     * Aggregation is chunked deterministically: per-chunk RunningStats
     * merge in chunk order, so the returned RunStats is bit-identical
     * for every thread count (1 included). @p threads <= 0 uses one
     * thread per hardware thread. When @p observer is set the run is
     * forced serial and in iteration order — the observer contract
     * (profiling, tracing) is an ordered stream of replica-0 op times.
     */
    RunStats run(int iterations, int threads,
                 const OpObserver &observer = nullptr);

    /** Trainable parameter bytes of the graph (comm-model feature). */
    double paramBytes() const { return plan_.paramBytes; }

    /** Per-replica input batch bytes moved host->device per iteration. */
    double inputBytes() const { return plan_.inputBytes; }

    /** Noise-free per-iteration mean (compute sum + mean comm). */
    double meanIterationUs() const;

    /** The simulated configuration. */
    const SimConfig &config() const { return config_; }

    /** The structure-of-arrays execution plan (tests, benches). */
    const ExecPlan &plan() const { return plan_; }

  private:
    /** Reusable per-thread buffers for one iteration's samples. */
    struct Scratch
    {
        std::vector<double> z;        ///< Normal block (kernel::kBlock).
        std::vector<double> gpuTimes; ///< Observer path, GPU lane.
        std::vector<double> cpuTimes; ///< Observer path, CPU lane.
    };

    IterationResult simulateIteration(std::int64_t iteration,
                                      const OpObserver *observer,
                                      Scratch &scratch) const;

    const graph::Graph *graph_;
    SimConfig config_;
    ExecPlan plan_;
    std::int64_t nextIteration_ = 0;
};

/** Result of simulating a full training pass over a dataset. */
struct TrainingRunEstimate
{
    std::int64_t iterations = 0;  ///< D / (k * B).
    double meanIterationUs = 0.0; ///< Measured mean per-iteration time.
    double totalHours = 0.0;      ///< iterations * mean, in hours.
};

/**
 * Simulates one epoch over a dataset and scales to total time.
 *
 * @param g                Training graph built at the per-GPU batch.
 * @param config           Deployment to simulate.
 * @param dataset_samples  Total samples D.
 * @param batch_per_gpu    Per-GPU batch size B.
 * @param sample_iterations Iterations to actually simulate for the
 *                          mean (the full count is D/(kB)).
 */
TrainingRunEstimate simulateTraining(const graph::Graph &g,
                                     const SimConfig &config,
                                     std::int64_t dataset_samples,
                                     std::int64_t batch_per_gpu,
                                     int sample_iterations = 60);

} // namespace sim
} // namespace ceer

#endif // CEER_SIM_SIMULATOR_H
