/**
 * @file
 * Training-run simulator: executes a CNN training graph on simulated
 * GPU instances, iteration by iteration.
 *
 * This substitutes for the paper's measurement substrate (TensorFlow on
 * AWS GPU instances). One iteration executes every node of the graph on
 * its device's timing model, then adds the data-parallel communication
 * overhead. With k GPUs the whole model is replicated, each replica
 * keeps the same per-GPU batch (the paper's setup), and the iteration
 * time is the slowest replica plus synchronization.
 */

#ifndef CEER_SIM_SIMULATOR_H
#define CEER_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "hw/device_model.h"
#include "hw/interconnect.h"
#include "util/random.h"
#include "util/stats.h"

namespace ceer {
namespace sim {

/** Configuration of one simulated training deployment. */
struct SimConfig
{
    hw::GpuModel gpu = hw::GpuModel::V100; ///< GPU silicon.
    int numGpus = 1;                       ///< Data-parallel replicas.
    /**
     * GPUs per host. The paper's instances are single-host (up to 8
     * GPUs); smaller values spread the replicas across hosts and put
     * the NIC on the synchronization path (Sec. VI limitation 2).
     */
    int gpusPerHost = 8;
    std::uint64_t seed = 42;               ///< Noise seed.
};

/**
 * Callback invoked for every op execution on replica 0.
 *
 * @param node   The executed node.
 * @param timeUs Sampled compute time in microseconds.
 */
using OpObserver =
    std::function<void(const graph::Node &node, double timeUs)>;

/** Timing of one training iteration. */
struct IterationResult
{
    double computeUs = 0.0; ///< Slowest replica's summed op time.
    double commUs = 0.0;    ///< Communication/synchronization overhead.

    /** Total iteration latency. */
    double totalUs() const { return computeUs + commUs; }
};

/** Aggregated timings over a simulated run. */
struct RunStats
{
    util::RunningStats iterationUs; ///< Per-iteration totals.
    util::RunningStats computeUs;   ///< Per-iteration compute parts.
    util::RunningStats commUs;      ///< Per-iteration comm parts.
};

/**
 * Simulates training of one graph on one instance configuration.
 *
 * Per-node base times and noise levels are precomputed at construction,
 * so iterations are cheap enough to run the paper's 1000-iteration
 * profiling studies.
 */
class TrainingSimulator
{
  public:
    /**
     * @param g      Training graph (forward+backward), which must
     *               outlive the simulator.
     * @param config Deployment to simulate.
     */
    TrainingSimulator(const graph::Graph &g, const SimConfig &config);

    /** Runs one iteration without observation. */
    IterationResult runIteration();

    /** Runs one iteration, reporting replica-0 op times to @p observer. */
    IterationResult runIteration(const OpObserver &observer);

    /**
     * Runs @p iterations iterations and aggregates their timings.
     *
     * @param iterations Number of iterations (>= 1).
     * @param observer   Optional per-op observer (replica 0).
     */
    RunStats run(int iterations, const OpObserver &observer = nullptr);

    /** Trainable parameter bytes of the graph (comm-model feature). */
    double paramBytes() const { return paramBytes_; }

    /** Per-replica input batch bytes moved host->device per iteration. */
    double inputBytes() const { return inputBytes_; }

    /** Noise-free per-iteration mean (compute sum + mean comm). */
    double meanIterationUs() const;

    /** The simulated configuration. */
    const SimConfig &config() const { return config_; }

  private:
    struct NodeTiming
    {
        double baseUs;  ///< Median time.
        double sigma;   ///< Lognormal sigma (GPU ops).
        bool onGpu;     ///< Placement.
        double cpuMean; ///< Mean for CPU gamma sampling.
    };

    double sampleNode(std::size_t index, util::Rng &rng) const;

    const graph::Graph *graph_;
    SimConfig config_;
    hw::GpuTimingModel gpuModel_;
    hw::CpuTimingModel cpuModel_;
    std::vector<NodeTiming> timings_;
    std::vector<util::Rng> replicaRngs_;
    util::Rng commRng_;
    double paramBytes_ = 0.0;
    double inputBytes_ = 0.0;
};

/** Result of simulating a full training pass over a dataset. */
struct TrainingRunEstimate
{
    std::int64_t iterations = 0;  ///< D / (k * B).
    double meanIterationUs = 0.0; ///< Measured mean per-iteration time.
    double totalHours = 0.0;      ///< iterations * mean, in hours.
};

/**
 * Simulates one epoch over a dataset and scales to total time.
 *
 * @param g                Training graph built at the per-GPU batch.
 * @param config           Deployment to simulate.
 * @param dataset_samples  Total samples D.
 * @param batch_per_gpu    Per-GPU batch size B.
 * @param sample_iterations Iterations to actually simulate for the
 *                          mean (the full count is D/(kB)).
 */
TrainingRunEstimate simulateTraining(const graph::Graph &g,
                                     const SimConfig &config,
                                     std::int64_t dataset_samples,
                                     std::int64_t batch_per_gpu,
                                     int sample_iterations = 60);

} // namespace sim
} // namespace ceer

#endif // CEER_SIM_SIMULATOR_H
