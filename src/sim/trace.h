/**
 * @file
 * Iteration timelines: records one simulated training iteration as a
 * sequence of timed op events and exports it in the Chrome tracing
 * JSON format (chrome://tracing, Perfetto), the same way TensorFlow's
 * timeline did for the paper's measurements.
 *
 * The simulator's additive model serializes ops per device, so the
 * timeline lays out GPU ops back-to-back on a GPU lane, CPU ops on a
 * host lane, and the communication overhead as a closing sync event.
 */

#ifndef CEER_SIM_TRACE_H
#define CEER_SIM_TRACE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace ceer {
namespace sim {

/** One timed op occurrence in the timeline. */
struct TraceEvent
{
    std::string name;     ///< Node name.
    std::string category; ///< Op type name.
    double startUs = 0.0; ///< Start offset within the iteration.
    double durationUs = 0.0; ///< Sampled compute time.
    int lane = 0;         ///< 0 = GPU stream, 1 = host, 2 = comm.
};

/** A recorded iteration. */
class IterationTrace
{
  public:
    /** All events, in start order per lane. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Total iteration span in microseconds. */
    double totalUs() const { return totalUs_; }

    /** Appends one event (used by traceIteration). */
    void add(TraceEvent event);

    /** Sets the iteration span. */
    void setTotalUs(double total) { totalUs_ = total; }

    /**
     * Writes the trace as a Chrome tracing JSON document
     * (array-of-events form with "X" complete events).
     */
    void writeChromeTrace(std::ostream &out) const;

    /** Sum of event durations on one lane. */
    double laneTotalUs(int lane) const;

  private:
    std::vector<TraceEvent> events_;
    double totalUs_ = 0.0;
};

/**
 * Runs one iteration of @p g under @p config and records the timeline
 * of replica 0 plus the synchronization phase.
 */
IterationTrace traceIteration(const graph::Graph &g,
                              const SimConfig &config);

} // namespace sim
} // namespace ceer

#endif // CEER_SIM_TRACE_H
