/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * latency histograms, built for instrumenting the pipeline's hot loops
 * without perturbing them.
 *
 * Design:
 *  - Recording is gated on a single runtime flag (obs::enabled(), set
 *    from the CEER_OBS environment variable or obs::setEnabled()). The
 *    OBS_* macros check it first, so the disabled path is one relaxed
 *    atomic load and a predictable branch — no allocation, no locking,
 *    no formatting.
 *  - Counters and histograms are sharded: each metric owns a small
 *    fixed array of cache-line-aligned shards and every thread picks a
 *    shard once (round-robin), so the hot-path record is a relaxed
 *    fetch_add on a line rarely shared with another writer. Shards are
 *    summed only at snapshot time.
 *  - Metrics live forever once created: the registry hands out stable
 *    references (the macros cache them in function-local statics) and
 *    resetMetrics() zeroes values in place without deallocating, so a
 *    cached reference can never dangle.
 *  - Instrumentation must not perturb outputs: nothing in this layer
 *    feeds back into the instrumented computation, so the repo-wide
 *    byte-identity contracts hold with observability on or off (pinned
 *    by the Obs*Parity tests).
 *
 * This library sits below util (ThreadPool is itself instrumented), so
 * it depends on nothing else in the repo.
 */

#ifndef CEER_OBS_METRICS_H
#define CEER_OBS_METRICS_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ceer {
namespace obs {

namespace detail {
extern std::atomic<bool> g_enabled;

/** Round-robin shard index for the calling thread (stable per thread). */
std::size_t shardIndex();

/** CAS-loop add for pre-C++20-style atomic doubles (portable). */
inline void
atomicAdd(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed))
        ;
}
} // namespace detail

/** Whether recording is on. Hot-path check: one relaxed load. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turns recording on or off at runtime (also CEER_OBS=1 in the env). */
void setEnabled(bool on);

/** RAII enable/disable for tests; restores the previous state. */
class ScopedEnable
{
  public:
    explicit ScopedEnable(bool on) : previous_(enabled())
    {
        setEnabled(on);
    }
    ~ScopedEnable() { setEnabled(previous_); }
    ScopedEnable(const ScopedEnable &) = delete;
    ScopedEnable &operator=(const ScopedEnable &) = delete;

  private:
    bool previous_;
};

/** Shard count per metric (power of two; threads map round-robin). */
constexpr std::size_t kMetricShards = 16;

/** Monotonic event count. add() is a relaxed fetch_add on a TLS shard. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(std::uint64_t n = 1)
    {
        shards_[detail::shardIndex()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum over shards (approximate while writers are active). */
    std::uint64_t value() const
    {
        std::uint64_t total = 0;
        for (const Shard &shard : shards_)
            total += shard.value.load(std::memory_order_relaxed);
        return total;
    }

    /** Zeroes in place; outstanding references stay valid. */
    void reset()
    {
        for (Shard &shard : shards_)
            shard.value.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, kMetricShards> shards_;
};

/** Last-written point-in-time value (e.g. queue depth, rate). */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Default histogram bucket upper bounds: a 1-2-5 ladder from 1 us to
 * 1e7 us (10 s), suiting every latency this pipeline records.
 */
const std::vector<double> &defaultLatencyBoundsUs();

/**
 * Fixed-bucket histogram. A recorded value lands in the first bucket
 * whose upper bound is >= the value; values above the last bound land
 * in the implicit overflow bucket (index bounds().size()).
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upper_bounds);
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void record(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Merged per-bucket counts (size bounds().size() + 1). */
    std::vector<std::uint64_t> bucketCounts() const;

    /** Merged total count. */
    std::uint64_t count() const;

    /** Merged sum of recorded values. */
    double sum() const;

    /** Zeroes in place; outstanding references stay valid. */
    void reset();

  private:
    struct alignas(64) Shard
    {
        // Sized at construction, never resized afterwards.
        std::vector<std::atomic<std::uint64_t>> buckets;
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
    };
    std::vector<double> bounds_;
    std::vector<Shard> shards_;
};

/** Snapshot of one histogram (value types only, comparable). */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets; ///< bounds.size() + 1 entries.
    std::uint64_t count = 0;
    double sum = 0.0;

    friend bool operator==(const HistogramSnapshot &,
                           const HistogramSnapshot &) = default;
};

/** Point-in-time copy of every registered metric, sorted by name. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Counter value by name (0 if absent). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Gauge value by name (0 if absent). */
    double gaugeValue(const std::string &name) const;

    /** Histogram by name (nullptr if absent). */
    const HistogramSnapshot *findHistogram(const std::string &name) const;

    friend bool operator==(const MetricsSnapshot &,
                           const MetricsSnapshot &) = default;
};

/**
 * Returns the process-wide metric with @p name, creating it on first
 * use. References stay valid for the life of the process. Names follow
 * `<subsystem>.<noun>[_<unit>]` (see docs/observability.md).
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/**
 * Histogram with explicit bucket bounds (must be nonempty and strictly
 * increasing). If the histogram already exists, the existing instance
 * is returned and @p upper_bounds is ignored — first creation wins.
 */
Histogram &histogram(const std::string &name,
                     std::vector<double> upper_bounds);

/** Snapshots every registered metric (safe while recording). */
MetricsSnapshot snapshotMetrics();

/** Zeroes every registered metric in place (references stay valid). */
void resetMetrics();

/**
 * Writes @p snapshot as a JSON document:
 *
 *   {"counters": {...}, "gauges": {...}, "histograms":
 *    {"name": {"bounds": [...], "buckets": [...],
 *              "count": N, "sum": S}, ...}}
 *
 * Doubles are printed with %.17g so a parse round-trips bit-exactly;
 * non-finite values are written as 0.
 */
void writeMetricsJson(std::ostream &out,
                      const MetricsSnapshot &snapshot);

/** Convenience: snapshots the registry and writes it. */
void writeMetricsJson(std::ostream &out);

/**
 * Checked parser for the writeMetricsJson schema (same contract style
 * as util::tryReadCsv: no exceptions, false + *error on malformed
 * input, *out untouched on failure). Accepts arbitrary JSON
 * whitespace; errors report a byte offset.
 */
bool tryParseMetricsJson(const std::string &text, MetricsSnapshot *out,
                         std::string *error);

/**
 * Writes the current snapshot to @p path. Returns false (with *error
 * set when non-null) if the file cannot be written.
 */
bool tryWriteMetricsFile(const std::string &path, std::string *error);

/** Scoped wall-clock timer recording elapsed microseconds on exit. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &histogram)
        : histogram_(&histogram),
          start_(std::chrono::steady_clock::now())
    {
    }
    ~ScopedTimer()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        histogram_->record(
            std::chrono::duration<double, std::micro>(elapsed).count());
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *histogram_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace ceer

// Macro plumbing. Each macro caches the registry lookup in a
// function-local static reference (thread-safe magic static), so after
// the first enabled hit the record path is: relaxed flag load, guard
// check, relaxed shard fetch_add.
#define CEER_OBS_CAT2(a, b) a##b
#define CEER_OBS_CAT(a, b) CEER_OBS_CAT2(a, b)

/** Adds @p n to counter @p name (no-op while disabled). */
#define OBS_COUNTER_ADD(name, n)                                       \
    do {                                                               \
        if (::ceer::obs::enabled()) {                                  \
            static ::ceer::obs::Counter &CEER_OBS_CAT(obs_c_,          \
                                                      __LINE__) =      \
                ::ceer::obs::counter(name);                            \
            CEER_OBS_CAT(obs_c_, __LINE__)                             \
                .add(static_cast<std::uint64_t>(n));                   \
        }                                                              \
    } while (0)

/** Increments counter @p name by one (no-op while disabled). */
#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

/** Sets gauge @p name to @p v (no-op while disabled). */
#define OBS_GAUGE_SET(name, v)                                         \
    do {                                                               \
        if (::ceer::obs::enabled()) {                                  \
            static ::ceer::obs::Gauge &CEER_OBS_CAT(obs_g_,            \
                                                    __LINE__) =        \
                ::ceer::obs::gauge(name);                              \
            CEER_OBS_CAT(obs_g_, __LINE__)                             \
                .set(static_cast<double>(v));                          \
        }                                                              \
    } while (0)

/** Records @p v into histogram @p name (no-op while disabled). */
#define OBS_HISTOGRAM_RECORD(name, v)                                  \
    do {                                                               \
        if (::ceer::obs::enabled()) {                                  \
            static ::ceer::obs::Histogram &CEER_OBS_CAT(obs_h_,        \
                                                        __LINE__) =    \
                ::ceer::obs::histogram(name);                          \
            CEER_OBS_CAT(obs_h_, __LINE__)                             \
                .record(static_cast<double>(v));                       \
        }                                                              \
    } while (0)

/**
 * Times the enclosing scope into histogram @p name (microseconds).
 * While disabled this declares an empty optional and takes no clock
 * readings.
 */
#define OBS_TIMER(name)                                                \
    std::optional<::ceer::obs::ScopedTimer> CEER_OBS_CAT(obs_t_,       \
                                                         __LINE__);    \
    if (::ceer::obs::enabled()) {                                      \
        static ::ceer::obs::Histogram &CEER_OBS_CAT(obs_th_,           \
                                                    __LINE__) =        \
            ::ceer::obs::histogram(name);                              \
        CEER_OBS_CAT(obs_t_, __LINE__)                                 \
            .emplace(CEER_OBS_CAT(obs_th_, __LINE__));                 \
    }                                                                  \
    static_assert(true, "require a trailing semicolon")

#endif // CEER_OBS_METRICS_H
