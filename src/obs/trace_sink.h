/**
 * @file
 * Cross-subsystem trace spans: a process-wide sink collecting timed
 * spans from any layer (profiling runs, trainer fits, recommender
 * sweeps) and exporting them in the Chrome tracing JSON format — the
 * same array-of-"X"-events document sim::IterationTrace emits, via the
 * shared writer helpers below.
 *
 * Recording is gated on obs::enabled(): a ScopedSpan constructed while
 * observability is off arms nothing and its destructor is a branch.
 * Each recording thread gets its own lane (Chrome "tid") so concurrent
 * spans render side by side instead of overlapping.
 */

#ifndef CEER_OBS_TRACE_SINK_H
#define CEER_OBS_TRACE_SINK_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ceer {
namespace obs {

/** One completed span (microsecond offsets from the sink's origin). */
struct TraceSpan
{
    std::string name;
    std::string category;
    double startUs = 0.0;
    double durationUs = 0.0;
    int lane = 0; ///< Chrome "tid": one lane per recording thread.

    friend bool operator==(const TraceSpan &,
                           const TraceSpan &) = default;
};

// Shared Chrome-trace building blocks (also used by sim's
// IterationTrace writer; output is byte-compatible with the
// historical util::format-based implementation).

/** Escapes a string for embedding in a JSON literal. */
std::string chromeJsonEscape(const std::string &text);

/** Emits one `thread_name` metadata event line (trailing comma). */
void chromeThreadNameEvent(std::ostream &out, int tid,
                           const std::string &name);

/**
 * Emits one complete ("X") event line. @p last suppresses the
 * trailing comma on the final event of the document.
 */
void chromeCompleteEvent(std::ostream &out, const std::string &name,
                         const std::string &category, double ts_us,
                         double duration_us, int tid, bool last);

/**
 * Process-wide span collector. All methods are thread-safe; record()
 * appends under a mutex (spans complete at most once per instrumented
 * region, so the sink is never on a per-sample hot path).
 */
class TraceSink
{
  public:
    /** The process-wide sink used by ScopedSpan. */
    static TraceSink &instance();

    TraceSink();

    /** Microseconds since the sink's construction (steady clock). */
    double nowUs() const;

    /** Lane id of the calling thread (assigned on first use). */
    int laneForThisThread();

    /** Appends one completed span. */
    void record(TraceSpan span);

    /** Copies all recorded spans. */
    std::vector<TraceSpan> spans() const;

    /** Number of recorded spans. */
    std::size_t size() const;

    /** Drops all recorded spans (lane ids are kept). */
    void clear();

    /**
     * Writes every recorded span as a Chrome tracing JSON document,
     * with per-lane `thread_name` metadata ("worker <lane>").
     */
    void writeChromeTrace(std::ostream &out) const;

    /**
     * Writes the trace to @p path. Returns false (with *error set
     * when non-null) if the file cannot be written.
     */
    bool tryWriteFile(const std::string &path, std::string *error) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
    std::chrono::steady_clock::time_point origin_;
    std::atomic<int> nextLane_{0};
};

/**
 * RAII span: arms only when obs::enabled() at construction, and
 * records [construction, destruction) into TraceSink::instance().
 * Build the name lazily at the call site (inside an enabled() check)
 * when formatting it is not free.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        std::string category = "obs");
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool armed_ = false;
    std::string name_;
    std::string category_;
    double startUs_ = 0.0;
};

} // namespace obs
} // namespace ceer

/** Traces the enclosing scope as a span named @p name. */
#define OBS_SPAN(name, category)                                       \
    ::ceer::obs::ScopedSpan CEER_OBS_CAT(obs_span_, __LINE__)(         \
        (name), (category))

#endif // CEER_OBS_TRACE_SINK_H
