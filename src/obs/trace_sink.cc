#include "obs/trace_sink.h"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace ceer {
namespace obs {

std::string
chromeJsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default: {
            // Any other control byte must become \u00XX, or the trace
            // document is not valid JSON and Chrome refuses to load it.
            const auto u = static_cast<unsigned char>(c);
            if (u < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", u);
                out += buffer;
            } else {
                out += c;
            }
            break;
          }
        }
    }
    return out;
}

void
chromeThreadNameEvent(std::ostream &out, int tid,
                      const std::string &name)
{
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "  {\"name\": \"thread_name\", \"ph\": \"M\", "
                  "\"pid\": 1, \"tid\": %d, \"args\": {\"name\": "
                  "\"%s\"}},\n",
                  tid, chromeJsonEscape(name).c_str());
    out << buffer;
}

void
chromeCompleteEvent(std::ostream &out, const std::string &name,
                    const std::string &category, double ts_us,
                    double duration_us, int tid, bool last)
{
    char buffer[512];
    std::snprintf(buffer, sizeof buffer,
                  "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": "
                  "\"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                  "\"tid\": %d}%s\n",
                  chromeJsonEscape(name).c_str(),
                  chromeJsonEscape(category).c_str(), ts_us,
                  duration_us, tid, last ? "" : ",");
    out << buffer;
}

TraceSink &
TraceSink::instance()
{
    // Leaked so spans recorded from static destructors stay safe.
    static TraceSink *sink = new TraceSink;
    return *sink;
}

TraceSink::TraceSink() : origin_(std::chrono::steady_clock::now()) {}

double
TraceSink::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
}

int
TraceSink::laneForThisThread()
{
    thread_local const int lane =
        nextLane_.fetch_add(1, std::memory_order_relaxed);
    return lane;
}

void
TraceSink::record(TraceSpan span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
}

std::vector<TraceSpan>
TraceSink::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::size_t
TraceSink::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
}

void
TraceSink::writeChromeTrace(std::ostream &out) const
{
    const std::vector<TraceSpan> spans = this->spans();
    int max_lane = -1;
    for (const TraceSpan &span : spans)
        max_lane = span.lane > max_lane ? span.lane : max_lane;

    out << "[\n";
    for (int lane = 0; lane <= max_lane; ++lane) {
        char name[32];
        std::snprintf(name, sizeof name, "worker %d", lane);
        chromeThreadNameEvent(out, lane, name);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const TraceSpan &span = spans[i];
        chromeCompleteEvent(out, span.name, span.category, span.startUs,
                            span.durationUs, span.lane,
                            i + 1 == spans.size());
    }
    out << "]\n";
}

bool
TraceSink::tryWriteFile(const std::string &path,
                        std::string *error) const
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    writeChromeTrace(out);
    out.close();
    if (!out.good()) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
{
    if (!enabled())
        return;
    armed_ = true;
    name_ = std::move(name);
    category_ = std::move(category);
    startUs_ = TraceSink::instance().nowUs();
}

ScopedSpan::~ScopedSpan()
{
    if (!armed_)
        return;
    TraceSink &sink = TraceSink::instance();
    TraceSpan span;
    span.name = std::move(name_);
    span.category = std::move(category_);
    span.startUs = startUs_;
    span.durationUs = sink.nowUs() - startUs_;
    span.lane = sink.laneForThisThread();
    sink.record(std::move(span));
}

} // namespace obs
} // namespace ceer
