#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace ceer {
namespace obs {

namespace detail {

std::atomic<bool> g_enabled{false};

std::size_t
shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return index;
}

namespace {

/** Applies the CEER_OBS environment variable once, at process start. */
struct EnvInit
{
    EnvInit()
    {
        const char *value = std::getenv("CEER_OBS");
        if (!value || !*value)
            return;
        const bool off = std::strcmp(value, "0") == 0 ||
                         std::strcmp(value, "false") == 0 ||
                         std::strcmp(value, "off") == 0;
        g_enabled.store(!off, std::memory_order_relaxed);
    }
};
const EnvInit env_init;

} // namespace
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

const std::vector<double> &
defaultLatencyBoundsUs()
{
    // 1-2-5 ladder, 1 us .. 1e7 us (10 s).
    static const std::vector<double> bounds = {
        1e0, 2e0, 5e0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3,
        5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7,
    };
    return bounds;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), shards_(kMetricShards)
{
    if (bounds_.empty())
        bounds_ = defaultLatencyBoundsUs();
    for (Shard &shard : shards_)
        shard.buckets =
            std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void
Histogram::record(double v)
{
    if (std::isnan(v))
        return;
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    Shard &shard = shards_[detail::shardIndex()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(shard.sum, v);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
    for (const Shard &shard : shards_)
        for (std::size_t i = 0; i < merged.size(); ++i)
            merged[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
    return merged;
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const
{
    double total = 0.0;
    for (const Shard &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset()
{
    for (Shard &shard : shards_) {
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0.0, std::memory_order_relaxed);
    }
}

namespace {

/**
 * The process-wide registry. Metrics are keyed by name and never
 * removed; the maps hold unique_ptrs so handed-out references survive
 * rehashing. Leaked intentionally so metrics outlive every static
 * destructor that might still record.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry *instance = new Registry;
    return *instance;
}

} // namespace

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name)
{
    return histogram(name, defaultLatencyBoundsUs());
}

Histogram &
histogram(const std::string &name, std::vector<double> upper_bounds)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(upper_bounds));
    return *slot;
}

MetricsSnapshot
snapshotMetrics()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    MetricsSnapshot snapshot;
    snapshot.counters.reserve(reg.counters.size());
    for (const auto &[name, metric] : reg.counters)
        snapshot.counters.emplace_back(name, metric->value());
    snapshot.gauges.reserve(reg.gauges.size());
    for (const auto &[name, metric] : reg.gauges)
        snapshot.gauges.emplace_back(name, metric->value());
    snapshot.histograms.reserve(reg.histograms.size());
    for (const auto &[name, metric] : reg.histograms) {
        HistogramSnapshot hist;
        hist.name = name;
        hist.bounds = metric->bounds();
        hist.buckets = metric->bucketCounts();
        hist.count = metric->count();
        hist.sum = metric->sum();
        snapshot.histograms.push_back(std::move(hist));
    }
    return snapshot;
}

void
resetMetrics()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &[name, metric] : reg.counters)
        metric->reset();
    for (auto &[name, metric] : reg.gauges)
        metric->reset();
    for (auto &[name, metric] : reg.histograms)
        metric->reset();
}

std::uint64_t
MetricsSnapshot::counterValue(const std::string &name) const
{
    for (const auto &[key, value] : counters)
        if (key == name)
            return value;
    return 0;
}

double
MetricsSnapshot::gaugeValue(const std::string &name) const
{
    for (const auto &[key, value] : gauges)
        if (key == name)
            return value;
    return 0.0;
}

const HistogramSnapshot *
MetricsSnapshot::findHistogram(const std::string &name) const
{
    for (const auto &hist : histograms)
        if (hist.name == name)
            return &hist;
    return nullptr;
}

// ---------------------------------------------------------------------
// JSON snapshot writer + checked parser. This library sits below util,
// so formatting is plain snprintf and parsing is std::from_chars.

namespace {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

/** %.17g (bit-exact round trip); non-finite values degrade to 0. */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", v);
    return buffer;
}

/**
 * Minimal recursive-descent parser over the exact schema
 * writeMetricsJson emits (fixed key order, string keys, finite
 * numbers). Errors carry the byte offset of the failure.
 */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool parse(MetricsSnapshot *out)
    {
        skipSpace();
        if (!expect('{'))
            return false;
        if (!key("counters") || !parseCounters(out))
            return false;
        if (!expect(','))
            return false;
        if (!key("gauges") || !parseGauges(out))
            return false;
        if (!expect(','))
            return false;
        if (!key("histograms") || !parseHistograms(out))
            return false;
        if (!expect('}'))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing bytes after document");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool fail(const std::string &what)
    {
        if (error_.empty()) {
            char offset[32];
            std::snprintf(offset, sizeof offset, "%zu", pos_);
            error_ = what + " at byte " + offset;
        }
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool expect(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool peekIs(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char escaped = text_[pos_++];
                switch (escaped) {
                  case '"':  c = '"'; break;
                  case '\\': c = '\\'; break;
                  case 'n':  c = '\n'; break;
                  case 't':  c = '\t'; break;
                  default:
                    return fail("unsupported escape");
                }
            }
            value += c;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        *out = std::move(value);
        return true;
    }

    /** Parses `"name":` for a fixed expected key. */
    bool key(const char *expected)
    {
        std::string name;
        if (!parseString(&name))
            return false;
        if (name != expected)
            return fail(std::string("expected key \"") + expected +
                        "\", got \"" + name + "\"");
        return expect(':');
    }

    bool parseDouble(double *out)
    {
        skipSpace();
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        double value = 0.0;
        const auto result = std::from_chars(begin, end, value);
        if (result.ec != std::errc{} || !std::isfinite(value))
            return fail("malformed number");
        pos_ = static_cast<std::size_t>(result.ptr - text_.data());
        *out = value;
        return true;
    }

    bool parseUint(std::uint64_t *out)
    {
        skipSpace();
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        std::uint64_t value = 0;
        const auto result = std::from_chars(begin, end, value);
        if (result.ec != std::errc{})
            return fail("malformed unsigned integer");
        pos_ = static_cast<std::size_t>(result.ptr - text_.data());
        *out = value;
        return true;
    }

    template <typename Element>
    bool parseArray(std::vector<Element> *out,
                    bool (Parser::*element)(Element *))
    {
        if (!expect('['))
            return false;
        if (peekIs(']')) {
            ++pos_;
            return true;
        }
        for (;;) {
            Element value{};
            if (!(this->*element)(&value))
                return false;
            out->push_back(value);
            if (peekIs(']')) {
                ++pos_;
                return true;
            }
            if (!expect(','))
                return false;
        }
    }

    bool parseCounters(MetricsSnapshot *out)
    {
        if (!expect('{'))
            return false;
        if (peekIs('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string name;
            std::uint64_t value = 0;
            if (!parseString(&name) || !expect(':') ||
                !parseUint(&value))
                return false;
            out->counters.emplace_back(std::move(name), value);
            if (peekIs('}')) {
                ++pos_;
                return true;
            }
            if (!expect(','))
                return false;
        }
    }

    bool parseGauges(MetricsSnapshot *out)
    {
        if (!expect('{'))
            return false;
        if (peekIs('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string name;
            double value = 0.0;
            if (!parseString(&name) || !expect(':') ||
                !parseDouble(&value))
                return false;
            out->gauges.emplace_back(std::move(name), value);
            if (peekIs('}')) {
                ++pos_;
                return true;
            }
            if (!expect(','))
                return false;
        }
    }

    bool parseHistograms(MetricsSnapshot *out)
    {
        if (!expect('{'))
            return false;
        if (peekIs('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            HistogramSnapshot hist;
            if (!parseString(&hist.name) || !expect(':') ||
                !expect('{'))
                return false;
            if (!key("bounds") ||
                !parseArray(&hist.bounds, &Parser::parseDouble))
                return false;
            if (!expect(',') || !key("buckets") ||
                !parseArray(&hist.buckets, &Parser::parseUint))
                return false;
            if (!expect(',') || !key("count") ||
                !parseUint(&hist.count))
                return false;
            if (!expect(',') || !key("sum") ||
                !parseDouble(&hist.sum))
                return false;
            if (!expect('}'))
                return false;
            if (hist.buckets.size() != hist.bounds.size() + 1)
                return fail("bucket count does not match bounds");
            out->histograms.push_back(std::move(hist));
            if (peekIs('}')) {
                ++pos_;
                return true;
            }
            if (!expect(','))
                return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

void
writeMetricsJson(std::ostream &out, const MetricsSnapshot &snapshot)
{
    out << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        out << (i ? ",\n    " : "\n    ") << '"'
            << jsonEscape(snapshot.counters[i].first)
            << "\": " << snapshot.counters[i].second;
    }
    out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n";

    out << "  \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        out << (i ? ",\n    " : "\n    ") << '"'
            << jsonEscape(snapshot.gauges[i].first)
            << "\": " << formatDouble(snapshot.gauges[i].second);
    }
    out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n";

    out << "  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const HistogramSnapshot &hist = snapshot.histograms[i];
        out << (i ? ",\n    " : "\n    ") << '"'
            << jsonEscape(hist.name) << "\": {\"bounds\": [";
        for (std::size_t j = 0; j < hist.bounds.size(); ++j)
            out << (j ? ", " : "") << formatDouble(hist.bounds[j]);
        out << "], \"buckets\": [";
        for (std::size_t j = 0; j < hist.buckets.size(); ++j)
            out << (j ? ", " : "") << hist.buckets[j];
        out << "], \"count\": " << hist.count
            << ", \"sum\": " << formatDouble(hist.sum) << "}";
    }
    out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void
writeMetricsJson(std::ostream &out)
{
    writeMetricsJson(out, snapshotMetrics());
}

bool
tryParseMetricsJson(const std::string &text, MetricsSnapshot *out,
                    std::string *error)
{
    MetricsSnapshot parsed;
    Parser parser(text);
    if (!parser.parse(&parsed)) {
        if (error)
            *error = parser.error();
        return false;
    }
    *out = std::move(parsed);
    return true;
}

bool
tryWriteMetricsFile(const std::string &path, std::string *error)
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    writeMetricsJson(out);
    out.close();
    if (!out.good()) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace obs
} // namespace ceer
