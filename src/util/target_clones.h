/**
 * @file
 * Shared function-multiversioning macro for the repo's vectorized
 * kernels (the simulation sampling kernel and the compiled-prediction
 * evaluation kernel).
 *
 * CEER_VECTOR_CLONES multiversions a hot function: the loader picks
 * the widest clone the CPU supports (ifunc dispatch), so a generic
 * x86-64 build still runs 4- or 8-wide on AVX machines. Every
 * translation unit using it MUST be compiled with -ffp-contract=off
 * (see the set_source_files_properties calls in src/sim and src/core):
 * an FMA-fusing clone would return different bits than the generic
 * clone, breaking the bit-determinism contract across hosts.
 *
 * Sanitizer builds skip the clones: ifunc resolvers run before the
 * sanitizer runtime is initialized and crash at load.
 */

#ifndef CEER_UTIL_TARGET_CLONES_H
#define CEER_UTIL_TARGET_CLONES_H

#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__) &&               \
    !defined(__SANITIZE_ADDRESS__)
#define CEER_VECTOR_CLONES                                             \
    __attribute__((target_clones("default", "arch=x86-64-v3",          \
                                 "arch=x86-64-v4")))
#else
#define CEER_VECTOR_CLONES
#endif

#endif // CEER_UTIL_TARGET_CLONES_H
