/**
 * @file
 * Minimal CSV writing/reading for profile datasets and bench output.
 *
 * The dialect is deliberately simple: comma separator, quoting with
 * double quotes only when a field contains a comma, quote or newline,
 * embedded quotes doubled. This round-trips everything we emit.
 */

#ifndef CEER_UTIL_CSV_H
#define CEER_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace ceer {
namespace util {

/** Streams rows to an std::ostream in CSV format. */
class CsvWriter
{
  public:
    /** @param out Destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    /** Writes one row; fields are escaped as needed. */
    void writeRow(const std::vector<std::string> &fields);

    /** Number of rows written so far. */
    std::size_t rows() const { return rows_; }

    /** Escapes a single field per the dialect above. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &out_;
    std::size_t rows_ = 0;
};

/**
 * Parses one CSV line into fields (inverse of CsvWriter::escape).
 *
 * @param line A single line without the trailing newline.
 * @return The decoded fields.
 */
std::vector<std::string> parseCsvLine(const std::string &line);

/**
 * Reads an entire CSV document from a stream.
 *
 * Quoted fields spanning newlines are not supported (we never emit them).
 *
 * @param in Input stream read to EOF.
 * @return One vector of fields per non-empty line.
 */
std::vector<std::vector<std::string>> readCsv(std::istream &in);

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_CSV_H
