/**
 * @file
 * RFC-4180 CSV writing/reading for profile datasets and bench output.
 *
 * Dialect: comma separator; fields containing a comma, quote, CR or LF
 * are quoted with double quotes and embedded quotes are doubled. Quoted
 * fields may span lines (CR and LF are preserved verbatim inside
 * quotes). Both LF and CRLF are accepted as record separators on read;
 * a lone CR outside quotes is tolerated and dropped. Records that are
 * completely empty (a blank line) are skipped; a record holding one
 * genuinely empty field is written as `""` so it survives the
 * blank-line rule. An unterminated quote is a hard parse error.
 *
 * See docs/file_formats.md for the full dialect specification and the
 * per-loader error-handling policy.
 */

#ifndef CEER_UTIL_CSV_H
#define CEER_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace ceer {
namespace util {

/** Streams rows to an std::ostream in CSV format. */
class CsvWriter
{
  public:
    /** @param out Destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    /** Writes one row; fields are escaped as needed. */
    void writeRow(const std::vector<std::string> &fields);

    /** Number of rows written so far. */
    std::size_t rows() const { return rows_; }

    /** Escapes a single field per the dialect above. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &out_;
    std::size_t rows_ = 0;
};

/**
 * Parses one CSV line into fields (inverse of CsvWriter::escape).
 *
 * @param line   A single record; quoted fields may contain CR/LF.
 * @param fields Decoded fields (cleared first).
 * @param error  On failure, set to a human-readable description.
 * @return True on success; false leaves @p fields unspecified.
 */
bool tryParseCsvLine(const std::string &line,
                     std::vector<std::string> *fields,
                     std::string *error);

/**
 * Parses one CSV line, terminating via util::fatal on malformed input
 * (unterminated quote). Prefer tryParseCsvLine when the caller has a
 * recovery path.
 */
std::vector<std::string> parseCsvLine(const std::string &line);

/**
 * Reads an entire CSV document from a stream.
 *
 * Supports multi-line records (newlines inside quoted fields). Blank
 * lines are skipped.
 *
 * @param in    Input stream read to EOF.
 * @param rows  One vector of fields per record (cleared first).
 * @param error On failure, set to "line N: ..." context.
 * @return True on success; false leaves @p rows unspecified.
 */
bool tryReadCsv(std::istream &in,
                std::vector<std::vector<std::string>> *rows,
                std::string *error);

/**
 * Reads an entire CSV document, terminating via util::fatal on
 * malformed input. Prefer tryReadCsv when the caller has a recovery
 * path (e.g. the profile cache treats parse errors as a miss).
 */
std::vector<std::vector<std::string>> readCsv(std::istream &in);

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_CSV_H
