#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace ceer {
namespace util {

std::uint64_t
hashMix(std::uint64_t seed, const std::string &text)
{
    // Length prefix keeps ("ab", "c") distinct from ("a", "bc") when
    // several strings are mixed in sequence.
    std::uint64_t h = hashMix(seed, text.size());
    for (unsigned char c : text)
        h = hashMix(h, c);
    return h;
}

double
inverseNormalCdfTail(double p)
{
    // Acklam's tail-branch coefficients (~5% of uniform draws).
    static constexpr double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};
    const double q = std::sqrt(-2.0 * std::log(p < 0.5 ? p : 1.0 - p));
    const double z =
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    return p < 0.5 ? z : -z;
}

double
inverseNormalCdf(double p)
{
    if (!(p > 0.0 && p < 1.0))
        panic("inverseNormalCdf requires p in (0, 1)");
    if (p < kInverseNormalCdfLow || p > 1.0 - kInverseNormalCdfLow)
        return inverseNormalCdfTail(p);
    const double q = p - 0.5;
    return inverseNormalCdfCentral(q, q * q);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id into the seed through an extra SplitMix64 pass so
    // that nearby (seed, stream) pairs map to unrelated states.
    std::uint64_t sm = seed ^ (0xD2B74407B1CE6E93ull * (stream + 1));
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt called with n == 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -n % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalFactor(double sigma)
{
    return std::exp(sigma * normal());
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::gamma(double shape, double scale)
{
    if (shape <= 0.0 || scale <= 0.0)
        panic("Rng::gamma requires positive shape and scale");
    if (shape < 1.0) {
        // Boost: Gamma(k) = Gamma(k + 1) * U^(1/k).
        const double u = std::max(uniform(), 1e-300);
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v * scale;
        if (std::log(std::max(u, 1e-300)) <
            0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v * scale;
        }
    }
}

} // namespace util
} // namespace ceer
