/**
 * @file
 * Streaming and batch statistics used throughout profiling and modeling.
 */

#ifndef CEER_UTIL_STATS_H
#define CEER_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ceer {
namespace util {

/**
 * Numerically stable streaming moments (Welford's algorithm).
 *
 * Tracks count, mean, variance, min and max of a sample stream without
 * storing the samples.
 */
class RunningStats
{
  public:
    /** Adds one observation. */
    void add(double x);

    /** Merges another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Number of observations added so far. */
    std::size_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /**
     * Standard deviation normalized by the mean (coefficient of
     * variation); 0 when the mean is 0.
     */
    double normalizedStddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const;

    /** Largest observation; -inf when empty. */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /**
     * Welford M2 accumulator (sum of squared deviations from the
     * mean); exposed so the CBF codecs can serialize the exact
     * internal state instead of a lossy (count, mean, stddev) triple.
     */
    double sumSquaredDeviations() const { return m2_; }

    /**
     * Reconstructs an accumulator from its exact internal state as
     * captured by count()/mean()/sumSquaredDeviations()/min()/max().
     * A zero count yields a default (empty) accumulator regardless of
     * the other arguments.
     */
    static RunningStats fromState(std::size_t count, double mean,
                                  double m2, double min, double max);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Bounded reservoir of samples supporting order statistics.
 *
 * Keeps at most @c capacity samples via reservoir sampling so that median
 * and percentile queries stay O(capacity log capacity) regardless of how
 * many observations were offered. Deterministic given the insertion order.
 */
class SampleReservoir
{
  public:
    /** @param capacity Maximum number of retained samples (> 0). */
    explicit SampleReservoir(std::size_t capacity = 4096);

    /** Offers one observation to the reservoir. */
    void add(double x);

    /** Total observations offered (not just retained). */
    std::size_t offered() const { return offered_; }

    /** Maximum number of retained samples. */
    std::size_t capacity() const { return capacity_; }

    /**
     * Internal replacement-RNG state; exposed (with fromState) so the
     * CBF codecs restore a reservoir that continues the exact sample
     * stream the original would have produced.
     */
    std::uint64_t rngState() const { return rngState_; }

    /**
     * Reconstructs a reservoir from its exact internal state. Panics
     * on inconsistent state (capacity 0, more samples than capacity,
     * or a retained count that contradicts @p offered); binary loaders
     * validate before calling so corrupt files degrade to load errors
     * instead.
     */
    static SampleReservoir fromState(std::size_t capacity,
                                     std::size_t offered,
                                     std::uint64_t rng_state,
                                     std::vector<double> samples);

    /** Currently retained samples (unsorted). */
    const std::vector<double> &samples() const { return samples_; }

    /** Median of retained samples; 0 when empty. */
    double median() const;

    /**
     * Percentile of retained samples with linear interpolation.
     *
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

  private:
    std::size_t capacity_;
    std::size_t offered_ = 0;
    std::uint64_t rngState_;
    std::vector<double> samples_;
};

/** Returns the median of @p values (copied and partially sorted). */
double median(std::vector<double> values);

/**
 * Returns the @p p percentile (0-100) of @p values with linear
 * interpolation between closest ranks; 0 for an empty vector.
 */
double percentile(std::vector<double> values, double p);

/** One point of an empirical CDF: P(X <= value) = cumulative. */
struct CdfPoint
{
    double value;      ///< Sample value.
    double cumulative; ///< Fraction of samples <= value, in (0, 1].
};

/**
 * Builds an empirical CDF from samples.
 *
 * @param values     Observations (copied and sorted).
 * @param maxPoints  Downsample to at most this many points (>= 2).
 */
std::vector<CdfPoint> empiricalCdf(std::vector<double> values,
                                   std::size_t maxPoints = 200);

/** Mean absolute percentage error of predictions vs observations. */
double meanAbsolutePercentageError(const std::vector<double> &observed,
                                   const std::vector<double> &predicted);

/** Root-mean-squared error of predictions vs observations. */
double rootMeanSquaredError(const std::vector<double> &observed,
                            const std::vector<double> &predicted);

/**
 * Spearman rank correlation of two paired samples (Pearson correlation
 * of their fractional ranks; ties receive averaged ranks). Returns 0
 * when either side has fewer than two points or zero rank variance —
 * the coefficient is undefined there, and 0 ("no agreement signal") is
 * the conservative report for a ranking-quality metric.
 */
double spearmanRankCorrelation(const std::vector<double> &a,
                               const std::vector<double> &b);

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_STATS_H
