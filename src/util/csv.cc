#include "util/csv.h"

#include <istream>
#include <iterator>

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace util {

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    if (fields.size() == 1 && fields[0].empty()) {
        // A bare empty line would be indistinguishable from a blank
        // (skipped) record on read; quote it so it round-trips.
        out_ << "\"\"\n";
        ++rows_;
        return;
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    ++rows_;
}

namespace {

/**
 * Document-level RFC-4180 state machine shared by tryReadCsv and
 * tryParseCsvLine. Returns false with *error set (including a 1-based
 * line number) on an unterminated quoted field.
 */
bool
parseCsvDocument(const std::string &text,
                 std::vector<std::vector<std::string>> *rows,
                 std::string *error)
{
    rows->clear();
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    bool record_has_quotes = false;
    std::size_t line = 1;
    std::size_t quote_opened_line = 1;

    const auto end_record = [&]() {
        if (fields.empty() && current.empty() && !record_has_quotes)
            return; // Blank line: skip, as every reader expects.
        fields.push_back(std::move(current));
        current.clear();
        rows->push_back(std::move(fields));
        fields.clear();
        record_has_quotes = false;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                // CR and LF are data inside quotes (multi-line record).
                current += c;
                if (c == '\n')
                    ++line;
            }
        } else if (c == '"') {
            in_quotes = true;
            record_has_quotes = true;
            quote_opened_line = line;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (c == '\r') {
            // Part of a CRLF separator (handled at the '\n'), or a
            // stray CR we tolerate and drop.
        } else if (c == '\n') {
            end_record();
            ++line;
        } else {
            current += c;
        }
    }
    if (in_quotes) {
        if (error)
            *error = format("line %zu: unterminated quoted field "
                            "(quote opened on line %zu)",
                            line, quote_opened_line);
        return false;
    }
    end_record(); // Final record without a trailing newline.
    return true;
}

} // namespace

bool
tryParseCsvLine(const std::string &line,
                std::vector<std::string> *fields, std::string *error)
{
    std::vector<std::vector<std::string>> rows;
    if (!parseCsvDocument(line, &rows, error))
        return false;
    if (rows.size() > 1) {
        if (error)
            *error = "multiple records in a single line";
        return false;
    }
    if (rows.empty())
        *fields = {""};
    else
        *fields = std::move(rows[0]);
    return true;
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string error;
    if (!tryParseCsvLine(line, &fields, &error))
        fatal("parseCsvLine: " + error);
    return fields;
}

bool
tryReadCsv(std::istream &in,
           std::vector<std::vector<std::string>> *rows,
           std::string *error)
{
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    return parseCsvDocument(text, rows, error);
}

std::vector<std::vector<std::string>>
readCsv(std::istream &in)
{
    std::vector<std::vector<std::string>> rows;
    std::string error;
    if (!tryReadCsv(in, &rows, &error))
        fatal("readCsv: " + error);
    return rows;
}

} // namespace util
} // namespace ceer
