#include "util/csv.h"

#include <istream>

namespace ceer {
namespace util {

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    ++rows_;
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else if (c == '\r') {
            // Tolerate CRLF input.
        } else {
            current += c;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

std::vector<std::vector<std::string>>
readCsv(std::istream &in)
{
    std::vector<std::vector<std::string>> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line == "\r")
            continue;
        rows.push_back(parseCsvLine(line));
    }
    return rows;
}

} // namespace util
} // namespace ceer
