#include "util/table.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    aligns_.assign(header_.size(), Align::Right);
    if (!aligns_.empty())
        aligns_[0] = Align::Left;
}

void
TablePrinter::setAlign(std::size_t column, Align align)
{
    if (column >= aligns_.size())
        panic("TablePrinter::setAlign: column out of range");
    aligns_[column] = align;
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("TablePrinter::addRow: column count mismatch");
    rows_.push_back(std::move(row));
}

void
TablePrinter::addSeparator()
{
    rows_.emplace_back();
}

std::size_t
TablePrinter::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        if (!row.empty())
            ++n;
    return n;
}

void
TablePrinter::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        out << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::string &cell = row[c];
            const std::size_t pad = widths[c] - cell.size();
            out << ' ';
            if (aligns_[c] == Align::Right)
                out << std::string(pad, ' ') << cell;
            else
                out << cell << std::string(pad, ' ');
            out << " |";
        }
        out << '\n';
    };

    auto emit_separator = [&]() {
        out << "+";
        for (std::size_t c = 0; c < widths.size(); ++c)
            out << std::string(widths[c] + 2, '-') << "+";
        out << '\n';
    };

    emit_separator();
    emit_row(header_);
    emit_separator();
    for (const auto &row : rows_) {
        if (row.empty())
            emit_separator();
        else
            emit_row(row);
    }
    emit_separator();
}

void
printBanner(std::ostream &out, const std::string &title)
{
    out << "\n==== " << title << " ====\n";
}

bool
printCheck(std::ostream &out, const std::string &what, double measured,
           double lo, double hi)
{
    const bool ok = measured >= lo && measured <= hi;
    out << (ok ? "[PASS] " : "[CHECK] ") << what << ": measured "
        << format("%.4g", measured) << " (paper band "
        << format("%.4g", lo) << " .. " << format("%.4g", hi) << ")\n";
    return ok;
}

} // namespace util
} // namespace ceer
