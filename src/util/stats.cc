#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/random.h"

namespace ceer {
namespace util {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::normalizedStddev() const
{
    if (count_ == 0 || mean_ == 0.0)
        return 0.0;
    return stddev() / std::abs(mean_);
}

RunningStats
RunningStats::fromState(std::size_t count, double mean, double m2,
                        double min, double max)
{
    RunningStats stats;
    if (count == 0)
        return stats;
    stats.count_ = count;
    stats.mean_ = mean;
    stats.m2_ = m2;
    stats.min_ = min;
    stats.max_ = max;
    return stats;
}

double
RunningStats::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::infinity();
}

double
RunningStats::max() const
{
    return count_ ? max_ : -std::numeric_limits<double>::infinity();
}

SampleReservoir::SampleReservoir(std::size_t capacity)
    : capacity_(capacity), rngState_(0xA02BDBF7BB3C0A7ull)
{
    if (capacity_ == 0)
        panic("SampleReservoir capacity must be positive");
    samples_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
SampleReservoir::add(double x)
{
    ++offered_;
    if (samples_.size() < capacity_) {
        samples_.push_back(x);
        return;
    }
    // Classic reservoir sampling: replace a random slot with probability
    // capacity / offered.
    const std::uint64_t pick = splitMix64(rngState_) % offered_;
    if (pick < capacity_)
        samples_[pick] = x;
}

SampleReservoir
SampleReservoir::fromState(std::size_t capacity, std::size_t offered,
                           std::uint64_t rng_state,
                           std::vector<double> samples)
{
    SampleReservoir reservoir(capacity); // panics on capacity == 0
    const bool consistent = offered <= capacity
                                ? samples.size() == offered
                                : samples.size() == capacity;
    if (!consistent)
        panic("SampleReservoir::fromState: inconsistent state");
    reservoir.offered_ = offered;
    reservoir.rngState_ = rng_state;
    reservoir.samples_ = std::move(samples);
    return reservoir;
}

double
SampleReservoir::median() const
{
    return util::median(samples_);
}

double
SampleReservoir::percentile(double p) const
{
    return util::percentile(samples_, p);
}

double
median(std::vector<double> values)
{
    return percentile(std::move(values), 50.0);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi)
        return values[lo];
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint>
empiricalCdf(std::vector<double> values, std::size_t maxPoints)
{
    std::vector<CdfPoint> cdf;
    if (values.empty())
        return cdf;
    if (maxPoints < 2)
        maxPoints = 2;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    const std::size_t points = std::min(maxPoints, n);
    cdf.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        // Pick evenly spaced ranks, always including the last sample.
        const std::size_t idx =
            (points == 1) ? n - 1 : i * (n - 1) / (points - 1);
        cdf.push_back({values[idx],
                       static_cast<double>(idx + 1) /
                           static_cast<double>(n)});
    }
    return cdf;
}

double
meanAbsolutePercentageError(const std::vector<double> &observed,
                            const std::vector<double> &predicted)
{
    if (observed.size() != predicted.size())
        panic("MAPE: size mismatch between observed and predicted");
    if (observed.empty())
        return 0.0;
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        if (observed[i] == 0.0)
            continue;
        total += std::abs(predicted[i] - observed[i]) /
                 std::abs(observed[i]);
        ++counted;
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

double
rootMeanSquaredError(const std::vector<double> &observed,
                     const std::vector<double> &predicted)
{
    if (observed.size() != predicted.size())
        panic("RMSE: size mismatch between observed and predicted");
    if (observed.empty())
        return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double err = predicted[i] - observed[i];
        total += err * err;
    }
    return std::sqrt(total / static_cast<double>(observed.size()));
}

namespace {

/** Fractional ranks of @p values (ties averaged), 1-based. */
std::vector<double>
fractionalRanks(const std::vector<double> &values)
{
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return values[a] < values[b];
              });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        // Positions i..j (0-based) share the averaged 1-based rank.
        const double rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
            1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = rank;
        i = j + 1;
    }
    return ranks;
}

} // namespace

double
spearmanRankCorrelation(const std::vector<double> &a,
                        const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("spearman: size mismatch between samples");
    const std::size_t n = a.size();
    if (n < 2)
        return 0.0;
    const std::vector<double> ra = fractionalRanks(a);
    const std::vector<double> rb = fractionalRanks(b);
    double mean_a = 0.0, mean_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mean_a += ra[i];
        mean_b += rb[i];
    }
    mean_a /= static_cast<double>(n);
    mean_b /= static_cast<double>(n);
    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = ra[i] - mean_a;
        const double db = rb[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if (var_a == 0.0 || var_b == 0.0)
        return 0.0;
    return cov / std::sqrt(var_a * var_b);
}

} // namespace util
} // namespace ceer
