#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace ceer {
namespace util {

namespace {

const char *
kindName(int kind)
{
    switch (kind) {
      case 0: return "int";
      case 1: return "double";
      case 2: return "string";
      case 3: return "bool";
    }
    return "?";
}

} // namespace

void
Flags::defineInt(const std::string &name, std::int64_t default_value,
                 const std::string &help)
{
    const std::string text = std::to_string(default_value);
    flags_[name] = Flag{Kind::Int, text, text, help};
}

void
Flags::defineDouble(const std::string &name, double default_value,
                    const std::string &help)
{
    const std::string text = format("%.17g", default_value);
    flags_[name] = Flag{Kind::Double, text, text, help};
}

void
Flags::defineString(const std::string &name,
                    const std::string &default_value,
                    const std::string &help)
{
    flags_[name] = Flag{Kind::String, default_value, default_value, help};
}

void
Flags::defineBool(const std::string &name, bool default_value,
                  const std::string &help)
{
    const std::string text = default_value ? "true" : "false";
    flags_[name] = Flag{Kind::Bool, text, text, help};
}

void
Flags::parse(int argc, char **argv)
{
    bool flags_ended = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (flags_ended || !startsWith(arg, "--")) {
            positional_.push_back(std::move(arg));
            continue;
        }
        if (arg == "--") {
            // End-of-flags terminator: everything after a literal "--"
            // is positional, so positionals that start with "--" are
            // representable.
            flags_ended = true;
            continue;
        }
        arg = arg.substr(2);
        if (arg == "help") {
            std::fputs(usage(argv[0]).c_str(), stdout);
            std::exit(0);
        }
        std::string name = arg;
        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag --" + name + " (see --help)");
        Flag &flag = it->second;
        if (flag.kind == Kind::Bool && !have_value) {
            // A bool switch may still take a separate-token value:
            // `--flag false` must parse as flag=false, not as
            // flag=true plus a stray "false" positional.
            if (i + 1 < argc) {
                const std::string next = toLower(argv[i + 1]);
                if (next == "true" || next == "false") {
                    flag.value = next;
                    ++i;
                    continue;
                }
            }
            flag.value = "true";
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                fatal("flag --" + name + " expects a value");
            value = argv[++i];
        }
        // Validate numeric values eagerly through the checked-parse
        // layer, so lookups never re-parse unvalidated text.
        if (flag.kind == Kind::Int) {
            if (!parseInt64(value).ok())
                fatal("flag --" + name + " expects an integer, got '" +
                      value + "'");
        } else if (flag.kind == Kind::Double) {
            if (!parseDouble(value).ok())
                fatal("flag --" + name + " expects a number, got '" +
                      value + "'");
        } else if (flag.kind == Kind::Bool) {
            const std::string lower = toLower(value);
            if (lower != "true" && lower != "false")
                fatal("flag --" + name + " expects true/false");
            value = lower;
        }
        flag.value = value;
    }
}

const Flags::Flag &
Flags::lookup(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        panic("flag --" + name + " was never defined");
    if (it->second.kind != kind) {
        panic("flag --" + name + " accessed as " +
              kindName(static_cast<int>(kind)) + " but defined as " +
              kindName(static_cast<int>(it->second.kind)));
    }
    return it->second;
}

std::int64_t
Flags::getInt(const std::string &name) const
{
    const auto parsed = parseInt64(lookup(name, Kind::Int).value);
    if (!parsed.ok())
        panic("flag --" + name + " holds a non-integer value");
    return parsed.value;
}

double
Flags::getDouble(const std::string &name) const
{
    const auto parsed = parseDouble(lookup(name, Kind::Double).value);
    if (!parsed.ok())
        panic("flag --" + name + " holds a non-numeric value");
    return parsed.value;
}

std::string
Flags::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

bool
Flags::getBool(const std::string &name) const
{
    return lookup(name, Kind::Bool).value == "true";
}

std::string
Flags::usage(const std::string &program) const
{
    std::string out = "usage: " + program + " [flags]\n";
    for (const auto &[name, flag] : flags_) {
        out += format("  --%-24s %s (default: %s)\n", name.c_str(),
                      flag.help.c_str(), flag.defaultValue.c_str());
    }
    return out;
}

} // namespace util
} // namespace ceer
