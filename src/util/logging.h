/**
 * @file
 * Minimal leveled logging and fatal-error helpers.
 *
 * The simulator and the Ceer pipeline are long-running batch programs;
 * logging is line-oriented to stderr so that bench/table output on stdout
 * stays machine-parsable.
 */

#ifndef CEER_UTIL_LOGGING_H
#define CEER_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace ceer {

/** Severity for log messages, lowest to highest. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

namespace util {

/** Returns the current global log threshold. */
LogLevel logThreshold();

/**
 * Sets the global log threshold; messages below it are dropped.
 *
 * @param level New minimum severity to emit.
 */
void setLogThreshold(LogLevel level);

/**
 * Emits one formatted log line to stderr if @p level passes the threshold.
 *
 * @param level Severity of the message.
 * @param msg   Already-formatted message body.
 */
void logLine(LogLevel level, const std::string &msg);

/**
 * Prints a fatal error message and terminates the process with exit(1).
 *
 * Use for user-level errors (bad flags, malformed input files), matching
 * the gem5 fatal()/panic() distinction.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Prints an internal-invariant violation and aborts.
 *
 * Use for conditions that indicate a bug in this library itself.
 */
[[noreturn]] void panic(const std::string &msg);

/** Stream-style builder used by the CEER_LOG macro. */
class LogMessage
{
  public:
    LogMessage(LogLevel level) : level_(level) {}

    ~LogMessage() { logLine(level_, stream_.str()); }

    template <typename T>
    LogMessage &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace util
} // namespace ceer

#define CEER_LOG(level) ::ceer::util::LogMessage(::ceer::LogLevel::level)

#endif // CEER_UTIL_LOGGING_H
