/**
 * @file
 * Fixed-size worker pool used to parallelize embarrassingly parallel
 * work (profiling runs, sweeps) without spawning a thread per task.
 *
 * Tasks are arbitrary callables submitted to a shared FIFO queue;
 * submit() returns a std::future for the callable's result. The
 * parallelFor() helper distributes an index range over the workers via
 * an atomic cursor, with the calling thread participating so that a
 * pool of W workers gives W+1-way concurrency and a 0-worker pool
 * degrades to a plain serial loop on the caller.
 */

#ifndef CEER_UTIL_THREAD_POOL_H
#define CEER_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ceer {
namespace util {

/**
 * Fixed worker pool with a shared task queue.
 *
 * Thread-safe: submit() and parallelFor() may be called from any
 * thread. The destructor drains outstanding tasks and joins.
 */
class ThreadPool
{
  public:
    /**
     * @param workers Worker thread count. kAutoWorkers picks
     *                hardware_concurrency() - 1 (the caller counts as
     *                one executor via parallelFor); 0 creates no
     *                threads and makes parallelFor a serial loop.
     */
    explicit ThreadPool(std::size_t workers = kAutoWorkers);

    /** Joins all workers after finishing queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Sentinel for "size the pool from the hardware". */
    static constexpr std::size_t kAutoWorkers = ~std::size_t{0};

    /** Number of worker threads (excludes the calling thread). */
    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Enqueues @p task for execution on a worker.
     *
     * @return Future for the task's result; exceptions thrown by the
     *         task surface from future::get().
     */
    template <typename F>
    auto submit(F task) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<Result()>>(
            std::move(task));
        std::future<Result> future = packaged->get_future();
        std::size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([packaged] { (*packaged)(); });
            depth = queue_.size();
        }
        noteEnqueued(depth);
        wake_.notify_one();
        return future;
    }

    /**
     * Runs body(i) for every i in [0, n), blocking until all complete.
     *
     * Indices are claimed from an atomic cursor, so the assignment of
     * index to thread is nondeterministic — the body must not depend
     * on execution order. The calling thread executes tasks too.
     * The first exception thrown by any body is rethrown here (after
     * all indices finish or are abandoned).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Effective parallelism for a requested thread count: @p requested
     * if positive, otherwise hardware_concurrency() (min 1).
     */
    static std::size_t effectiveThreads(int requested);

  private:
    void workerLoop();

    /** Observability hook: counts the task and publishes the queue
     *  depth sampled at enqueue time (no-op while obs is disabled). */
    static void noteEnqueued(std::size_t depth);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_THREAD_POOL_H
