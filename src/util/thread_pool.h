/**
 * @file
 * Work-stealing worker pool used to parallelize the repo's hot sweeps
 * (profiling runs, simulated iterations, recommender candidates,
 * trainer fit cells) without spawning a thread per task — or per call.
 *
 * Scheduler design (see docs/performance.md for the full story):
 *
 *  - Each worker owns a fixed-capacity Chase–Lev deque of task
 *    pointers: the owner pushes and pops at the bottom lock-free,
 *    thieves CAS the top. External submitters (and deque overflow)
 *    go through a small mutex-guarded injection queue.
 *  - Idle workers steal from victims chosen by a per-thread xorshift
 *    walk; after a few failed scan rounds they park on an eventcount
 *    (announce-then-validate), so enqueueing while every worker is
 *    busy costs two uncontended atomics and no notify syscall.
 *  - parallelForRange() distributes contiguous [lo, hi) chunks through
 *    a shared claim cursor with an adaptive grain: callers pass a
 *    static per-item cost hint, or the first chunk is measured and the
 *    grain derived from it, targeting ~kTargetChunkUs of work per
 *    claim (bounded so every executor still gets several chunks).
 *  - ThreadPool::shared() is a leaked process-wide pool so sub-
 *    millisecond parallel sections (the recommender sweep) reuse
 *    parked workers instead of paying thread creation per call.
 *
 * Work distribution is nondeterministic; every call site keeps its
 * outputs byte-identical across thread counts by writing to
 * slot-indexed results and reducing in serial order.
 */

#ifndef CEER_UTIL_THREAD_POOL_H
#define CEER_UTIL_THREAD_POOL_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ceer {
namespace util {

/**
 * Move-only type-erased callable with small-buffer optimization: the
 * common wrappers (packaged_task, a shared_ptr to a parallel-for job)
 * fit inline, so enqueueing does not heap-allocate beyond the task
 * node itself.
 */
class Task
{
  public:
    Task() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Task>>>
    Task(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (storage_) Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            relocate_ = [](void *from, void *to) {
                Fn *source = static_cast<Fn *>(from);
                new (to) Fn(std::move(*source));
                source->~Fn();
            };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            inline_ = true;
        } else {
            heap_ = new Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<Fn *>(p); };
            inline_ = false;
        }
    }

    Task(Task &&other) noexcept { moveFrom(other); }

    Task &operator=(Task &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    void operator()() { invoke_(target()); }

  private:
    static constexpr std::size_t kInlineBytes = 48;

    void *target()
    {
        return inline_ ? static_cast<void *>(storage_) : heap_;
    }

    void reset()
    {
        if (invoke_)
            destroy_(target());
        invoke_ = nullptr;
    }

    void moveFrom(Task &other) noexcept
    {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        destroy_ = other.destroy_;
        inline_ = other.inline_;
        if (!invoke_)
            return;
        if (inline_)
            relocate_(other.storage_, storage_);
        else
            heap_ = other.heap_;
        other.invoke_ = nullptr;
    }

    union
    {
        alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
        void *heap_;
    };
    void (*invoke_)(void *) = nullptr;
    void (*relocate_)(void *, void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    bool inline_ = false;
};

/** Tuning knobs for one parallelForRange() call. */
struct ParallelOptions
{
    /**
     * Estimated cost of one item in microseconds. Positive values set
     * the grain statically (targeting ~kTargetChunkUs per chunk);
     * 0 means "unknown" and the first chunk of each executor is
     * measured until one measurement publishes the grain.
     */
    double costHintUs = 0.0;

    /** Never claim fewer items than this per chunk (also the probe
     *  chunk size while the grain is unmeasured). */
    std::size_t minGrain = 1;

    /** Never claim more items than this per chunk (0 = no cap beyond
     *  the load-balance bound). */
    std::size_t maxGrain = 0;

    /**
     * Cap on concurrent executors, counting the calling thread
     * (0 = caller plus every pool worker). Call sites map their
     * `threads` knobs here; the pool never uses more executors than
     * it has workers + 1.
     */
    std::size_t maxThreads = 0;
};

/**
 * Work-stealing worker pool.
 *
 * Thread-safe: submit() and the parallelFor family may be called from
 * any thread, including from inside a task running on this pool
 * (nested parallel sections do not deadlock: the nested caller claims
 * chunks itself, and abandoned helper tasks exit without touching the
 * caller's frame). The destructor drains outstanding tasks and joins.
 */
class ThreadPool
{
  public:
    /**
     * @param workers Worker thread count. kAutoWorkers picks
     *                hardware_concurrency() - 1 (the caller counts as
     *                one executor via parallelFor); 0 creates no
     *                threads, makes parallelFor a serial loop, and
     *                runs submit() tasks inline on the caller.
     */
    explicit ThreadPool(std::size_t workers = kAutoWorkers);

    /** Joins all workers after finishing queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Sentinel for "size the pool from the hardware". */
    static constexpr std::size_t kAutoWorkers = ~std::size_t{0};

    /**
     * Process-wide pool shared by every parallel call site, created on
     * first use and intentionally leaked (workers park when idle).
     * Sized max(1, hardware_concurrency() - 1) so parallel code paths
     * are exercised even on a single-core host.
     */
    static ThreadPool &shared();

    /** Number of worker threads (excludes the calling thread). */
    std::size_t workerCount() const { return workers_.size(); }

    /** Target microseconds of work per claimed chunk. */
    static constexpr double kTargetChunkUs = 100.0;

    /**
     * Enqueues @p task for execution on a worker. A pool with no
     * workers runs the task inline on the calling thread instead —
     * otherwise the returned future could only resolve in the
     * destructor's drain, and future::get() would deadlock.
     *
     * @return Future for the task's result; exceptions thrown by the
     *         task surface from future::get().
     */
    template <typename F>
    auto submit(F task) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        std::packaged_task<Result()> packaged(std::move(task));
        std::future<Result> future = packaged.get_future();
        if (workers_.empty())
            packaged(); // captures exceptions into the future.
        else
            enqueue(Task(std::move(packaged)));
        return future;
    }

    /**
     * Runs body(i) for every i in [0, n), blocking until all complete.
     *
     * Compatibility per-index form: indices are claimed in contiguous
     * chunks (adaptive grain, measured from the first chunk), so the
     * assignment of index to thread is nondeterministic — the body
     * must not depend on execution order. The calling thread executes
     * chunks too. The first exception thrown by any body is rethrown
     * here after every other chunk finishes or is abandoned.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Runs body(lo, hi) over disjoint chunks covering [0, n),
     * blocking until all complete. The preferred form for fine-grained
     * items: the body amortizes per-chunk scheduling over a tight
     * local loop. Chunk boundaries are scheduling artifacts — the body
     * must produce the same result for any partition of [0, n).
     *
     * Exceptions: the first exception thrown by any chunk is rethrown
     * here; chunks not yet claimed when it was thrown are abandoned.
     */
    template <typename Body>
    void parallelForRange(std::size_t n, const ParallelOptions &options,
                          Body &&body)
    {
        using Fn = std::remove_reference_t<Body>;
        parallelForRangeImpl(
            n, options,
            [](void *ctx, std::size_t lo, std::size_t hi) {
                (*static_cast<Fn *>(ctx))(lo, hi);
            },
            std::addressof(body));
    }

    /**
     * Effective parallelism for a requested thread count: @p requested
     * if positive, otherwise hardware_concurrency() (min 1).
     */
    static std::size_t effectiveThreads(int requested);

  private:
    /**
     * Fixed-capacity Chase–Lev deque of task pointers. push()/pop()
     * are owner-only and lock-free; steal() may be called by any
     * thread and races are resolved by a CAS on top_. Orderings are
     * deliberately seq_cst on the top/bottom counters (no standalone
     * fences: ThreadSanitizer models atomics, not fences) — task
     * pointers move at chunk granularity, so the counter traffic is
     * not a hot path.
     */
    class StealDeque
    {
      public:
        static constexpr std::size_t kCapacity = 256; // power of two

        /** Owner only. Returns false when full (caller overflows to
         *  the injection queue). */
        bool push(Task *task);

        /** Owner only. Null when empty or lost to a thief. */
        Task *pop();

        /** Any thread. Null when empty or the race was lost. */
        Task *steal();

        bool looksEmpty() const;

      private:
        static constexpr std::int64_t kMask =
            static_cast<std::int64_t>(kCapacity) - 1;

        alignas(64) std::atomic<std::int64_t> top_{0};
        alignas(64) std::atomic<std::int64_t> bottom_{0};
        std::array<std::atomic<Task *>, kCapacity> slots_{};
    };

    /** Per-worker bookkeeping (the thread plus its deque). */
    struct Worker
    {
        StealDeque deque;
        std::uint64_t executed = 0; ///< Tasks run (worker-local).
    };

    void workerLoop(std::size_t index);

    /** Takes one task from anywhere: own deque (workers), the
     *  injection queue, or a victim's deque. */
    Task *findTask(std::size_t self, std::uint64_t &rngState);

    /** True when any deque or the injection queue looks non-empty
     *  (racy by nature; used by the spin and park re-validation). */
    bool pendingWork();

    /** Moves @p task into the scheduler (local deque when called from
     *  a worker of this pool, else the injection queue) and wakes up
     *  to @p wake parked workers. */
    void enqueue(Task task, std::size_t wake = 1);

    void parallelForRangeImpl(std::size_t n,
                              const ParallelOptions &options,
                              void (*invoke)(void *, std::size_t,
                                             std::size_t),
                              void *ctx);

    /** Wakes up to @p count parked workers (cheap no-op when none). */
    void wake(std::size_t count);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    // External submissions and deque overflow.
    std::mutex injectMutex_;
    std::deque<Task *> inject_;

    // Eventcount: under parkMutex_, workers announce in parked_,
    // snapshot epoch_, re-validate the queues, and only then sleep on
    // "epoch_ moved past the snapshot"; enqueuers bump epoch_ first
    // and only lock/notify when parked_ says someone is waiting.
    std::mutex parkMutex_;
    std::condition_variable parkCv_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> parked_{0};
    std::atomic<bool> stop_{false};
};

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_THREAD_POOL_H
