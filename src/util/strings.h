/**
 * @file
 * Small string helpers (split/join/trim) and printf-style formatting.
 *
 * GCC 12 lacks std::format, so format() wraps vsnprintf with a
 * std::string result.
 */

#ifndef CEER_UTIL_STRINGS_H
#define CEER_UTIL_STRINGS_H

#include <string>
#include <vector>

namespace ceer {
namespace util {

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Splits @p text on @p delim; consecutive delimiters yield empty parts. */
std::vector<std::string> split(const std::string &text, char delim);

/** Joins @p parts with @p delim between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &delim);

/** Removes leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** True if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/** Lower-cases ASCII letters. */
std::string toLower(std::string text);

/**
 * Human-readable byte count, e.g. "85.0MB"; powers of 1000 to match the
 * paper's MB figures.
 */
std::string humanBytes(double bytes);

/** Human-readable time from microseconds, e.g. "3.42ms", "1.2h". */
std::string humanMicros(double micros);

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_STRINGS_H
