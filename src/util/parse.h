/**
 * @file
 * Checked, exception-free parsing of numeric fields.
 *
 * Every loader in the repo (profile CSVs, model files, instance
 * catalogs, the on-disk profile cache, command-line flags) goes through
 * these helpers instead of std::stod/std::stoll: a malformed byte in an
 * input file must surface as a value the caller can route to its own
 * failure policy (util::fatal with file/row/column context, or
 * cache-miss-and-recover) — never as an uncaught std::invalid_argument
 * terminating the process mid-load.
 *
 * The accepted grammar is exactly what our writers emit: an optional
 * sign, then a decimal/scientific number ("%.17g" output round-trips
 * bit for bit), plus "inf"/"infinity"/"nan" in any case for doubles.
 * Leading/trailing whitespace or trailing junk is an error; so is an
 * empty field.
 */

#ifndef CEER_UTIL_PARSE_H
#define CEER_UTIL_PARSE_H

#include <cstdint>
#include <string>

namespace ceer {
namespace util {

/**
 * Value-or-error result of a checked parse. No exceptions, no
 * allocation: @ref error points to a static description string, or is
 * nullptr on success.
 */
template <typename T>
struct ParseResult
{
    T value{};                  ///< Parsed value (valid only if ok()).
    const char *error = nullptr; ///< Static error text, nullptr = ok.

    /** True when the parse consumed the whole field successfully. */
    bool ok() const { return error == nullptr; }
    explicit operator bool() const { return ok(); }
};

/**
 * Parses a double from the entire string.
 *
 * Accepts everything "%.17g" can emit, including "inf" and "nan"
 * spellings (any case, optional sign). Rejects empty input, embedded
 * or trailing garbage, and leading whitespace.
 */
ParseResult<double> parseDouble(const std::string &text);

/**
 * Parses a signed 64-bit integer from the entire string (base 10,
 * optional sign). Rejects empty input, trailing garbage and overflow.
 */
ParseResult<std::int64_t> parseInt64(const std::string &text);

/**
 * Parses a non-negative size (counts, occurrences, widths) from the
 * entire string. Rejects negative values, trailing garbage and
 * overflow.
 */
ParseResult<std::size_t> parseSize(const std::string &text);

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_PARSE_H
