#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ceer {
namespace util {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Info};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

void
logLine(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logThreshold()))
        return;
    std::fprintf(stderr, "[ceer %s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[ceer FATAL] %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[ceer PANIC] %s\n", msg.c_str());
    std::abort();
}

} // namespace util
} // namespace ceer
