/**
 * @file
 * ASCII table rendering for bench binaries.
 *
 * Bench harnesses print the rows/series of the paper's tables and figures;
 * TablePrinter keeps that output aligned and diffable.
 */

#ifndef CEER_UTIL_TABLE_H
#define CEER_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace ceer {
namespace util {

/** Column alignment for TablePrinter. */
enum class Align { Left, Right };

/**
 * Collects rows and renders an aligned ASCII table.
 *
 * Usage:
 * @code
 *   TablePrinter table({"op", "P3 (us)", "P2 (us)"});
 *   table.addRow({"Conv2D", "123.4", "1201.9"});
 *   table.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** @param header Column titles; fixes the column count. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Sets alignment for one column (default: Left for col 0, Right). */
    void setAlign(std::size_t column, Align align);

    /** Adds a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Adds a horizontal separator at the current position. */
    void addSeparator();

    /** Renders the table to @p out. */
    void print(std::ostream &out) const;

    /** Number of data rows (separators excluded). */
    std::size_t rowCount() const;

  private:
    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    /// Rows; an empty vector marks a separator.
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Prints a section banner of the form
 * "==== title ====" used by bench binaries.
 */
void printBanner(std::ostream &out, const std::string &title);

/**
 * Prints a PASS/CHECK line comparing a measured quantity against the
 * paper's expected band.
 *
 * @param out      Destination stream.
 * @param what     Description of the quantity.
 * @param measured Measured value.
 * @param lo       Lower bound of the acceptable band.
 * @param hi       Upper bound of the acceptable band.
 * @return true when measured lies in [lo, hi].
 */
bool printCheck(std::ostream &out, const std::string &what, double measured,
                double lo, double hi);

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_TABLE_H
