#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "obs/metrics.h"

namespace ceer {
namespace util {

void
ThreadPool::noteEnqueued(std::size_t depth)
{
    OBS_COUNTER_INC("threadpool.tasks");
    OBS_GAUGE_SET("threadpool.queue_depth", depth);
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == kAutoWorkers) {
        const unsigned hardware = std::thread::hardware_concurrency();
        workers = hardware > 1 ? hardware - 1 : 0;
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and no work left.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        OBS_TIMER("threadpool.task_us");
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Shared cursor: each executor claims the next unprocessed index.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto failure = std::make_shared<std::atomic<bool>>(false);
    auto runRange = [n, next, failure, &body] {
        std::size_t i;
        while ((i = next->fetch_add(1)) < n) {
            if (failure->load(std::memory_order_relaxed))
                return; // abandon remaining work after a throw.
            body(i);
        }
    };

    const std::size_t helpers = std::min(workers_.size(), n - 1);
    std::vector<std::future<void>> pending;
    pending.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i)
        pending.push_back(submit(runRange));

    std::exception_ptr error;
    try {
        runRange();
    } catch (...) {
        error = std::current_exception();
        failure->store(true, std::memory_order_relaxed);
    }
    for (std::future<void> &future : pending) {
        try {
            future.get();
        } catch (...) {
            if (!error)
                error = std::current_exception();
            failure->store(true, std::memory_order_relaxed);
        }
    }
    if (error)
        std::rethrow_exception(error);
}

std::size_t
ThreadPool::effectiveThreads(int requested)
{
    if (requested > 0)
        return static_cast<std::size_t>(requested);
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

} // namespace util
} // namespace ceer
