#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "util/random.h"

namespace ceer {
namespace util {

namespace {

/** Identity of the pool worker running the current thread, if any. */
struct WorkerIdentity
{
    ThreadPool *pool = nullptr;
    std::size_t index = 0;
};

thread_local WorkerIdentity tls_worker;

/** Cheap per-thread xorshift step for victim selection. */
inline std::uint64_t
nextRandom(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

} // namespace

// ---------------------------------------------------------------------------
// StealDeque

bool
ThreadPool::StealDeque::push(Task *task)
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    // A stale top only under-reports the free space, never over-
    // reports it, so a full deque is detected conservatively.
    if (b - t > kMask)
        return false;
    // Release so a thief's acquire load of the same slot sees the
    // task's bytes (TSan tracks the edge through the slot atomic).
    slots_[static_cast<std::size_t>(b & kMask)].store(
        task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
}

Task *
ThreadPool::StealDeque::pop()
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // The seq_cst store-then-load on (bottom_, top_) is the Dekker
    // handshake with steal(): either this pop sees the thief's top
    // increment, or the thief sees the reserved bottom.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
        // Empty: undo the reservation.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
    }
    Task *task =
        slots_[static_cast<std::size_t>(b & kMask)].load(
            std::memory_order_relaxed);
    if (t == b) {
        // Last element: race the thieves for it via top_.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst))
            task = nullptr; // a thief won.
        bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
}

Task *
ThreadPool::StealDeque::steal()
{
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
        return nullptr;
    // Read the candidate before the CAS; the value is only trusted if
    // the CAS claims index t (a failed CAS discards it, so a slot
    // being concurrently overwritten by the owner is harmless).
    Task *task = slots_[static_cast<std::size_t>(t & kMask)].load(
        std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_seq_cst))
        return nullptr;
    return task;
}

bool
ThreadPool::StealDeque::looksEmpty() const
{
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Pool lifecycle

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == kAutoWorkers) {
        const unsigned hardware = std::thread::hardware_concurrency();
        workers = hardware > 1 ? hardware - 1 : 0;
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_seq_cst);
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
        parkCv_.notify_all();
    }
    for (std::thread &thread : threads_)
        thread.join();
    // Workers drain every queue before exiting; the loop below only
    // matters for the corner case of tasks enqueued by the last task
    // a worker ran after its peers had already exited (they must
    // still run: a submit() future would otherwise never resolve).
    for (;;) {
        Task *task = nullptr;
        {
            std::lock_guard<std::mutex> lock(injectMutex_);
            if (!inject_.empty()) {
                task = inject_.front();
                inject_.pop_front();
            }
        }
        if (!task) {
            for (const auto &worker : workers_)
                if ((task = worker->deque.steal()) != nullptr)
                    break;
        }
        if (!task)
            break;
        (*task)();
        delete task;
    }
    // Record the final per-worker task distribution while
    // observability is on.
    if (obs::enabled()) {
        for (const auto &worker : workers_)
            OBS_HISTOGRAM_RECORD("pool.worker_tasks",
                                 static_cast<double>(worker->executed));
    }
}

ThreadPool &
ThreadPool::shared()
{
    // Leaked so parked workers never race process teardown; sized to
    // at least one worker so parallel schedules are exercised (and
    // testable) even on a single-core host.
    static ThreadPool *pool = [] {
        const unsigned hardware = std::thread::hardware_concurrency();
        const std::size_t workers =
            hardware > 1 ? static_cast<std::size_t>(hardware - 1) : 1;
        return new ThreadPool(workers);
    }();
    return *pool;
}

std::size_t
ThreadPool::effectiveThreads(int requested)
{
    if (requested > 0)
        return static_cast<std::size_t>(requested);
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

// ---------------------------------------------------------------------------
// Scheduling

void
ThreadPool::enqueue(Task task, std::size_t wakeCount)
{
    OBS_COUNTER_INC("pool.tasks");
    Task *node = new Task(std::move(task));
    const WorkerIdentity &self = tls_worker;
    if (self.pool == this) {
        // Lock-free local push; overflow spills to the injection
        // queue rather than blocking the worker.
        if (!workers_[self.index]->deque.push(node)) {
            std::lock_guard<std::mutex> lock(injectMutex_);
            inject_.push_back(node);
            OBS_GAUGE_SET("pool.queue_depth", inject_.size());
        }
    } else {
        std::lock_guard<std::mutex> lock(injectMutex_);
        inject_.push_back(node);
        OBS_GAUGE_SET("pool.queue_depth", inject_.size());
    }
    if (wakeCount > 0)
        wake(wakeCount);
}

void
ThreadPool::wake(std::size_t count)
{
    // Publish "there is new work" first; parkers announce themselves
    // before re-validating the epoch, so this store-then-load pair
    // can never miss a concurrent parker (Dekker pattern).
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) == 0)
        return; // everyone is busy: no lock, no notify.
    std::lock_guard<std::mutex> lock(parkMutex_);
    if (count == 1)
        parkCv_.notify_one();
    else
        parkCv_.notify_all();
}

bool
ThreadPool::pendingWork()
{
    for (const auto &worker : workers_)
        if (!worker->deque.looksEmpty())
            return true;
    std::lock_guard<std::mutex> lock(injectMutex_);
    return !inject_.empty();
}

Task *
ThreadPool::findTask(std::size_t self, std::uint64_t &rngState)
{
    // 1. Own deque (newest first: better locality for nested jobs).
    if (Task *task = workers_[self]->deque.pop())
        return task;
    // 2. Injection queue.
    {
        std::lock_guard<std::mutex> lock(injectMutex_);
        if (!inject_.empty()) {
            Task *task = inject_.front();
            inject_.pop_front();
            return task;
        }
    }
    // 3. Steal from victims in a random rotation.
    const std::size_t n = workers_.size();
    if (n > 1) {
        const std::size_t start =
            static_cast<std::size_t>(nextRandom(rngState) % n);
        for (std::size_t hop = 0; hop < n; ++hop) {
            const std::size_t victim = (start + hop) % n;
            if (victim == self)
                continue;
            if (Task *task = workers_[victim]->deque.steal()) {
                OBS_COUNTER_INC("pool.steals");
                return task;
            }
        }
    }
    return nullptr;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tls_worker.pool = this;
    tls_worker.index = index;
    Worker &me = *workers_[index];
    std::uint64_t rngState = hashMix(0x9E3779B97F4A7C15ull, index + 1);

    // Cached per-worker latency histogram (the OBS_* macros cache per
    // call site, which would alias every worker onto one histogram).
    obs::Histogram *myTaskUs = nullptr;

    for (;;) {
        Task *task = findTask(index, rngState);
        if (task) {
            OBS_TIMER("pool.task_us");
            if (obs::enabled()) {
                if (myTaskUs == nullptr)
                    myTaskUs = &obs::histogram(
                        "pool.worker" + std::to_string(index) +
                        ".task_us");
                obs::ScopedTimer timer(*myTaskUs);
                (*task)();
            } else {
                (*task)();
            }
            delete task;
            ++me.executed;
            continue;
        }

        // Nothing anywhere: spin briefly (work often arrives in
        // bursts), then park on the eventcount.
        bool found = false;
        for (int spin = 0; spin < 2 && !found; ++spin) {
            std::this_thread::yield();
            found = pendingWork();
        }
        if (found)
            continue;
        if (stop_.load(std::memory_order_acquire))
            return;

        std::chrono::steady_clock::time_point parkStart;
        const bool timing = obs::enabled();
        bool parkedForReal = false;
        if (timing)
            parkStart = std::chrono::steady_clock::now();
        {
            std::unique_lock<std::mutex> lock(parkMutex_);
            // Eventcount prepare-wait: announce, snapshot the epoch,
            // THEN re-validate the queues. The snapshot-before-scan
            // order is what closes the lost-wakeup window: for any
            // enqueue racing with this park, either its epoch bump is
            // ordered after `seen` (the wait predicate fires without a
            // notify), or the bump is ordered before `seen` — in which
            // case reading the bumped epoch synchronizes-with the
            // enqueuer, its push happens-before the scan below, and we
            // bail out instead of sleeping on a queued task.
            parked_.fetch_add(1, std::memory_order_seq_cst);
            const std::uint64_t seen =
                epoch_.load(std::memory_order_seq_cst);
            if (pendingWork() ||
                stop_.load(std::memory_order_acquire)) {
                parked_.fetch_sub(1, std::memory_order_seq_cst);
            } else {
                parkedForReal = true;
                OBS_COUNTER_INC("pool.parks");
                parkCv_.wait(lock, [&] {
                    return epoch_.load(std::memory_order_seq_cst) !=
                               seen ||
                           stop_.load(std::memory_order_acquire);
                });
                parked_.fetch_sub(1, std::memory_order_seq_cst);
            }
        }
        if (timing && parkedForReal) {
            const double parkedUs =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - parkStart)
                    .count();
            OBS_HISTOGRAM_RECORD("pool.park_us", parkedUs);
        }
    }
}

// ---------------------------------------------------------------------------
// parallelFor

namespace {

/** Shared state of one parallelForRange() call. */
struct ParallelJob
{
    std::size_t n = 0;
    void (*invoke)(void *, std::size_t, std::size_t) = nullptr;
    void *ctx = nullptr;

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> grain{0}; ///< 0 = probing.
    std::size_t probeItems = 1;
    std::size_t minGrain = 1;
    std::size_t maxGrain = 0; ///< 0 = uncapped.

    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr error;

    /** Executors currently inside run() — the caller waits for 0. */
    std::atomic<int> active{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;

    std::size_t clampGrain(double items) const
    {
        std::size_t grainItems =
            items < 1.0 ? 1
                        : static_cast<std::size_t>(items);
        if (maxGrain > 0)
            grainItems = std::min(grainItems, maxGrain);
        return std::max(grainItems, minGrain);
    }

    /**
     * Claims and runs chunks until the range is exhausted or another
     * executor failed. Safe to call after the owning parallelForRange
     * returned (late-started helpers see the exhausted cursor and
     * never touch invoke/ctx).
     */
    void run()
    {
        active.fetch_add(1, std::memory_order_acq_rel);
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                break; // abandon remaining chunks after a throw.
            const std::size_t g =
                grain.load(std::memory_order_acquire);
            const std::size_t take = g > 0 ? g : probeItems;
            const std::size_t lo =
                cursor.fetch_add(take, std::memory_order_relaxed);
            if (lo >= n)
                break;
            const std::size_t hi = std::min(lo + take, n);
            try {
                if (g > 0) {
                    invoke(ctx, lo, hi);
                } else {
                    // Probe: time this chunk and derive the grain
                    // from the measured per-item cost. First
                    // publication wins; the measurement is functional
                    // (not gated on observability) but never feeds
                    // into the body's results, only into scheduling.
                    const auto start =
                        std::chrono::steady_clock::now();
                    invoke(ctx, lo, hi);
                    const double chunkUs =
                        std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
                    const double itemUs = std::max(
                        chunkUs / static_cast<double>(hi - lo), 1e-4);
                    const std::size_t measured = clampGrain(
                        ThreadPool::kTargetChunkUs / itemUs);
                    std::size_t expected = 0;
                    if (grain.compare_exchange_strong(
                            expected, measured,
                            std::memory_order_acq_rel))
                        OBS_GAUGE_SET("pool.grain",
                                      static_cast<double>(measured));
                }
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                // Exhaust the cursor so late-starting helpers are
                // gated by their claim fetch_add — an RMW that always
                // observes this advance — rather than by the relaxed
                // `failed` flag, whose stale value could otherwise let
                // a helper claim lo < n after the caller has rethrown
                // and destroyed the frame behind invoke/ctx.
                std::size_t cur =
                    cursor.load(std::memory_order_relaxed);
                while (cur < n &&
                       !cursor.compare_exchange_weak(
                           cur, n, std::memory_order_seq_cst,
                           std::memory_order_relaxed)) {
                }
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                break;
            }
        }
        if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(doneMutex);
            doneCv.notify_all();
        }
    }
};

} // namespace

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    parallelForRange(n, ParallelOptions{},
                     [&body](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i)
                             body(i);
                     });
}

void
ThreadPool::parallelForRangeImpl(std::size_t n,
                                 const ParallelOptions &options,
                                 void (*invoke)(void *, std::size_t,
                                                std::size_t),
                                 void *ctx)
{
    if (n == 0)
        return;
    const std::size_t minGrain = std::max<std::size_t>(
        options.minGrain, 1);

    std::size_t executors = workers_.size() + 1;
    if (options.maxThreads > 0)
        executors = std::min(executors, options.maxThreads);
    // No point spawning helpers that could never claim a chunk.
    executors = std::min(executors, (n + minGrain - 1) / minGrain);

    if (executors <= 1) {
        invoke(ctx, 0, n);
        return;
    }

    auto job = std::make_shared<ParallelJob>();
    job->n = n;
    job->invoke = invoke;
    job->ctx = ctx;
    job->minGrain = minGrain;
    // Bound every grain decision — static hint and measured probe
    // alike — so each executor still sees several chunks for load
    // balance (minGrain stays a hard floor via clampGrain).
    const std::size_t balance =
        std::max<std::size_t>(1, n / (executors * 4));
    job->maxGrain = options.maxGrain > 0
                        ? std::min(options.maxGrain, balance)
                        : balance;
    job->probeItems = minGrain;
    if (options.costHintUs > 0.0) {
        const std::size_t grain =
            job->clampGrain(kTargetChunkUs / options.costHintUs);
        job->grain.store(grain, std::memory_order_relaxed);
        OBS_GAUGE_SET("pool.grain", static_cast<double>(grain));
    }

    // Enqueue every helper first, then wake once for the whole batch
    // (waking per enqueue would thundering-herd the parked workers).
    const std::size_t helpers = executors - 1;
    for (std::size_t i = 0; i < helpers; ++i)
        enqueue(Task([job] { job->run(); }), 0);
    wake(helpers);

    job->run();

    // Wait until no helper is inside run(). Helpers that were never
    // scheduled will see the exhausted cursor later and exit without
    // touching the (by then dead) caller frame; the job outlives them
    // via shared_ptr.
    if (job->active.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(job->doneMutex);
        job->doneCv.wait(lock, [&] {
            return job->active.load(std::memory_order_acquire) == 0;
        });
    }
    if (job->failed.load(std::memory_order_acquire)) {
        // Take ownership of the exception before rethrowing: a
        // straggler helper may drop the job's last reference on a
        // worker thread much later, and it must not be the one to
        // destroy the exception object the caller is still examining.
        std::exception_ptr error;
        {
            std::lock_guard<std::mutex> lock(job->errorMutex);
            std::swap(error, job->error);
        }
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace util
} // namespace ceer
