/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the hardware/training simulator flows through
 * Rng so that experiments are reproducible given a seed. The generator is
 * xoshiro256**, seeded via SplitMix64, which is fast and has no observable
 * bias for our purposes (noise factors and straggler draws).
 */

#ifndef CEER_UTIL_RANDOM_H
#define CEER_UTIL_RANDOM_H

#include <cstdint>
#include <string>

namespace ceer {
namespace util {

/**
 * SplitMix64 step; used for seeding and for cheap stateless hashing of
 * (seed, stream) pairs into independent generator states.
 *
 * @param state In/out 64-bit state, advanced by one step.
 * @return Next 64-bit output.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Mixes @p value into @p seed with a SplitMix64 avalanche step.
 *
 * Order-sensitive and collision-resistant for our purposes; used to
 * derive independent per-run seeds from structured keys such as
 * (base seed, model name, GPU, replica count) without any dependence
 * on iteration order.
 */
std::uint64_t hashMix(std::uint64_t seed, std::uint64_t value);

/** Mixes a string into @p seed (length-prefixed, byte by byte). */
std::uint64_t hashMix(std::uint64_t seed, const std::string &text);

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Not thread-safe; each simulated device owns its own Rng.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed (SplitMix64 expanded). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /**
     * Constructs an independent stream for (seed, stream).
     *
     * Distinct stream ids yield decorrelated sequences for the same seed,
     * which we use to give every simulated GPU its own stream.
     */
    Rng(std::uint64_t seed, std::uint64_t stream);

    /** Returns the next raw 64-bit output. */
    std::uint64_t next();

    /** Returns a double uniformly distributed in [0, 1). */
    double uniform();

    /** Returns a double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /** Returns an integer uniformly distributed in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Returns a standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** Returns a normal deviate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /**
     * Returns a lognormal multiplicative-noise factor with unit median.
     *
     * exp(N(0, sigma)); sigma is the shape parameter. Used to model
     * run-to-run compute-time variability.
     */
    double lognormalFactor(double sigma);

    /** Returns an exponential deviate with the given mean. */
    double exponential(double mean);

    /**
     * Returns a Gamma(shape k, scale theta) deviate.
     *
     * Marsaglia-Tsang for k >= 1, boosting for k < 1. Used for
     * heavy-tailed CPU-operation time variability.
     */
    double gamma(double shape, double scale);

  private:
    std::uint64_t state_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_RANDOM_H
