/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Two families of generators live here:
 *
 * - Rng: a stateful xoshiro256** stream (seeded via SplitMix64) with
 *   convenience distributions, for call sites that walk a sequence.
 * - Counter-based draws (uniformFromKey / normalFromKey): pure
 *   functions of a 64-bit key built with hashMix. Every sample is
 *   independent of execution order, which is what lets the simulator
 *   batch its sampling kernel and fan iterations out across threads
 *   while staying bit-deterministic.
 */

#ifndef CEER_UTIL_RANDOM_H
#define CEER_UTIL_RANDOM_H

#include <cstdint>
#include <string>

namespace ceer {
namespace util {

/**
 * SplitMix64 step; used for seeding and for cheap stateless hashing of
 * (seed, stream) pairs into independent generator states.
 *
 * @param state In/out 64-bit state, advanced by one step.
 * @return Next 64-bit output.
 */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/**
 * Mixes @p value into @p seed with a SplitMix64 avalanche step.
 *
 * Order-sensitive and collision-resistant for our purposes; used to
 * derive independent per-run seeds from structured keys such as
 * (base seed, model name, GPU, replica count) without any dependence
 * on iteration order. The output is also the unit of counter-based
 * sampling: feed it to uniformFromBits/normalFromKey for a draw that
 * is a pure function of the key.
 */
inline std::uint64_t
hashMix(std::uint64_t seed, std::uint64_t value)
{
    std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ull + value);
    return splitMix64(state);
}

/** Mixes a string into @p seed (length-prefixed, byte by byte). */
std::uint64_t hashMix(std::uint64_t seed, const std::string &text);

/**
 * Maps 64 random bits to a double uniformly distributed in (0, 1).
 *
 * The open interval (never exactly 0 or 1) makes the result safe as a
 * probability for inverseNormalCdf and as a log() argument.
 */
inline double
uniformFromBits(std::uint64_t bits)
{
    // 53 high bits, centered on the half-ulp so 0 and 1 are excluded.
    return (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
}

/** Uniform double in (0, 1) as a pure function of @p key. */
inline double
uniformFromKey(std::uint64_t key)
{
    return uniformFromBits(hashMix(key, 0x5EEDED));
}

/// Branch point of the inverse-normal-CDF approximation: probabilities
/// in [kInverseNormalCdfLow, 1 - kInverseNormalCdfLow] (~95% of
/// uniform draws) take the polynomial-only central branch.
constexpr double kInverseNormalCdfLow = 0.02425;

/**
 * Central branch of Acklam's inverse-normal-CDF approximation.
 *
 * Valid for q = p - 0.5 with |q| <= 0.5 - kInverseNormalCdfLow and
 * r = q * q. Pure rational-polynomial arithmetic — no transcendental
 * calls, no branches — so block evaluations autovectorize; this is
 * what makes counter-based normal generation cheaper than a stateful
 * Box-Muller walk.
 */
inline double
inverseNormalCdfCentral(double q, double r)
{
    return (((((-3.969683028665376e+01 * r + 2.209460984245205e+02) *
                   r -
               2.759285104469687e+02) *
                  r +
              1.383577518672690e+02) *
                 r -
             3.066479806614716e+01) *
                r +
            2.506628277459239e+00) *
           q /
           (((((-5.447609879822406e+01 * r + 1.615858368580409e+02) *
                   r -
               1.556989798598866e+02) *
                  r +
              6.680131188771972e+01) *
                 r -
             1.328068155288572e+01) *
                r +
            1.0);
}

/**
 * Tail branch of Acklam's approximation, for p < kInverseNormalCdfLow
 * or p > 1 - kInverseNormalCdfLow (defined out-of-line; it needs
 * log/sqrt and runs for ~5% of uniform draws).
 */
double inverseNormalCdfTail(double p);

/**
 * Inverse of the standard normal CDF (quantile function).
 *
 * Acklam's rational approximation: relative error < 1.2e-9 over all of
 * (0, 1), which is far below the sampling noise of any study in this
 * repo. Panics outside (0, 1).
 */
double inverseNormalCdf(double p);

/** Standard normal deviate as a pure function of @p key. */
inline double
normalFromKey(std::uint64_t key)
{
    return inverseNormalCdf(uniformFromBits(hashMix(key, 0x90125)));
}

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Not thread-safe; each simulated device owns its own Rng.
 *
 * Sequence coupling: normal() computes Box-Muller deviates in pairs
 * and caches the second one across calls (see normal() below), so the
 * mapping from "n-th call of a given distribution" to underlying
 * xoshiro outputs depends on the full call history. Two Rngs with the
 * same seed only stay in lockstep if they receive the *same sequence*
 * of method calls; interleaving an extra draw shifts every later value
 * of the other distributions. Pinned by
 * RngTest.NormalCachingCouplesTheSequence.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed (SplitMix64 expanded). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /**
     * Constructs an independent stream for (seed, stream).
     *
     * Distinct stream ids yield decorrelated sequences for the same seed,
     * which we use to give every simulated GPU its own stream.
     */
    Rng(std::uint64_t seed, std::uint64_t stream);

    /** Returns the next raw 64-bit output. */
    std::uint64_t next();

    /** Returns a double uniformly distributed in [0, 1). */
    double uniform();

    /** Returns a double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /** Returns an integer uniformly distributed in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /**
     * Returns a standard normal deviate.
     *
     * Box-Muller generates deviates in pairs: every *odd* call draws
     * two uniforms and computes both deviates, returning one and
     * caching the other; every *even* call returns the cached deviate
     * and consumes **no** generator state. Consequence: the value
     * returned by an even call is fixed once the preceding odd call
     * ran — draws of other distributions interleaved between them do
     * not affect it, but they do shift everything after the pair.
     * Callers that need order-independent samples should use the
     * counter-based normalFromKey instead.
     */
    double normal();

    /** Returns a normal deviate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /**
     * Returns a lognormal multiplicative-noise factor with unit median.
     *
     * exp(N(0, sigma)); sigma is the shape parameter. Used to model
     * run-to-run compute-time variability.
     */
    double lognormalFactor(double sigma);

    /** Returns an exponential deviate with the given mean. */
    double exponential(double mean);

    /**
     * Returns a Gamma(shape k, scale theta) deviate.
     *
     * Marsaglia-Tsang for k >= 1, boosting for k < 1. Used for
     * heavy-tailed CPU-operation time variability.
     */
    double gamma(double shape, double scale);

  private:
    std::uint64_t state_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_RANDOM_H
