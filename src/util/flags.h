/**
 * @file
 * Tiny command-line flag parser for bench and example binaries.
 *
 * Supports `--name value` and `--name=value` forms plus boolean
 * `--name` switches (which also accept a separate `true`/`false`
 * token). A literal `--` ends flag parsing; everything after it is
 * positional. Unknown flags are fatal so typos do not silently
 * change an experiment.
 */

#ifndef CEER_UTIL_FLAGS_H
#define CEER_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ceer {
namespace util {

/** Declarative flag set parsed from argv. */
class Flags
{
  public:
    /** Declares an integer flag with a default and help text. */
    void defineInt(const std::string &name, std::int64_t default_value,
                   const std::string &help);

    /** Declares a floating-point flag. */
    void defineDouble(const std::string &name, double default_value,
                      const std::string &help);

    /** Declares a string flag. */
    void defineString(const std::string &name,
                      const std::string &default_value,
                      const std::string &help);

    /** Declares a boolean switch (false unless present). */
    void defineBool(const std::string &name, bool default_value,
                    const std::string &help);

    /**
     * Parses argv; exits with usage text on `--help` and fatals on
     * unknown flags or malformed values.
     */
    void parse(int argc, char **argv);

    /** Returns the value of a declared integer flag. */
    std::int64_t getInt(const std::string &name) const;

    /** Returns the value of a declared double flag. */
    double getDouble(const std::string &name) const;

    /** Returns the value of a declared string flag. */
    std::string getString(const std::string &name) const;

    /** Returns the value of a declared boolean flag. */
    bool getBool(const std::string &name) const;

    /** Positional (non-flag) arguments in order of appearance. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Renders usage text for --help. */
    std::string usage(const std::string &program) const;

  private:
    enum class Kind { Int, Double, String, Bool };

    struct Flag
    {
        Kind kind;
        std::string value;
        std::string defaultValue;
        std::string help;
    };

    const Flag &lookup(const std::string &name, Kind kind) const;

    std::map<std::string, Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace ceer

#endif // CEER_UTIL_FLAGS_H
