#include "util/parse.h"

#include <charconv>
#include <system_error>

namespace ceer {
namespace util {

namespace {

/**
 * std::from_chars does not accept a leading '+', but historical inputs
 * (hand-edited flag values, third-party CSVs) may carry one; skip a
 * single leading plus when it precedes more characters.
 */
const char *
skipLeadingPlus(const char *first, const char *last)
{
    if (first != last && *first == '+' && first + 1 != last)
        return first + 1;
    return first;
}

} // namespace

ParseResult<double>
parseDouble(const std::string &text)
{
    ParseResult<double> result;
    if (text.empty()) {
        result.error = "empty field";
        return result;
    }
    const char *first = text.data();
    const char *last = text.data() + text.size();
    first = skipLeadingPlus(first, last);
    const auto [ptr, ec] =
        std::from_chars(first, last, result.value,
                        std::chars_format::general);
    if (ec == std::errc::result_out_of_range) {
        result.error = "number out of range for double";
        return result;
    }
    if (ec != std::errc() || ptr != last) {
        result.error = "not a number";
        return result;
    }
    return result;
}

ParseResult<std::int64_t>
parseInt64(const std::string &text)
{
    ParseResult<std::int64_t> result;
    if (text.empty()) {
        result.error = "empty field";
        return result;
    }
    const char *first = text.data();
    const char *last = text.data() + text.size();
    first = skipLeadingPlus(first, last);
    const auto [ptr, ec] = std::from_chars(first, last, result.value, 10);
    if (ec == std::errc::result_out_of_range) {
        result.error = "integer out of range";
        return result;
    }
    if (ec != std::errc() || ptr != last) {
        result.error = "not an integer";
        return result;
    }
    return result;
}

ParseResult<std::size_t>
parseSize(const std::string &text)
{
    ParseResult<std::size_t> result;
    if (text.empty()) {
        result.error = "empty field";
        return result;
    }
    const char *first = text.data();
    const char *last = text.data() + text.size();
    first = skipLeadingPlus(first, last);
    if (first != last && *first == '-') {
        result.error = "negative count";
        return result;
    }
    std::uint64_t wide = 0;
    const auto [ptr, ec] = std::from_chars(first, last, wide, 10);
    if (ec == std::errc::result_out_of_range) {
        result.error = "count out of range";
        return result;
    }
    if (ec != std::errc() || ptr != last) {
        result.error = "not a count";
        return result;
    }
    result.value = static_cast<std::size_t>(wide);
    return result;
}

} // namespace util
} // namespace ceer
