#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ceer {
namespace util {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    for (;;) {
        const auto pos = text.find(delim, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
join(const std::vector<std::string> &parts, const std::string &delim)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += delim;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
toLower(std::string text)
{
    for (auto &c : text)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return text;
}

std::string
humanBytes(double bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int unit = 0;
    while (bytes >= 1000.0 && unit < 4) {
        bytes /= 1000.0;
        ++unit;
    }
    return format("%.1f%s", bytes, units[unit]);
}

std::string
humanMicros(double micros)
{
    if (micros < 1e3)
        return format("%.1fus", micros);
    if (micros < 1e6)
        return format("%.2fms", micros / 1e3);
    const double seconds = micros / 1e6;
    if (seconds < 60.0)
        return format("%.2fs", seconds);
    if (seconds < 3600.0)
        return format("%.1fmin", seconds / 60.0);
    return format("%.2fh", seconds / 3600.0);
}

} // namespace util
} // namespace ceer
