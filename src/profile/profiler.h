/**
 * @file
 * Operation-level profiler: aggregates per-instance compute-time
 * statistics over many simulated training iterations, reproducing the
 * paper's empirical-study methodology (Sec. III: 1,000 iterations per
 * CNN per GPU, statistics per {operation, input size} pair).
 */

#ifndef CEER_PROFILE_PROFILER_H
#define CEER_PROFILE_PROFILER_H

#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "hw/gpu_spec.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace ceer {

namespace io {
class CbfFile;
}

namespace profile {

/**
 * Aggregated timings of one {op type, input sizes} instance within one
 * (CNN, GPU) profiling run.
 */
struct OpProfile
{
    std::string model;            ///< CNN name.
    hw::GpuModel gpu;             ///< GPU the run executed on.
    graph::OpType op;             ///< Operation type.
    bool onCpu = false;           ///< Device placement.
    std::vector<double> features; ///< Input-size features (bytes).
    std::size_t occurrences = 0;  ///< Graph nodes mapping to this entry.
    util::RunningStats timeUs;    ///< Per-execution compute times.
    util::SampleReservoir samples{64}; ///< Bounded samples for medians.

    /** Total input bytes (features[0]). */
    double inputBytes() const
    {
        return features.empty() ? 0.0 : features[0];
    }
};

/**
 * Per-(CNN, GPU, numGpus) run-level aggregate used to train and
 * validate the communication model.
 */
struct IterationProfile
{
    std::string model;            ///< CNN name.
    hw::GpuModel gpu;             ///< GPU model.
    int numGpus = 1;              ///< Data-parallel width.
    std::int64_t paramCount = 0;  ///< Trainable parameters.
    double meanIterationUs = 0.0; ///< Mean per-iteration total time.
    double meanComputeUs = 0.0;   ///< Mean compute part.
    double meanCommUs = 0.0;      ///< Mean comm part ("GPU logs").
};

/**
 * Observer that buckets op executions by instance key.
 *
 * Bind one profiler per (graph, run); pass observer() to
 * TrainingSimulator::run.
 */
class Profiler
{
  public:
    /**
     * @param g     Graph being profiled (must outlive the profiler).
     * @param model CNN name recorded into profiles.
     * @param gpu   GPU model recorded into profiles.
     */
    Profiler(const graph::Graph &g, std::string model, hw::GpuModel gpu);

    /** Records one execution of @p node. */
    void observe(const graph::Node &node, double time_us);

    /** Adapter for TrainingSimulator. */
    sim::OpObserver
    observer()
    {
        return [this](const graph::Node &node, double t) {
            observe(node, t);
        };
    }

    /** Finished per-instance profiles (moves them out). */
    std::vector<OpProfile> takeProfiles();

  private:
    const graph::Graph *graph_;
    std::string model_;
    hw::GpuModel gpu_;
    /// node id -> index into profiles_ (instances are shared between
    /// identical nodes).
    std::vector<std::size_t> nodeToProfile_;
    std::vector<OpProfile> profiles_;
};

/**
 * The paper's operation-level dataset: profiles across CNNs x GPUs.
 *
 * Lookups by (GPU, op type) are served from an index maintained on
 * insertion, so the nested (GPU x heavy op) loops in core::trainCeer
 * avoid repeated O(N) scans over the whole dataset.
 */
class ProfileDataset
{
  public:
    /** Appends profiles from one run. */
    void add(std::vector<OpProfile> profiles);

    /** Appends one run-level iteration profile. */
    void addIteration(const IterationProfile &profile);

    /** All op profiles. */
    const std::vector<OpProfile> &ops() const { return ops_; }

    /** All iteration profiles. */
    const std::vector<IterationProfile> &iterations() const
    {
        return iterations_;
    }

    /** Op profiles for one GPU model, in insertion order. */
    std::vector<const OpProfile *> opsFor(hw::GpuModel gpu) const;

    /** Op profiles for one (GPU, op type), in insertion order. */
    std::vector<const OpProfile *> opsFor(hw::GpuModel gpu,
                                          graph::OpType op) const;

    /** Mean compute time of @p op on @p gpu over all instances. */
    double meanTimeUs(hw::GpuModel gpu, graph::OpType op) const;

    /** Distinct op types present for @p gpu. */
    std::vector<graph::OpType> opTypes(hw::GpuModel gpu) const;

    /**
     * Serializes the dataset to CSV: one "op" row per instance plus
     * one "iter" row per run-level profile, so a saved dataset can be
     * reloaded and used to train the full Ceer model (including the
     * communication fits).
     */
    void saveCsv(std::ostream &out) const;

    /** Parses a dataset written by saveCsv; fatal on malformed input. */
    static ProfileDataset loadCsv(std::istream &in);

    /**
     * Exception-free variant of loadCsv().
     *
     * Used by the on-disk profile cache, where any malformed byte —
     * truncated row, garbled number, broken quoting — must degrade to
     * a cache miss (re-profile) rather than terminate the process.
     *
     * @param in      Input stream.
     * @param dataset Receives the parsed dataset on success.
     * @param error   Receives a "row N column M ..." description on
     *                failure.
     * @return True on success.
     */
    static bool tryLoadCsv(std::istream &in, ProfileDataset *dataset,
                           std::string *error);

    /**
     * Serializes the dataset as CBF (docs/file_formats.md).
     *
     * Unlike the CSV dialect — which stores rounded (count, mean,
     * stddev) triples and reconstructs approximate moments on load —
     * CBF stores the exact internal state of every accumulator (raw
     * IEEE-754 moment bits, reservoir samples plus RNG state), so a
     * CBF round-trip is bit-exact.
     */
    void saveCbf(std::ostream &out) const;

    /** Parses a validated CBF file produced by saveCbf(). */
    static bool tryLoadCbf(const io::CbfFile &file,
                           ProfileDataset *dataset, std::string *error);

    /**
     * Loads @p path in either format, sniffed by magic bytes: CBF
     * files take the mmap zero-copy path (falling back to the checked
     * streaming reader when mapping fails), anything else parses as
     * the CSV dialect. @p dataset is untouched on failure.
     */
    static bool tryLoadFile(const std::string &path,
                            ProfileDataset *dataset, std::string *error);

    /** tryLoadFile(), fatal on failure. */
    static ProfileDataset loadFile(const std::string &path);

  private:
    std::vector<OpProfile> ops_;
    std::vector<IterationProfile> iterations_;
    /// (gpu, op) -> indices into ops_, in insertion order.
    std::map<std::pair<hw::GpuModel, graph::OpType>,
             std::vector<std::size_t>>
        opIndex_;
    /// gpu -> indices into ops_, in insertion order.
    std::map<hw::GpuModel, std::vector<std::size_t>> gpuIndex_;
};

/**
 * Profiles one CNN on one GPU configuration.
 *
 * @param g          Training graph.
 * @param model_name CNN name for the records.
 * @param config     Simulated deployment.
 * @param iterations Training iterations to simulate.
 * @return Op profiles (replica 0) and the run-level aggregate.
 */
std::pair<std::vector<OpProfile>, IterationProfile>
profileRun(const graph::Graph &g, const std::string &model_name,
           const sim::SimConfig &config, int iterations);

/** Options for collectProfiles(). */
struct CollectOptions
{
    std::int64_t batch = 32;     ///< Per-GPU batch size.
    int iterations = 200;        ///< Iterations per (CNN, GPU) run.
    std::uint64_t seed = 42;     ///< Base RNG seed.
    int maxGpus = 4;             ///< Collect k = 1..maxGpus run levels.
    bool multiGpuRuns = true;    ///< Also run k > 1 for the comm model.
    int gpusPerHost = 8;         ///< Topology of the profiled runs.
    /**
     * Worker threads for the profiling sweep (0 = one per hardware
     * thread). The collected dataset is bit-identical for every value:
     * each (CNN, GPU, k) run seeds its own RNG from runSeed() and
     * results merge in canonical order.
     */
    int threads = 0;
};

/**
 * Deterministic per-run seed for one (CNN, GPU, k) profiling run.
 *
 * A hash-mix of the base seed and the run's identity, so the seed does
 * not depend on sweep iteration order (the historical
 * `seed + 1000 * run_index` scheme did, and could collide across base
 * seeds).
 */
std::uint64_t runSeed(std::uint64_t base_seed, const std::string &model,
                      hw::GpuModel gpu, int num_gpus);

/**
 * Runs the paper's empirical study: profiles every named CNN on all
 * four GPU models (op level at k=1; run level at k=1..maxGpus).
 *
 * Runs are independent tasks executed on a thread pool
 * (options.threads); the result is identical regardless of thread
 * count or schedule.
 */
ProfileDataset collectProfiles(const std::vector<std::string> &models,
                               const CollectOptions &options);

} // namespace profile
} // namespace ceer

#endif // CEER_PROFILE_PROFILER_H
