#include "profile/profiler.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>

#include "io/cbf.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "profile/features.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/random.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ceer {
namespace profile {

using graph::Device;
using graph::Graph;
using graph::Node;
using graph::OpType;

Profiler::Profiler(const Graph &g, std::string model, hw::GpuModel gpu)
    : graph_(&g), model_(std::move(model)), gpu_(gpu)
{
    // Pre-bucket nodes by instance key so observe() is an array index.
    std::map<std::string, std::size_t> index;
    nodeToProfile_.reserve(g.size());
    for (const Node &node : g.nodes()) {
        const std::string key = opInstanceKey(node);
        auto it = index.find(key);
        if (it == index.end()) {
            OpProfile profile;
            profile.model = model_;
            profile.gpu = gpu_;
            profile.op = node.type;
            profile.onCpu = node.device() == Device::Cpu;
            profile.features = opFeatures(node);
            it = index.emplace(key, profiles_.size()).first;
            profiles_.push_back(std::move(profile));
        }
        profiles_[it->second].occurrences++;
        nodeToProfile_.push_back(it->second);
    }
}

void
Profiler::observe(const Node &node, double time_us)
{
    OpProfile &profile =
        profiles_[nodeToProfile_[static_cast<std::size_t>(node.id)]];
    profile.timeUs.add(time_us);
    profile.samples.add(time_us);
}

std::vector<OpProfile>
Profiler::takeProfiles()
{
    return std::move(profiles_);
}

void
ProfileDataset::add(std::vector<OpProfile> profiles)
{
    for (auto &profile : profiles) {
        const std::size_t index = ops_.size();
        opIndex_[{profile.gpu, profile.op}].push_back(index);
        gpuIndex_[profile.gpu].push_back(index);
        ops_.push_back(std::move(profile));
    }
}

void
ProfileDataset::addIteration(const IterationProfile &profile)
{
    iterations_.push_back(profile);
}

std::vector<const OpProfile *>
ProfileDataset::opsFor(hw::GpuModel gpu) const
{
    std::vector<const OpProfile *> out;
    const auto it = gpuIndex_.find(gpu);
    if (it == gpuIndex_.end())
        return out;
    out.reserve(it->second.size());
    for (std::size_t index : it->second)
        out.push_back(&ops_[index]);
    return out;
}

std::vector<const OpProfile *>
ProfileDataset::opsFor(hw::GpuModel gpu, OpType op) const
{
    std::vector<const OpProfile *> out;
    const auto it = opIndex_.find({gpu, op});
    if (it == opIndex_.end())
        return out;
    out.reserve(it->second.size());
    for (std::size_t index : it->second)
        out.push_back(&ops_[index]);
    return out;
}

double
ProfileDataset::meanTimeUs(hw::GpuModel gpu, OpType op) const
{
    // Execution-weighted mean across instances; summing in insertion
    // order matches the historical full-scan result bit for bit.
    const auto it = opIndex_.find({gpu, op});
    if (it == opIndex_.end())
        return 0.0;
    double total = 0.0;
    double count = 0.0;
    for (std::size_t index : it->second) {
        const OpProfile &profile = ops_[index];
        total += profile.timeUs.sum();
        count += static_cast<double>(profile.timeUs.count());
    }
    return count > 0.0 ? total / count : 0.0;
}

std::vector<OpType>
ProfileDataset::opTypes(hw::GpuModel gpu) const
{
    // opIndex_ keys are sorted by (gpu, op), so the slice for one GPU
    // yields op types in the same ascending order the old std::set
    // scan produced.
    std::vector<OpType> out;
    for (auto it = opIndex_.lower_bound({gpu, OpType{}});
         it != opIndex_.end() && it->first.first == gpu; ++it)
        out.push_back(it->first.second);
    return out;
}

void
ProfileDataset::saveCsv(std::ostream &out) const
{
    util::CsvWriter writer(out);
    writer.writeRow({"kind", "model", "gpu", "op", "device",
                     "occurrences", "count", "mean_us", "stddev_us",
                     "features", "samples"});
    for (const auto &run : iterations_) {
        writer.writeRow({
            "iter",
            run.model,
            hw::gpuModelName(run.gpu),
            std::to_string(run.numGpus),
            std::to_string(run.paramCount),
            "",
            "",
            util::format("%.9g", run.meanIterationUs),
            util::format("%.9g", run.meanComputeUs),
            util::format("%.9g", run.meanCommUs),
            "",
        });
    }
    for (const auto &profile : ops_) {
        std::vector<std::string> feature_text;
        for (double f : profile.features)
            feature_text.push_back(util::format("%.17g", f));
        std::vector<std::string> sample_text;
        for (double s : profile.samples.samples())
            sample_text.push_back(util::format("%.6g", s));
        writer.writeRow({
            "op",
            profile.model,
            hw::gpuModelName(profile.gpu),
            graph::opTypeName(profile.op),
            profile.onCpu ? "cpu" : "gpu",
            std::to_string(profile.occurrences),
            std::to_string(profile.timeUs.count()),
            util::format("%.9g", profile.timeUs.mean()),
            util::format("%.9g", profile.timeUs.stddev()),
            util::join(feature_text, ";"),
            util::join(sample_text, ";"),
        });
    }
}

ProfileDataset
ProfileDataset::loadCsv(std::istream &in)
{
    ProfileDataset dataset;
    std::string error;
    if (!tryLoadCsv(in, &dataset, &error))
        util::fatal("ProfileDataset::loadCsv: " + error);
    return dataset;
}

bool
ProfileDataset::tryLoadCsv(std::istream &in, ProfileDataset *dataset,
                           std::string *error)
{
    ProfileDataset parsed;
    std::vector<OpProfile> loaded_ops;
    std::vector<std::vector<std::string>> rows;
    if (!util::tryReadCsv(in, &rows, error))
        return false;
    // Numeric fields are parsed through this helper so every failure
    // reports its (row, column) coordinates plus the column name.
    std::size_t row_no = 0;
    const auto parse_double = [&](const std::string &field,
                                  std::size_t column, const char *name,
                                  double *out) {
        const auto result = util::parseDouble(field);
        if (!result) {
            *error = util::format("row %zu column %zu (%s): %s: '%s'",
                                  row_no, column, name, result.error,
                                  field.c_str());
            return false;
        }
        *out = result.value;
        return true;
    };
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const auto &row = rows[i];
        row_no = i;
        if (row.size() < 11) {
            *error = util::format("row %zu has %zu fields", i,
                                  row.size());
            return false;
        }
        if (row[0] == "iter") {
            IterationProfile run;
            run.model = row[1];
            if (!hw::gpuModelFromName(row[2], run.gpu)) {
                *error = "bad GPU " + row[2];
                return false;
            }
            const auto num_gpus = util::parseInt64(row[3]);
            if (!num_gpus || num_gpus.value < 1) {
                *error = util::format(
                    "row %zu column 4 (num_gpus): bad value '%s'", i,
                    row[3].c_str());
                return false;
            }
            run.numGpus = static_cast<int>(num_gpus.value);
            const auto params = util::parseInt64(row[4]);
            if (!params) {
                *error = util::format(
                    "row %zu column 5 (param_count): %s: '%s'", i,
                    params.error, row[4].c_str());
                return false;
            }
            run.paramCount = params.value;
            if (!parse_double(row[7], 8, "mean_iteration_us",
                              &run.meanIterationUs) ||
                !parse_double(row[8], 9, "mean_compute_us",
                              &run.meanComputeUs) ||
                !parse_double(row[9], 10, "mean_comm_us",
                              &run.meanCommUs))
                return false;
            parsed.iterations_.push_back(std::move(run));
            continue;
        }
        if (row[0] != "op") {
            *error = "unknown row kind '" + row[0] + "'";
            return false;
        }
        OpProfile profile;
        profile.model = row[1];
        if (!hw::gpuModelFromName(row[2], profile.gpu)) {
            *error = "bad GPU " + row[2];
            return false;
        }
        if (!graph::opTypeFromName(row[3], profile.op)) {
            *error = "bad op " + row[3];
            return false;
        }
        profile.onCpu = row[4] == "cpu";
        const auto occurrences = util::parseSize(row[5]);
        if (!occurrences) {
            *error = util::format(
                "row %zu column 6 (occurrences): %s: '%s'", i,
                occurrences.error, row[5].c_str());
            return false;
        }
        profile.occurrences = occurrences.value;
        const auto count_parsed = util::parseSize(row[6]);
        if (!count_parsed) {
            *error = util::format("row %zu column 7 (count): %s: '%s'",
                                  i, count_parsed.error, row[6].c_str());
            return false;
        }
        const std::size_t count = count_parsed.value;
        // The moment reconstruction below loops `count` times; a
        // corrupt count must not turn into a near-infinite loop.
        constexpr std::size_t kMaxPlausibleCount = 100'000'000;
        if (count > kMaxPlausibleCount) {
            *error = util::format(
                "row %zu column 7 (count): implausibly large count "
                "'%s'", i, row[6].c_str());
            return false;
        }
        double mean = 0.0, stddev = 0.0;
        if (!parse_double(row[7], 8, "mean_us", &mean) ||
            !parse_double(row[8], 9, "stddev_us", &stddev))
            return false;
        for (const auto &text : util::split(row[9], ';')) {
            if (text.empty())
                continue;
            double feature = 0.0;
            if (!parse_double(text, 10, "features", &feature))
                return false;
            profile.features.push_back(feature);
        }
        for (const auto &text : util::split(row[10], ';')) {
            if (text.empty())
                continue;
            double sample = 0.0;
            if (!parse_double(text, 11, "samples", &sample))
                return false;
            profile.samples.add(sample);
        }
        // Rebuild approximate RunningStats from (count, mean, stddev):
        // we reconstruct a two-point distribution with those moments.
        if (count == 1) {
            profile.timeUs.add(mean);
        } else if (count > 1) {
            const double half =
                stddev * std::sqrt(static_cast<double>(count - 1) /
                                   static_cast<double>(count));
            for (std::size_t j = 0; j < count; ++j)
                profile.timeUs.add(j % 2 == 0 ? mean + half
                                              : mean - half);
        }
        loaded_ops.push_back(std::move(profile));
    }
    // Route through add() so the (gpu, op) indices are built.
    parsed.add(std::move(loaded_ops));
    *dataset = std::move(parsed);
    return true;
}

void
ProfileDataset::saveCbf(std::ostream &out) const
{
    io::CbfBuilder builder;
    builder.addBytes("schema", "ceer.profiles.v1");

    std::vector<std::string> op_model, op_gpu, op_op;
    std::vector<std::uint8_t> on_cpu;
    std::vector<std::uint64_t> occurrences, time_count, sample_capacity,
        sample_offered, sample_rng;
    std::vector<double> time_mean, time_m2, time_min, time_max;
    std::vector<std::vector<double>> features, samples;
    for (const OpProfile &profile : ops_) {
        op_model.push_back(profile.model);
        op_gpu.push_back(hw::gpuModelName(profile.gpu));
        op_op.push_back(graph::opTypeName(profile.op));
        on_cpu.push_back(profile.onCpu ? 1 : 0);
        occurrences.push_back(profile.occurrences);
        features.push_back(profile.features);
        const bool has_obs = profile.timeUs.count() > 0;
        time_count.push_back(profile.timeUs.count());
        time_mean.push_back(has_obs ? profile.timeUs.mean() : 0.0);
        time_m2.push_back(profile.timeUs.sumSquaredDeviations());
        time_min.push_back(has_obs ? profile.timeUs.min() : 0.0);
        time_max.push_back(has_obs ? profile.timeUs.max() : 0.0);
        samples.push_back(profile.samples.samples());
        sample_capacity.push_back(profile.samples.capacity());
        sample_offered.push_back(profile.samples.offered());
        sample_rng.push_back(profile.samples.rngState());
    }
    io::addStringColumn(&builder, "op.model", op_model);
    io::addStringColumn(&builder, "op.gpu", op_gpu);
    io::addStringColumn(&builder, "op.op", op_op);
    builder.addU8("op.on_cpu", on_cpu);
    builder.addU64("op.occurrences", occurrences);
    io::addF64ListColumn(&builder, "op.features", features);
    builder.addU64("op.time_count", time_count);
    builder.addF64("op.time_mean", time_mean);
    builder.addF64("op.time_m2", time_m2);
    builder.addF64("op.time_min", time_min);
    builder.addF64("op.time_max", time_max);
    io::addF64ListColumn(&builder, "op.samples", samples);
    builder.addU64("op.sample_capacity", sample_capacity);
    builder.addU64("op.sample_offered", sample_offered);
    builder.addU64("op.sample_rng", sample_rng);

    std::vector<std::string> iter_model, iter_gpu;
    std::vector<std::int64_t> iter_gpus, iter_params;
    std::vector<double> iter_us, compute_us, comm_us;
    for (const IterationProfile &run : iterations_) {
        iter_model.push_back(run.model);
        iter_gpu.push_back(hw::gpuModelName(run.gpu));
        iter_gpus.push_back(run.numGpus);
        iter_params.push_back(run.paramCount);
        iter_us.push_back(run.meanIterationUs);
        compute_us.push_back(run.meanComputeUs);
        comm_us.push_back(run.meanCommUs);
    }
    io::addStringColumn(&builder, "iter.model", iter_model);
    io::addStringColumn(&builder, "iter.gpu", iter_gpu);
    builder.addI64("iter.num_gpus", iter_gpus);
    builder.addI64("iter.param_count", iter_params);
    builder.addF64("iter.mean_iteration_us", iter_us);
    builder.addF64("iter.mean_compute_us", compute_us);
    builder.addF64("iter.mean_comm_us", comm_us);

    builder.write(out);
}

bool
ProfileDataset::tryLoadCbf(const io::CbfFile &file,
                           ProfileDataset *dataset, std::string *error)
{
    const char *schema = nullptr;
    std::size_t schema_size = 0;
    if (!file.bytes("schema", &schema, &schema_size, error))
        return false;
    const std::string schema_name(schema, schema_size);
    if (schema_name != "ceer.profiles.v1") {
        *error = "schema '" + schema_name +
                 "' is not ceer.profiles.v1 (wrong container?)";
        return false;
    }

    std::vector<std::string> op_model, op_gpu, op_op;
    if (!io::readStringColumn(file, "op.model", &op_model, error) ||
        !io::readStringColumn(file, "op.gpu", &op_gpu, error) ||
        !io::readStringColumn(file, "op.op", &op_op, error))
        return false;
    const std::size_t op_rows = op_model.size();
    // Every other column must agree with op.model on the row count; a
    // file with mismatched columns is structurally corrupt.
    const auto sized = [&](std::size_t count, std::size_t rows,
                           const char *name) {
        if (count == rows)
            return true;
        *error = util::format("column '%s' has %zu rows, expected %zu",
                              name, count, rows);
        return false;
    };
    const std::uint8_t *on_cpu = nullptr;
    const std::uint64_t *occurrences = nullptr, *time_count = nullptr,
                        *sample_capacity = nullptr,
                        *sample_offered = nullptr, *sample_rng = nullptr;
    const double *time_mean = nullptr, *time_m2 = nullptr,
                 *time_min = nullptr, *time_max = nullptr;
    std::size_t n = 0;
    std::vector<std::vector<double>> features, samples;
    if (!(file.u8("op.on_cpu", &on_cpu, &n, error) &&
          sized(n, op_rows, "op.on_cpu")) ||
        !(file.u64("op.occurrences", &occurrences, &n, error) &&
          sized(n, op_rows, "op.occurrences")) ||
        !(io::readF64ListColumn(file, "op.features", &features, error) &&
          sized(features.size(), op_rows, "op.features")) ||
        !(file.u64("op.time_count", &time_count, &n, error) &&
          sized(n, op_rows, "op.time_count")) ||
        !(file.f64("op.time_mean", &time_mean, &n, error) &&
          sized(n, op_rows, "op.time_mean")) ||
        !(file.f64("op.time_m2", &time_m2, &n, error) &&
          sized(n, op_rows, "op.time_m2")) ||
        !(file.f64("op.time_min", &time_min, &n, error) &&
          sized(n, op_rows, "op.time_min")) ||
        !(file.f64("op.time_max", &time_max, &n, error) &&
          sized(n, op_rows, "op.time_max")) ||
        !(io::readF64ListColumn(file, "op.samples", &samples, error) &&
          sized(samples.size(), op_rows, "op.samples")) ||
        !(file.u64("op.sample_capacity", &sample_capacity, &n, error) &&
          sized(n, op_rows, "op.sample_capacity")) ||
        !(file.u64("op.sample_offered", &sample_offered, &n, error) &&
          sized(n, op_rows, "op.sample_offered")) ||
        !(file.u64("op.sample_rng", &sample_rng, &n, error) &&
          sized(n, op_rows, "op.sample_rng")))
        return false;

    std::vector<OpProfile> loaded_ops;
    loaded_ops.reserve(op_rows);
    for (std::size_t i = 0; i < op_rows; ++i) {
        OpProfile profile;
        profile.model = std::move(op_model[i]);
        if (!hw::gpuModelFromName(op_gpu[i], profile.gpu)) {
            *error = util::format("op row %zu: bad GPU '%s'", i,
                                  op_gpu[i].c_str());
            return false;
        }
        if (!graph::opTypeFromName(op_op[i], profile.op)) {
            *error = util::format("op row %zu: bad op '%s'", i,
                                  op_op[i].c_str());
            return false;
        }
        profile.onCpu = on_cpu[i] != 0;
        profile.occurrences = occurrences[i];
        profile.features = std::move(features[i]);
        profile.timeUs = util::RunningStats::fromState(
            time_count[i], time_mean[i], time_m2[i], time_min[i],
            time_max[i]);
        const std::uint64_t capacity = sample_capacity[i];
        const std::uint64_t offered = sample_offered[i];
        const std::size_t retained = samples[i].size();
        const bool consistent =
            capacity > 0 && (offered <= capacity ? retained == offered
                                                 : retained == capacity);
        if (!consistent) {
            *error = util::format(
                "op row %zu: inconsistent sample reservoir (capacity "
                "%llu, offered %llu, retained %zu)",
                i, static_cast<unsigned long long>(capacity),
                static_cast<unsigned long long>(offered), retained);
            return false;
        }
        profile.samples = util::SampleReservoir::fromState(
            capacity, offered, sample_rng[i], std::move(samples[i]));
        loaded_ops.push_back(std::move(profile));
    }

    std::vector<std::string> iter_model, iter_gpu;
    if (!io::readStringColumn(file, "iter.model", &iter_model, error) ||
        !io::readStringColumn(file, "iter.gpu", &iter_gpu, error))
        return false;
    const std::size_t iter_rows = iter_model.size();
    const std::int64_t *iter_gpus = nullptr, *iter_params = nullptr;
    const double *iter_us = nullptr, *compute_us = nullptr,
                 *comm_us = nullptr;
    if (!(file.i64("iter.num_gpus", &iter_gpus, &n, error) &&
          sized(n, iter_rows, "iter.num_gpus")) ||
        !(file.i64("iter.param_count", &iter_params, &n, error) &&
          sized(n, iter_rows, "iter.param_count")) ||
        !(file.f64("iter.mean_iteration_us", &iter_us, &n, error) &&
          sized(n, iter_rows, "iter.mean_iteration_us")) ||
        !(file.f64("iter.mean_compute_us", &compute_us, &n, error) &&
          sized(n, iter_rows, "iter.mean_compute_us")) ||
        !(file.f64("iter.mean_comm_us", &comm_us, &n, error) &&
          sized(n, iter_rows, "iter.mean_comm_us")) ||
        !sized(iter_gpu.size(), iter_rows, "iter.gpu"))
        return false;

    ProfileDataset parsed;
    parsed.iterations_.reserve(iter_rows);
    for (std::size_t i = 0; i < iter_rows; ++i) {
        IterationProfile run;
        run.model = std::move(iter_model[i]);
        if (!hw::gpuModelFromName(iter_gpu[i], run.gpu)) {
            *error = util::format("iter row %zu: bad GPU '%s'", i,
                                  iter_gpu[i].c_str());
            return false;
        }
        if (iter_gpus[i] < 1) {
            *error = util::format(
                "iter row %zu: bad num_gpus %lld", i,
                static_cast<long long>(iter_gpus[i]));
            return false;
        }
        run.numGpus = static_cast<int>(iter_gpus[i]);
        run.paramCount = iter_params[i];
        run.meanIterationUs = iter_us[i];
        run.meanComputeUs = compute_us[i];
        run.meanCommUs = comm_us[i];
        parsed.iterations_.push_back(std::move(run));
    }

    // Route through add() so the (gpu, op) indices are built.
    parsed.add(std::move(loaded_ops));
    *dataset = std::move(parsed);
    return true;
}

bool
ProfileDataset::tryLoadFile(const std::string &path,
                            ProfileDataset *dataset, std::string *error)
{
    OBS_TIMER("io.load_us");
    io::FileFormat format;
    if (!io::sniffFile(path, &format, error))
        return false;
    if (format == io::FileFormat::Cbf) {
        io::CbfFile file;
        std::string map_error;
        if (!io::CbfFile::tryMap(path, &file, &map_error)) {
            // mmap can fail on exotic filesystems; the streaming
            // reader applies the identical validation.
            if (!io::CbfFile::tryLoad(path, &file, error)) {
                *error = path + ": " + *error;
                return false;
            }
        }
        if (!tryLoadCbf(file, dataset, error)) {
            *error = path + ": " + *error;
            return false;
        }
        return true;
    }
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    if (!tryLoadCsv(in, dataset, error)) {
        *error = path + ": " + *error;
        return false;
    }
    return true;
}

ProfileDataset
ProfileDataset::loadFile(const std::string &path)
{
    ProfileDataset dataset;
    std::string error;
    if (!tryLoadFile(path, &dataset, &error))
        util::fatal("ProfileDataset::loadFile: " + error);
    return dataset;
}

std::pair<std::vector<OpProfile>, IterationProfile>
profileRun(const Graph &g, const std::string &model_name,
           const sim::SimConfig &config, int iterations)
{
    Profiler profiler(g, model_name, config.gpu);
    sim::TrainingSimulator simulator(g, config);
    // Observed runs execute serially and in graph order (the observer
    // contract): parallelism lives one level up, across the sweep's
    // run tasks, so profile datasets stay byte-identical regardless
    // of either thread count.
    const sim::RunStats stats =
        simulator.run(iterations, profiler.observer());

    IterationProfile run;
    run.model = model_name;
    run.gpu = config.gpu;
    run.numGpus = config.numGpus;
    run.paramCount = g.totalParameters();
    run.meanIterationUs = stats.iterationUs.mean();
    run.meanComputeUs = stats.computeUs.mean();
    run.meanCommUs = stats.commUs.mean();
    return {profiler.takeProfiles(), run};
}

std::uint64_t
runSeed(std::uint64_t base_seed, const std::string &model,
        hw::GpuModel gpu, int num_gpus)
{
    std::uint64_t h = util::hashMix(base_seed, 0x43454552ull); // "CEER"
    h = util::hashMix(h, model);
    h = util::hashMix(h, static_cast<std::uint64_t>(gpu));
    h = util::hashMix(h, static_cast<std::uint64_t>(num_gpus));
    return h;
}

namespace {

/** One independent (CNN, GPU, k) profiling run of the sweep. */
struct RunTask
{
    std::size_t modelIndex = 0;
    hw::GpuModel gpu = hw::GpuModel::V100;
    int numGpus = 1;
};

/** What one task produces (op profiles only at k = 1). */
struct RunResult
{
    std::vector<OpProfile> ops;
    IterationProfile run;
};

RunResult
executeRunTask(const Graph &g, const std::string &name,
               const RunTask &task, const CollectOptions &options)
{
    sim::SimConfig config;
    config.gpu = task.gpu;
    config.numGpus = task.numGpus;
    config.gpusPerHost = options.gpusPerHost;
    config.seed = runSeed(options.seed, name, task.gpu, task.numGpus);

    RunResult result;
    if (task.numGpus == 1) {
        auto [profiles, run] =
            profileRun(g, name, config, options.iterations);
        result.ops = std::move(profiles);
        result.run = run;
        return result;
    }
    // k >= 2 is run-level only: op times match the k=1 case by
    // construction (same per-GPU batch), as in the paper.
    sim::TrainingSimulator simulator(g, config);
    const sim::RunStats stats = simulator.run(options.iterations);
    result.run.model = name;
    result.run.gpu = task.gpu;
    result.run.numGpus = task.numGpus;
    result.run.paramCount = g.totalParameters();
    result.run.meanIterationUs = stats.iterationUs.mean();
    result.run.meanComputeUs = stats.computeUs.mean();
    result.run.meanCommUs = stats.commUs.mean();
    return result;
}

} // namespace

ProfileDataset
collectProfiles(const std::vector<std::string> &model_names,
                const CollectOptions &options)
{
    // Enumerate the sweep as independent tasks in canonical order;
    // results merge back in this exact order, so the dataset is
    // bit-identical for any thread count.
    std::vector<RunTask> tasks;
    for (std::size_t m = 0; m < model_names.size(); ++m) {
        for (hw::GpuModel gpu : hw::allGpuModels()) {
            tasks.push_back({m, gpu, 1});
            if (!options.multiGpuRuns)
                continue;
            for (int k = 2; k <= options.maxGpus; ++k)
                tasks.push_back({m, gpu, k});
        }
    }

    // Build each graph once and share it read-only across tasks.
    // consumers() is the only lazily-built Graph cache; pre-warm it so
    // concurrent readers never mutate shared state.
    std::vector<Graph> graphs;
    graphs.reserve(model_names.size());
    for (const auto &name : model_names) {
        graphs.push_back(models::buildModel(name, options.batch));
        graphs.back().consumers();
    }

    std::vector<RunResult> results(tasks.size());
    auto execute = [&](std::size_t i) {
        const RunTask &task = tasks[i];
        // The span name is formatted only when observability is on;
        // recording never feeds back into the run, so the dataset is
        // byte-identical with obs enabled or disabled.
        std::optional<obs::ScopedSpan> span;
        if (obs::enabled())
            span.emplace(util::format(
                             "profile %s %s k=%d",
                             model_names[task.modelIndex].c_str(),
                             hw::gpuModelName(task.gpu).c_str(),
                             task.numGpus),
                         "profile");
        OBS_TIMER("profile.run_us");
        results[i] = executeRunTask(graphs[task.modelIndex],
                                    model_names[task.modelIndex], task,
                                    options);
        OBS_COUNTER_INC("profile.runs");
    };

    const std::size_t threads =
        util::ThreadPool::effectiveThreads(options.threads);
    if (threads <= 1 || tasks.size() <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            execute(i);
    } else {
        // Profiling runs are multi-millisecond tasks: the static cost
        // hint keeps the grain at one run per claim (no batching win
        // to be had), and the shared pool's parked workers make the
        // fan-out cost independent of how often this is called.
        util::ParallelOptions parallel;
        parallel.costHintUs = 2000.0;
        parallel.maxThreads = threads;
        util::ThreadPool::shared().parallelForRange(
            tasks.size(), parallel,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    execute(i);
            });
    }

    ProfileDataset dataset;
    for (RunResult &result : results) {
        if (!result.ops.empty())
            dataset.add(std::move(result.ops));
        dataset.addIteration(result.run);
    }
    for (const auto &name : model_names)
        CEER_LOG(Info) << "profiled " << name << " on "
                       << hw::allGpuModels().size() << " GPU models";
    return dataset;
}

} // namespace profile
} // namespace ceer
