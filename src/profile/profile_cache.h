/**
 * @file
 * Shared on-disk profile cache for the bench suite and tools.
 *
 * Profiling the full training sweep dominates every bench binary's
 * runtime; the cache lets the first binary profile and save, and every
 * later one load in milliseconds. Entries are content-keyed CBF files
 * (ProfileDataset::saveCbf) written atomically (temp + rename) and
 * loaded through the zero-copy mmap path.
 *
 * Failure policy: any malformed cache entry — truncated file, bad
 * magic, flipped checksum bit, short section — is treated as a miss:
 * the entry is deleted and the sweep re-profiles, producing
 * byte-identical output to a cold run. A cache can never make a bench
 * binary crash or give different numbers; at worst it is slow. See
 * docs/file_formats.md.
 */

#ifndef CEER_PROFILE_PROFILE_CACHE_H
#define CEER_PROFILE_PROFILE_CACHE_H

#include <string>
#include <vector>

#include "profile/profiler.h"

namespace ceer {
namespace profile {

/**
 * Cache file path for one profiling configuration, content-keyed by
 * (format version, model set, iterations, batch, seed, multi-GPU sweep
 * shape). Thread count is deliberately excluded: collection is
 * deterministic across thread counts.
 */
std::string cacheEntryPath(const std::string &cache_dir,
                           const std::vector<std::string> &models,
                           const CollectOptions &options);

/**
 * collectProfiles() behind the on-disk cache.
 *
 * Loads the matching entry when present and parseable; otherwise
 * re-profiles (deleting any corrupt entry first) and atomically writes
 * the result back. The CBF encoding stores the exact accumulator
 * state, so cold and warm runs return byte-identical datasets by
 * construction (no reload-after-write needed).
 *
 * @param models    CNNs to profile.
 * @param options   Sweep options.
 * @param cache_dir Cache directory; empty disables caching entirely.
 */
ProfileDataset
collectProfilesCached(const std::vector<std::string> &models,
                      const CollectOptions &options,
                      const std::string &cache_dir);

} // namespace profile
} // namespace ceer

#endif // CEER_PROFILE_PROFILE_CACHE_H
