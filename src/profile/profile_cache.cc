#include "profile/profile_cache.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/strings.h"

namespace ceer {
namespace profile {

std::string
cacheEntryPath(const std::string &cache_dir,
               const std::vector<std::string> &models,
               const CollectOptions &options)
{
    // v2: cache entries switched from CSV to CBF. The version bump
    // (plus the .cbf extension) invalidates stale v1 CSV entries.
    std::uint64_t key = util::hashMix(0, std::string("ceer-profiles-v2"));
    key = util::hashMix(key, models.size());
    for (const std::string &name : models)
        key = util::hashMix(key, name);
    key = util::hashMix(key, static_cast<std::uint64_t>(options.batch));
    key = util::hashMix(key,
                        static_cast<std::uint64_t>(options.iterations));
    key = util::hashMix(key, options.seed);
    key = util::hashMix(key,
                        static_cast<std::uint64_t>(options.maxGpus));
    key = util::hashMix(key, options.multiGpuRuns ? 1u : 0u);
    key = util::hashMix(key,
                        static_cast<std::uint64_t>(options.gpusPerHost));
    return cache_dir + "/" + util::format("profiles-%016llx.cbf",
                                          (unsigned long long)key);
}

ProfileDataset
collectProfilesCached(const std::vector<std::string> &models,
                      const CollectOptions &options,
                      const std::string &cache_dir)
{
    if (cache_dir.empty())
        return collectProfiles(models, options);

    const std::string cache_file =
        cacheEntryPath(cache_dir, models, options);
    if (std::filesystem::exists(cache_file)) {
        ProfileDataset cached;
        std::string parse_error;
        if (ProfileDataset::tryLoadFile(cache_file, &cached,
                                        &parse_error)) {
            OBS_COUNTER_INC("profile.cache.hits");
            CEER_LOG(Info) << "profile cache hit: " << cache_file;
            return cached;
        }
        // Any malformed byte degrades to a miss: drop the entry and
        // fall through to a fresh (re-)profiling run.
        OBS_COUNTER_INC("profile.cache.corrupt");
        CEER_LOG(Warn) << "corrupt profile cache entry ("
                       << (parse_error.empty() ? "unreadable"
                                               : parse_error)
                       << "), re-profiling: " << cache_file;
        std::error_code ec;
        std::filesystem::remove(cache_file, ec);
    }

    OBS_COUNTER_INC("profile.cache.misses");
    ProfileDataset dataset = collectProfiles(models, options);

    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    // Write to a process-unique temp file, then rename: concurrent
    // bench binaries never observe a half-written cache entry, and a
    // failed write (e.g. disk full) leaves nothing behind. CBF stores
    // the exact accumulator state, so the dataset we just collected IS
    // what a warm run will load — no reload-after-write dance like the
    // old CSV cache needed.
    const std::string temp =
        cache_file + "." + std::to_string(::getpid()) + ".tmp";
    std::ofstream out(temp, std::ios::binary);
    if (!out) {
        CEER_LOG(Warn) << "profile cache not writable: " << temp;
        return dataset;
    }
    dataset.saveCbf(out);
    out.close();
    if (!out.good()) {
        std::filesystem::remove(temp, ec);
        CEER_LOG(Warn) << "profile cache write failed: " << temp;
        return dataset;
    }
    std::filesystem::rename(temp, cache_file, ec);
    if (ec) {
        std::filesystem::remove(temp, ec);
        return dataset;
    }
    OBS_COUNTER_INC("profile.cache.writes");
    CEER_LOG(Info) << "profile cache write: " << cache_file;
    return dataset;
}

} // namespace profile
} // namespace ceer
