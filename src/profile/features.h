/**
 * @file
 * Input-size feature extraction for compute-time modeling.
 *
 * The paper's regression features are the operation's input sizes: for
 * most ops the (total) input tensor size; for Conv2D-style ops both the
 * activation size and the filter size ("the size of both input images
 * and the size of the filters serve as input", Sec. IV-B).
 */

#ifndef CEER_PROFILE_FEATURES_H
#define CEER_PROFILE_FEATURES_H

#include <vector>

#include "graph/graph.h"

namespace ceer {
namespace profile {

/** Number of features produced by opFeatures(). */
constexpr std::size_t kNumOpFeatures = 4;

/**
 * Extracts the regression feature vector of an op instance:
 * { total input bytes, first input bytes, second input bytes (0 if
 * absent), analytic FLOP count }. The byte features are the paper's
 * primary input sizes; the FLOP count stands in for the "supplemental
 * inputs, such as filters, strides, and padding" the paper adds for
 * Conv2D-style ops (Sec. III-C) — all are derived from DAG metadata
 * alone. Identical op instances map to identical features.
 */
std::vector<double> opFeatures(const graph::Node &node);

/** Stable string key for grouping identical op instances. */
std::string opInstanceKey(const graph::Node &node);

} // namespace profile
} // namespace ceer

#endif // CEER_PROFILE_FEATURES_H
