#include "profile/features.h"

#include "hw/op_cost.h"
#include "util/strings.h"

namespace ceer {
namespace profile {

std::vector<double>
opFeatures(const graph::Node &node)
{
    std::vector<double> features(kNumOpFeatures, 0.0);
    features[0] = static_cast<double>(node.inputBytes());
    if (!node.inputShapes.empty()) {
        features[1] =
            static_cast<double>(node.inputShapes[0].numBytes(node.dtype));
    }
    if (node.inputShapes.size() > 1) {
        features[2] =
            static_cast<double>(node.inputShapes[1].numBytes(node.dtype));
    }
    features[3] = hw::opCost(node).flops;
    return features;
}

std::string
opInstanceKey(const graph::Node &node)
{
    std::string key = graph::opTypeName(node.type);
    for (const auto &shape : node.inputShapes) {
        key += '|';
        key += std::to_string(shape.numBytes(node.dtype));
    }
    return key;
}

} // namespace profile
} // namespace ceer
