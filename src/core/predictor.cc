#include "core/predictor.h"

#include <algorithm>
#include <map>

#include "profile/features.h"
#include "util/logging.h"

namespace ceer {
namespace core {

using graph::Graph;
using graph::Node;
using hw::GpuModel;

CeerPredictor::CeerPredictor(CeerModel model) : model_(std::move(model))
{
}

double
CeerPredictor::predictOpUs(const Node &node, GpuModel gpu) const
{
    switch (model_.classify(node.type)) {
      case OpClass::Cpu:
        return model_.cpuMedianUs;
      case OpClass::Light:
        return model_.lightMedianUs;
      case OpClass::Heavy: {
        const OpTimeModel *op_model = model_.opModel(gpu, node.type);
        if (!op_model) {
            // Heavy op never profiled on this GPU: the paper's
            // fallback for unseen operations is the median estimate.
            return model_.lightMedianUs;
        }
        return op_model->predictUs(profile::opFeatures(node));
      }
    }
    util::panic("CeerPredictor::predictOpUs: bad class");
}

double
CeerPredictor::predictIterationUs(const Graph &g, GpuModel gpu,
                                  int num_gpus,
                                  const PredictOptions &options) const
{
    double total = 0.0;
    for (const Node &node : g.nodes()) {
        const OpClass op_class = model_.classify(node.type);
        if (!options.includeLightAndCpu && op_class != OpClass::Heavy)
            continue;
        total += predictOpUs(node, gpu);
    }
    if (options.includeComm) {
        total += model_.comm.overheadUs(
            gpu, num_gpus, static_cast<double>(g.totalParameters()));
    }
    return total;
}

PredictionBreakdown
CeerPredictor::breakdown(const Graph &g, GpuModel gpu,
                         int num_gpus) const
{
    PredictionBreakdown result;
    std::map<graph::OpType, double> by_type;
    for (const Node &node : g.nodes()) {
        const double estimate = predictOpUs(node, gpu);
        switch (model_.classify(node.type)) {
          case OpClass::Heavy:
            result.heavyUs += estimate;
            by_type[node.type] += estimate;
            break;
          case OpClass::Light:
            result.lightUs += estimate;
            break;
          case OpClass::Cpu:
            result.cpuUs += estimate;
            break;
        }
    }
    result.commUs = model_.comm.overheadUs(
        gpu, num_gpus, static_cast<double>(g.totalParameters()));
    result.heavyByType.assign(by_type.begin(), by_type.end());
    std::sort(result.heavyByType.begin(), result.heavyByType.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return result;
}

TrainingPrediction
CeerPredictor::predictTraining(const Graph &g, GpuModel gpu,
                               int num_gpus,
                               std::int64_t dataset_samples,
                               std::int64_t batch_per_gpu,
                               const PredictOptions &options) const
{
    if (dataset_samples <= 0 || batch_per_gpu <= 0)
        util::panic("predictTraining: dataset and batch must be > 0");
    TrainingPrediction prediction;
    const std::int64_t per_iteration =
        batch_per_gpu * static_cast<std::int64_t>(num_gpus);
    prediction.iterations =
        (dataset_samples + per_iteration - 1) / per_iteration;
    prediction.iterationUs =
        predictIterationUs(g, gpu, num_gpus, options);
    prediction.hours = prediction.iterationUs *
                       static_cast<double>(prediction.iterations) /
                       3.6e9;
    return prediction;
}

TrainingPrediction
CeerPredictor::predictTraining(const Graph &g,
                               const cloud::GpuInstance &instance,
                               std::int64_t dataset_samples,
                               std::int64_t batch_per_gpu,
                               const PredictOptions &options) const
{
    return predictTraining(g, instance.gpu, instance.numGpus,
                           dataset_samples, batch_per_gpu, options);
}

} // namespace core
} // namespace ceer
