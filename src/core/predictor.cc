#include "core/predictor.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "profile/features.h"
#include "util/logging.h"

namespace ceer {
namespace core {

using graph::Graph;
using graph::Node;
using hw::GpuModel;

CeerPredictor::CeerPredictor(CeerModel model) : model_(std::move(model))
{
}

double
CeerPredictor::predictOpUs(const Node &node, GpuModel gpu) const
{
    switch (model_.classify(node.type)) {
      case OpClass::Cpu:
        return model_.cpuMedianUs;
      case OpClass::Light:
        return model_.lightMedianUs;
      case OpClass::Heavy: {
        const OpTimeModel *op_model = model_.opModel(gpu, node.type);
        if (!op_model) {
            // Heavy op never profiled on this GPU: the paper's
            // fallback for unseen operations is the median estimate.
            return model_.lightMedianUs;
        }
        return op_model->predictUs(profile::opFeatures(node));
      }
    }
    util::panic("CeerPredictor::predictOpUs: bad class");
}

double
CeerPredictor::predictIterationUs(const Graph &g, GpuModel gpu,
                                  int num_gpus,
                                  const PredictOptions &options) const
{
    // The scalar node walk. Each node is classified exactly once and
    // dispatched; heavy contributions are grouped per op type in
    // first-appearance order with nodes accumulated in graph order —
    // the accumulation-order contract the compiled plan replays
    // bit-for-bit (see predict_plan.h). Light and CPU terms are
    // count * median, as in the plan.
    struct Group
    {
        graph::OpType op;
        const OpTimeModel *model; ///< Null: every node adds flatUs.
        double flatUs;
        double sumUs = 0.0;
        std::size_t count = 0;
    };
    std::vector<Group> groups;
    std::size_t light = 0, cpu = 0;
    for (const Node &node : g.nodes()) {
        switch (model_.classify(node.type)) {
          case OpClass::Cpu:
            ++cpu;
            break;
          case OpClass::Light:
            ++light;
            break;
          case OpClass::Heavy: {
            Group *group = nullptr;
            for (Group &candidate : groups) {
                if (candidate.op == node.type) {
                    group = &candidate;
                    break;
                }
            }
            if (!group) {
                const OpTimeModel *op_model =
                    model_.opModel(gpu, node.type);
                Group fresh{node.type, nullptr, 0.0};
                if (!op_model) {
                    // Heavy op never profiled on this GPU: the paper's
                    // fallback for unseen operations is the median
                    // estimate.
                    fresh.flatUs = model_.lightMedianUs;
                } else if (!op_model->usable) {
                    fresh.flatUs = std::max(op_model->medianUs, 1.0);
                } else {
                    fresh.model = op_model;
                }
                groups.push_back(std::move(fresh));
                group = &groups.back();
            }
            ++group->count;
            if (group->model) {
                group->sumUs +=
                    group->model->predictUs(profile::opFeatures(node));
            }
            break;
          }
        }
    }

    double total = 0.0;
    for (const Group &group : groups) {
        total += group.model
                     ? group.sumUs
                     : static_cast<double>(group.count) * group.flatUs;
    }
    if (options.includeLightAndCpu) {
        total += static_cast<double>(light) * model_.lightMedianUs;
        total += static_cast<double>(cpu) * model_.cpuMedianUs;
    }
    if (options.includeComm) {
        total += model_.comm.overheadUs(
            gpu, num_gpus, static_cast<double>(g.totalParameters()));
    }
    return total;
}

double
CeerPredictor::predictIterationUs(const PredictPlan &plan, GpuModel gpu,
                                  int num_gpus,
                                  const PredictOptions &options) const
{
    double total = plan.heavyUs(gpu);
    if (options.includeLightAndCpu) {
        total += plan.lightUs();
        total += plan.cpuUs();
    }
    if (options.includeComm) {
        total += model_.comm.overheadUs(gpu, num_gpus,
                                        plan.paramCount());
    }
    return total;
}

PredictionBreakdown
CeerPredictor::breakdown(const Graph &g, GpuModel gpu,
                         int num_gpus) const
{
    PredictionBreakdown result;
    std::map<graph::OpType, double> by_type;
    for (const Node &node : g.nodes()) {
        const double estimate = predictOpUs(node, gpu);
        switch (model_.classify(node.type)) {
          case OpClass::Heavy:
            result.heavyUs += estimate;
            by_type[node.type] += estimate;
            break;
          case OpClass::Light:
            result.lightUs += estimate;
            break;
          case OpClass::Cpu:
            result.cpuUs += estimate;
            break;
        }
    }
    result.commUs = model_.comm.overheadUs(
        gpu, num_gpus, static_cast<double>(g.totalParameters()));
    result.heavyByType.assign(by_type.begin(), by_type.end());
    std::sort(result.heavyByType.begin(), result.heavyByType.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return result;
}

TrainingPrediction
makeTrainingPrediction(double iteration_us, int num_gpus,
                       std::int64_t dataset_samples,
                       std::int64_t batch_per_gpu)
{
    if (dataset_samples <= 0 || batch_per_gpu <= 0)
        util::panic("predictTraining: dataset and batch must be > 0");
    TrainingPrediction prediction;
    const std::int64_t per_iteration =
        batch_per_gpu * static_cast<std::int64_t>(num_gpus);
    prediction.iterations =
        (dataset_samples + per_iteration - 1) / per_iteration;
    prediction.iterationUs = iteration_us;
    prediction.hours = prediction.iterationUs *
                       static_cast<double>(prediction.iterations) /
                       3.6e9;
    return prediction;
}

TrainingPrediction
CeerPredictor::predictTraining(const Graph &g, GpuModel gpu,
                               int num_gpus,
                               std::int64_t dataset_samples,
                               std::int64_t batch_per_gpu,
                               const PredictOptions &options) const
{
    return makeTrainingPrediction(
        predictIterationUs(g, gpu, num_gpus, options), num_gpus,
        dataset_samples, batch_per_gpu);
}

TrainingPrediction
CeerPredictor::predictTraining(const Graph &g,
                               const cloud::GpuInstance &instance,
                               std::int64_t dataset_samples,
                               std::int64_t batch_per_gpu,
                               const PredictOptions &options) const
{
    return predictTraining(g, instance.gpu, instance.numGpus,
                           dataset_samples, batch_per_gpu, options);
}

TrainingPrediction
CeerPredictor::predictTraining(const PredictPlan &plan, GpuModel gpu,
                               int num_gpus,
                               std::int64_t dataset_samples,
                               std::int64_t batch_per_gpu,
                               const PredictOptions &options) const
{
    return makeTrainingPrediction(
        predictIterationUs(plan, gpu, num_gpus, options), num_gpus,
        dataset_samples, batch_per_gpu);
}

TrainingPrediction
CeerPredictor::predictTraining(const PredictPlan &plan,
                               const cloud::GpuInstance &instance,
                               std::int64_t dataset_samples,
                               std::int64_t batch_per_gpu,
                               const PredictOptions &options) const
{
    return predictTraining(plan, instance.gpu, instance.numGpus,
                           dataset_samples, batch_per_gpu, options);
}

std::vector<double>
CeerPredictor::predictBatch(const PredictPlan &plan,
                            const std::vector<PredictRequest> &requests,
                            const PredictOptions &options) const
{
    // Batch sizes land in power-of-two buckets (1..4096, then
    // overflow) rather than the default latency ladder.
    if (obs::enabled()) {
        static obs::Histogram &sizes = obs::histogram(
            "predictor.batch_size",
            {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096});
        sizes.record(static_cast<double>(requests.size()));
    }
    std::vector<double> out;
    out.reserve(requests.size());
    for (const PredictRequest &request : requests) {
        out.push_back(predictIterationUs(plan, request.gpu,
                                         request.numGpus, options));
    }
    return out;
}

} // namespace core
} // namespace ceer
