/**
 * @file
 * Training pipeline: fits a CeerModel from an operation-level profile
 * dataset (paper Sec. IV-B/IV-C).
 */

#ifndef CEER_CORE_TRAINER_H
#define CEER_CORE_TRAINER_H

#include "core/ceer_model.h"
#include "profile/profiler.h"

namespace ceer {
namespace core {

/** Knobs of the training pipeline. */
struct TrainOptions
{
    /**
     * Heavy/light threshold: mean compute time on the threshold GPU
     * (paper: 0.5 ms on P2).
     */
    double heavyThresholdUs = 500.0;

    /** GPU whose mean times drive the classification. */
    hw::GpuModel thresholdGpu = hw::GpuModel::K80;

    /**
     * Minimum R^2 improvement for preferring the quadratic fit over
     * the linear one for an op model.
     */
    double quadraticGain = 0.015;

    /** Minimum distinct instances required to fit a regression. */
    std::size_t minPoints = 4;

    /**
     * Worker parallelism for the per-(GPU, heavy op) regression fits:
     * 1 = serial (default), 0 = one per hardware thread, n > 1 =
     * exactly n. Each fit is a pure function of its profile cell, and
     * results are merged in a fixed cell order, so the trained model
     * is byte-identical at any thread count.
     */
    int threads = 1;
};

/**
 * Fits the full Ceer model from profiles:
 *  1. classify op types into heavy/light/CPU by mean time on P2;
 *  2. per (GPU, heavy op): linear-vs-quadratic input-size regression
 *     over instance mean times;
 *  3. pooled sample medians for light GPU ops and CPU ops;
 *  4. per (GPU, k) linear comm-overhead regressions on the parameter
 *     count, with the k>=2 targets obtained by the paper's
 *     subtraction method (multi-GPU minus single-GPU iteration time).
 *
 * @param dataset Profiles of the training CNNs (op level and run
 *                level).
 * @param options Pipeline knobs.
 */
CeerModel trainCeer(const profile::ProfileDataset &dataset,
                    const TrainOptions &options = {});

} // namespace core
} // namespace ceer

#endif // CEER_CORE_TRAINER_H
