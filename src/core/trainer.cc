#include "core/trainer.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ceer {
namespace core {

using graph::Device;
using graph::OpType;
using hw::GpuModel;
using profile::IterationProfile;
using profile::OpProfile;
using profile::ProfileDataset;

namespace {

/** Classification step: heavy iff mean time on the threshold GPU is
 *  above the threshold. GPU ops never seen on the threshold GPU stay
 *  light. */
std::set<OpType>
classifyHeavy(const ProfileDataset &dataset, const TrainOptions &options)
{
    std::set<OpType> heavy;
    for (OpType op : dataset.opTypes(options.thresholdGpu)) {
        if (graph::opTypeInfo(op).device != Device::Gpu)
            continue;
        if (dataset.meanTimeUs(options.thresholdGpu, op) >=
            options.heavyThresholdUs) {
            heavy.insert(op);
        }
    }
    return heavy;
}

/** Fits one heavy-op model from its instances on one GPU. */
OpTimeModel
fitOpModel(GpuModel gpu, OpType op,
           const std::vector<const OpProfile *> &instances,
           const TrainOptions &options)
{
    OpTimeModel fitted;
    fitted.gpu = gpu;
    fitted.op = op;

    // Deduplicate identical feature vectors across CNNs: the same
    // {op, input size} instance may appear in several models.
    std::map<std::vector<double>, util::RunningStats> unique;
    std::vector<double> means;
    for (const OpProfile *instance : instances) {
        unique[instance->features].add(instance->timeUs.mean());
        means.push_back(instance->timeUs.mean());
    }
    fitted.medianUs = util::median(means);
    fitted.points = unique.size();
    if (unique.size() < options.minPoints)
        return fitted; // not usable; falls back to the median.

    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (const auto &[features, stats] : unique) {
        X.push_back(features);
        y.push_back(stats.mean());
    }

    const LinearModel linear = LinearModel::fit(X, y);
    const double linear_r2 = linear.rSquared(X, y);

    // The quadratic expansion doubles the feature count; below
    // expanded-dimension + 1 distinct points the fit is
    // underdetermined and would interpolate noise rather than reveal
    // curvature, so it cannot legitimately beat the linear fit —
    // skip it (and the expansion work) outright. When attempted, the
    // expansion goes into a per-thread scratch buffer reused across
    // cells instead of allocating a fresh row-of-rows per fit.
    const std::size_t quad_min =
        std::max(options.minPoints, 2 * X.front().size() + 1);
    bool prefer_quadratic = false;
    LinearModel quad;
    double quad_r2 = 0.0;
    if (unique.size() >= quad_min) {
        static thread_local std::vector<std::vector<double>> expanded;
        quadraticExpandInto(X, &expanded);
        quad = LinearModel::fit(expanded, y);
        quad_r2 = quad.rSquared(expanded, y);
        prefer_quadratic = quad_r2 > linear_r2 + options.quadraticGain;
    } else {
        OBS_COUNTER_INC("trainer.quadratic_skips");
    }

    if (prefer_quadratic) {
        fitted.quadratic = true;
        fitted.model = quad;
        fitted.r2 = quad_r2;
    } else {
        fitted.quadratic = false;
        fitted.model = linear;
        fitted.r2 = linear_r2;
    }
    fitted.usable = true;
    return fitted;
}

/** Pools reservoir samples of all profiles passing @p predicate. */
template <typename Predicate>
double
pooledMedian(const ProfileDataset &dataset, Predicate predicate)
{
    std::vector<double> pooled;
    for (const OpProfile &profile : dataset.ops()) {
        if (!predicate(profile))
            continue;
        const auto &samples = profile.samples.samples();
        pooled.insert(pooled.end(), samples.begin(), samples.end());
    }
    return util::median(std::move(pooled));
}

/** Fits S_1 and the D_k (k >= 2) comm regressions for every GPU. */
CommModel
fitCommModel(const ProfileDataset &dataset)
{
    CommModel comm;
    // Bucket run-level profiles: (gpu, model) -> per-k iteration data.
    struct RunPoint
    {
        double params = 0.0;
        double iterationUs[8] = {0};
        double commUs1 = 0.0;
        bool have[8] = {false};
    };
    std::map<GpuModel, std::map<std::string, RunPoint>> buckets;
    int max_k = 1;
    for (const IterationProfile &run : dataset.iterations()) {
        if (run.numGpus < 1 || run.numGpus > 8)
            continue;
        RunPoint &point = buckets[run.gpu][run.model];
        point.params = static_cast<double>(run.paramCount);
        point.iterationUs[run.numGpus - 1] = run.meanIterationUs;
        point.have[run.numGpus - 1] = true;
        if (run.numGpus == 1)
            point.commUs1 = run.meanCommUs;
        max_k = std::max(max_k, run.numGpus);
    }

    for (const auto &[gpu, models] : buckets) {
        auto &per_k = comm.fits[gpu];
        per_k.resize(static_cast<std::size_t>(max_k));

        // k = 1: host<->GPU overhead straight from the "GPU logs".
        std::vector<std::vector<double>> x1;
        std::vector<double> y1;
        for (const auto &[name, point] : models) {
            if (!point.have[0])
                continue;
            x1.push_back({point.params});
            y1.push_back(point.commUs1);
        }
        if (x1.size() >= 2) {
            per_k[0].model = LinearModel::fit(x1, y1);
            per_k[0].r2 = per_k[0].model.rSquared(x1, y1);
            per_k[0].valid = true;
        }

        // k >= 2: the paper's subtraction method.
        for (int k = 2; k <= max_k; ++k) {
            std::vector<std::vector<double>> x;
            std::vector<double> y;
            for (const auto &[name, point] : models) {
                if (!point.have[0] || !point.have[k - 1])
                    continue;
                x.push_back({point.params});
                y.push_back(point.iterationUs[k - 1] -
                            point.iterationUs[0]);
            }
            if (x.size() >= 2) {
                auto &fit = per_k[static_cast<std::size_t>(k) - 1];
                fit.model = LinearModel::fit(x, y);
                fit.r2 = fit.model.rSquared(x, y);
                fit.valid = true;
            }
        }
    }
    return comm;
}

} // namespace

CeerModel
trainCeer(const ProfileDataset &dataset, const TrainOptions &options)
{
    OBS_SPAN("trainer.trainCeer", "trainer");
    CeerModel model;
    model.heavyThresholdUs = options.heavyThresholdUs;
    model.heavyOps = classifyHeavy(dataset, options);

    // Enumerate the (GPU, heavy op) fit cells in canonical order, fit
    // them (in parallel when asked — each fit is a pure function of
    // its cell), and merge in cell order. Output is byte-identical at
    // any thread count.
    struct FitCell
    {
        GpuModel gpu;
        OpType op;
        std::vector<const OpProfile *> instances;
    };
    std::vector<FitCell> cells;
    for (GpuModel gpu : hw::allGpuModels()) {
        for (OpType op : model.heavyOps) {
            auto instances = dataset.opsFor(gpu, op);
            if (instances.empty())
                continue;
            cells.push_back({gpu, op, std::move(instances)});
        }
    }

    std::vector<OpTimeModel> fitted(cells.size());
    const auto fit_cell = [&](std::size_t i) {
        OBS_TIMER("trainer.fit_cell_us");
        fitted[i] = fitOpModel(cells[i].gpu, cells[i].op,
                               cells[i].instances, options);
        OBS_COUNTER_INC("trainer.cells");
    };
    const std::size_t threads =
        options.threads == 1
            ? 1
            : util::ThreadPool::effectiveThreads(options.threads);
    if (threads <= 1 || cells.size() <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            fit_cell(i);
    } else {
        // Regression fits are hundreds of microseconds each; the
        // static hint keeps the grain at one cell per claim so the
        // slowest cells still balance across workers.
        util::ParallelOptions parallel;
        parallel.costHintUs = 500.0;
        parallel.maxThreads = threads;
        util::ThreadPool::shared().parallelForRange(
            cells.size(), parallel,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    fit_cell(i);
            });
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
        model.opModels.emplace(std::make_pair(cells[i].gpu,
                                              cells[i].op),
                               std::move(fitted[i]));
    }

    model.lightMedianUs = pooledMedian(
        dataset, [&](const OpProfile &p) {
            return !p.onCpu && !model.heavyOps.count(p.op);
        });
    model.cpuMedianUs = pooledMedian(
        dataset, [](const OpProfile &p) { return p.onCpu; });

    model.comm = fitCommModel(dataset);

    const auto [r2_lo, r2_hi] = model.opModelR2Range();
    CEER_LOG(Info) << "trained Ceer: " << model.heavyOps.size()
                   << " heavy op types, op-model R^2 in ["
                   << util::format("%.3f", r2_lo) << ", "
                   << util::format("%.3f", r2_hi) << "], light median "
                   << util::format("%.1f", model.lightMedianUs)
                   << "us, cpu median "
                   << util::format("%.1f", model.cpuMedianUs) << "us";
    return model;
}

} // namespace core
} // namespace ceer
