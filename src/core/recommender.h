/**
 * @file
 * Optimal cloud-instance recommendation (paper Sec. IV-D and the
 * Sec. V scenarios): evaluate every candidate instance with the
 * trained predictor and minimize a user objective under optional
 * budget constraints.
 */

#ifndef CEER_CORE_RECOMMENDER_H
#define CEER_CORE_RECOMMENDER_H

#include <array>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "cloud/instances.h"
#include "core/predictor.h"

namespace ceer {
namespace core {

/** What the user wants to minimize. */
enum class Objective
{
    MinTrainingTime, ///< Fastest feasible instance.
    MinCost,         ///< Cheapest feasible instance.
};

/**
 * User-specified objective Obj(T, C) (paper Sec. IV-D): maps predicted
 * training hours and total cost to a score; the recommender minimizes
 * it. Allows blends like T * C or alpha*T + beta*C.
 */
using ObjectiveFn = std::function<double(double hours, double cost_usd)>;

/** The ObjectiveFn equivalent of a built-in Objective. */
ObjectiveFn objectiveFunction(Objective objective);

/** The workload to be placed. */
struct WorkloadSpec
{
    const graph::Graph *graph = nullptr; ///< Training graph (batch B).
    std::int64_t datasetSamples = 0;     ///< Dataset size D.
    std::int64_t batchPerGpu = 32;       ///< Per-GPU batch B.
};

/** Constraints of a scenario. */
struct Constraints
{
    /** Maximum hourly rental price (infinity = unconstrained). */
    double hourlyBudgetUsd = std::numeric_limits<double>::infinity();

    /** Tolerated hourly-budget violation (the paper allows $0.42). */
    double hourlyToleranceUsd = 0.0;

    /** Maximum total training spend (infinity = unconstrained). */
    double totalBudgetUsd = std::numeric_limits<double>::infinity();

    /**
     * Reject instances whose GPU memory cannot hold the training
     * footprint (params + gradients + optimizer + activations).
     */
    bool enforceGpuMemory = true;
};

/** Prediction for one candidate instance. */
struct CandidateEvaluation
{
    cloud::GpuInstance instance;  ///< The candidate.
    TrainingPrediction prediction; ///< Ceer's time prediction.
    double costUsd = 0.0;          ///< Predicted total cost.
    bool withinHourly = true;      ///< Meets the hourly budget.
    bool withinTotal = true;       ///< Meets the total budget.
    bool fitsMemory = true;        ///< Fits in the GPU's memory.

    /** Feasible under every constraint. */
    bool
    feasible() const
    {
        return withinHourly && withinTotal && fitsMemory;
    }
};

/**
 * Per-GPU-model memory-fit verdicts, indexed by the hw::GpuModel
 * enum value. A pure function of the graph (the per-GPU batch and
 * replica footprint are identical at any instance size), so
 * long-lived callers compute it once per graph — the full-graph
 * memory walk is the recommender's only O(nodes) step once a plan's
 * heavy term is memoized, and recomputing it per query dominated
 * ceerd's request cost on deep models.
 */
using MemoryFitTable = std::array<bool, 16>;

/** Fills a MemoryFitTable for @p g (hw::fitsInGpuMemory per model). */
MemoryFitTable computeMemoryFits(const graph::Graph &g);

/** Result of a recommendation query. */
struct Recommendation
{
    std::vector<CandidateEvaluation> evaluations; ///< All candidates.
    int bestIndex = -1; ///< Index of the winner, -1 if none feasible.

    /** The winning evaluation; panics when bestIndex < 0. */
    const CandidateEvaluation &best() const;
};

/**
 * Evaluates every candidate and picks the best feasible one.
 *
 * The workload graph is compiled once (CeerPredictor::compile) and
 * every candidate is scored against the shared plan. With
 * @p threads != 1 the candidate evaluations fan out across a
 * util::ThreadPool; the winner is still selected by a serial
 * candidate-order reduction, so the Recommendation — winner and the
 * full Evaluation list — is byte-identical at any thread count.
 *
 * @param predictor   Trained Ceer predictor.
 * @param workload    CNN + dataset to train.
 * @param candidates  Candidate instances (e.g. a whole catalog).
 * @param objective   Metric to minimize.
 * @param constraints Budget constraints.
 * @param threads     Sweep parallelism: 1 = serial (default), 0 = one
 *                    per hardware thread, n > 1 = exactly n.
 */
Recommendation recommend(const CeerPredictor &predictor,
                         const WorkloadSpec &workload,
                         const std::vector<cloud::GpuInstance> &candidates,
                         Objective objective,
                         const Constraints &constraints = {},
                         int threads = 1);

/**
 * Overload minimizing an arbitrary Obj(T, C).
 *
 * @param objective Score to minimize over feasible candidates.
 */
Recommendation recommend(const CeerPredictor &predictor,
                         const WorkloadSpec &workload,
                         const std::vector<cloud::GpuInstance> &candidates,
                         const ObjectiveFn &objective,
                         const Constraints &constraints = {},
                         int threads = 1);

/**
 * Overload reusing a precompiled plan for the workload graph.
 *
 * @p plan must have been produced by @p predictor's compile() for
 * @p workload.graph. Long-lived callers (the ceerd server's per-session
 * plan caches) compile once per graph and sweep many queries against
 * the shared plan; the result is byte-identical to the compiling
 * overloads above, which delegate here.
 */
Recommendation recommend(const CeerPredictor &predictor,
                         const PredictPlan &plan,
                         const WorkloadSpec &workload,
                         const std::vector<cloud::GpuInstance> &candidates,
                         const ObjectiveFn &objective,
                         const Constraints &constraints = {},
                         int threads = 1);

/**
 * Out-parameter variant of the precompiled-plan overload: writes the
 * result into @p out, reusing its evaluations storage (slots are fully
 * overwritten every call). Sweeping the same catalog into a warm
 * Recommendation is allocation-free — the ceerd request path depends
 * on this. Byte-identical to the returning overload, which delegates
 * here.
 *
 * @param fits Precomputed computeMemoryFits(*workload.graph), or null
 *             to compute it in place. Passing a cached table skips the
 *             per-query full-graph memory walk; the result is
 *             byte-identical either way.
 */
void recommendInto(const CeerPredictor &predictor,
                   const PredictPlan &plan, const WorkloadSpec &workload,
                   const std::vector<cloud::GpuInstance> &candidates,
                   const ObjectiveFn &objective,
                   const Constraints &constraints, int threads,
                   Recommendation *out,
                   const MemoryFitTable *fits = nullptr);

} // namespace core
} // namespace ceer

#endif // CEER_CORE_RECOMMENDER_H
