#include "core/ceer_model.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/regression.h"
#include "io/cbf.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace ceer {
namespace core {

using graph::OpType;
using hw::GpuModel;

double
OpTimeModel::predictUs(const std::vector<double> &features) const
{
    double predicted;
    if (usable) {
        predicted = quadratic ? model.predict(quadraticExpand(features))
                              : model.predict(features);
    } else {
        predicted = medianUs;
    }
    // Regressions can dip below zero for tiny inputs outside the
    // training range; kernels cannot beat launch overhead.
    return std::max(predicted, 1.0);
}

double
CommModel::overheadUs(GpuModel gpu, int num_gpus,
                      double param_count) const
{
    if (num_gpus < 1)
        util::panic("CommModel::overheadUs: num_gpus must be >= 1");
    const auto it = fits.find(gpu);
    if (it == fits.end() || it->second.empty() || !it->second[0].valid)
        util::panic("CommModel::overheadUs: no fit for GPU " +
                    hw::gpuModelName(gpu));
    const auto &per_k = it->second;
    const std::vector<double> x{param_count};

    double total = per_k[0].model.predict(x);
    if (num_gpus == 1)
        return std::max(total, 0.0);

    const std::size_t idx = static_cast<std::size_t>(num_gpus) - 1;
    if (idx < per_k.size() && per_k[idx].valid)
        return std::max(total + per_k[idx].model.predict(x), 0.0);

    // Extrapolate D_k linearly in k from the last two trained widths.
    std::size_t last = per_k.size();
    while (last > 1 && !per_k[last - 1].valid)
        --last;
    if (last < 2)
        util::panic("CommModel::overheadUs: no multi-GPU fits for " +
                    hw::gpuModelName(gpu));
    const double d_last = per_k[last - 1].model.predict(x);
    const double d_prev =
        last >= 3 && per_k[last - 2].valid
            ? per_k[last - 2].model.predict(x)
            : 0.0;
    const double slope = d_last - d_prev;
    const double extra = static_cast<double>(num_gpus) -
                         static_cast<double>(last);
    return std::max(total + d_last + slope * extra, 0.0);
}

OpClass
CeerModel::classify(OpType op) const
{
    if (graph::opTypeInfo(op).device == graph::Device::Cpu)
        return OpClass::Cpu;
    return heavyOps.count(op) ? OpClass::Heavy : OpClass::Light;
}

const OpTimeModel *
CeerModel::opModel(GpuModel gpu, OpType op) const
{
    const auto it = opModels.find({gpu, op});
    return it == opModels.end() ? nullptr : &it->second;
}

std::pair<double, double>
CeerModel::opModelR2Range() const
{
    double lo = 1.0, hi = 0.0;
    bool any = false;
    for (const auto &[key, model] : opModels) {
        if (!model.usable)
            continue;
        lo = std::min(lo, model.r2);
        hi = std::max(hi, model.r2);
        any = true;
    }
    if (!any)
        return {0.0, 0.0};
    return {lo, hi};
}

void
CeerModel::save(std::ostream &out) const
{
    out << "ceer_model v1\n";
    out << "heavy_threshold_us " << util::format("%.17g", heavyThresholdUs)
        << "\n";
    out << "light_median_us " << util::format("%.17g", lightMedianUs)
        << "\n";
    out << "cpu_median_us " << util::format("%.17g", cpuMedianUs) << "\n";
    out << "heavy_ops";
    for (OpType op : heavyOps)
        out << " " << graph::opTypeName(op);
    out << "\n";
    for (const auto &[key, model] : opModels) {
        out << "op_model " << hw::gpuModelName(key.first) << " "
            << graph::opTypeName(key.second) << " "
            << (model.quadratic ? 1 : 0) << " " << (model.usable ? 1 : 0)
            << " " << util::format("%.17g", model.r2) << " "
            << util::format("%.17g", model.medianUs) << " "
            << model.points << " " << model.model.serialize() << "\n";
    }
    for (const auto &[gpu, per_k] : comm.fits) {
        for (std::size_t i = 0; i < per_k.size(); ++i) {
            if (!per_k[i].valid)
                continue;
            out << "comm_fit " << hw::gpuModelName(gpu) << " " << (i + 1)
                << " " << util::format("%.17g", per_k[i].r2) << " "
                << per_k[i].model.serialize() << "\n";
        }
    }
}

CeerModel
CeerModel::load(std::istream &in)
{
    CeerModel model;
    std::string error;
    if (!tryLoad(in, &model, &error))
        util::fatal("CeerModel::load: " + error);
    return model;
}

bool
CeerModel::tryLoad(std::istream &in, CeerModel *model,
                   std::string *error)
{
    CeerModel parsed;
    std::string line;
    std::size_t line_no = 1;
    if (!std::getline(in, line) ||
        !util::startsWith(line, "ceer_model")) {
        *error = "missing header";
        return false;
    }
    // All failure paths funnel through fail()/failField() so every
    // message carries the offending line number.
    const auto fail = [&](const std::string &what) {
        *error = util::format("line %zu: ", line_no) + what;
        return false;
    };
    const auto parse_double = [&](const std::string &field,
                                  const char *what, double *out) {
        const auto result = util::parseDouble(field);
        if (!result) {
            *error = util::format("line %zu: bad %s '%s': %s", line_no,
                                  what, field.c_str(), result.error);
            return false;
        }
        *out = result.value;
        return true;
    };
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto fields = util::split(line, ' ');
        const std::string &tag = fields[0];
        const auto require = [&](std::size_t count) {
            if (fields.size() >= count)
                return true;
            *error = util::format(
                "line %zu: truncated '%s' line (%zu of %zu fields)",
                line_no, tag.c_str(), fields.size(), count);
            return false;
        };
        if (tag == "heavy_threshold_us") {
            if (!require(2) ||
                !parse_double(fields[1], "threshold",
                              &parsed.heavyThresholdUs))
                return false;
        } else if (tag == "light_median_us") {
            if (!require(2) ||
                !parse_double(fields[1], "median",
                              &parsed.lightMedianUs))
                return false;
        } else if (tag == "cpu_median_us") {
            if (!require(2) ||
                !parse_double(fields[1], "median", &parsed.cpuMedianUs))
                return false;
        } else if (tag == "heavy_ops") {
            for (std::size_t i = 1; i < fields.size(); ++i) {
                OpType op;
                if (!graph::opTypeFromName(fields[i], op))
                    return fail("bad op " + fields[i]);
                parsed.heavyOps.insert(op);
            }
        } else if (tag == "op_model") {
            if (!require(9))
                return false;
            GpuModel gpu;
            OpType op;
            if (!hw::gpuModelFromName(fields[1], gpu) ||
                !graph::opTypeFromName(fields[2], op))
                return fail("bad op_model line");
            OpTimeModel entry;
            entry.gpu = gpu;
            entry.op = op;
            entry.quadratic = fields[3] == "1";
            entry.usable = fields[4] == "1";
            if (!parse_double(fields[5], "r2", &entry.r2) ||
                !parse_double(fields[6], "median", &entry.medianUs))
                return false;
            const auto points = util::parseSize(fields[7]);
            if (!points)
                return fail("bad op_model points '" + fields[7] +
                            "': " + points.error);
            entry.points = points.value;
            std::string model_error;
            if (!LinearModel::tryDeserialize(fields[8], &entry.model,
                                             &model_error))
                return fail("op_model fit: " + model_error);
            parsed.opModels.emplace(std::make_pair(gpu, op),
                                    std::move(entry));
        } else if (tag == "comm_fit") {
            if (!require(5))
                return false;
            GpuModel gpu;
            if (!hw::gpuModelFromName(fields[1], gpu))
                return fail("bad comm_fit line");
            const auto k_parsed = util::parseSize(fields[2]);
            if (!k_parsed)
                return fail("bad comm_fit k '" + fields[2] + "': " +
                            k_parsed.error);
            const std::size_t k = k_parsed.value;
            if (k == 0)
                return fail("comm_fit k must be >= 1");
            auto &per_k = parsed.comm.fits[gpu];
            if (per_k.size() < k)
                per_k.resize(k);
            std::string model_error;
            if (!parse_double(fields[3], "r2", &per_k[k - 1].r2))
                return false;
            if (!LinearModel::tryDeserialize(fields[4],
                                             &per_k[k - 1].model,
                                             &model_error))
                return fail("comm_fit: " + model_error);
            per_k[k - 1].valid = true;
        } else {
            return fail("unknown tag '" + tag + "'");
        }
    }
    *model = std::move(parsed);
    return true;
}

void
CeerModel::saveCbf(std::ostream &out) const
{
    io::CbfBuilder builder;
    builder.addBytes("schema", "ceer.model.v1");
    builder.addF64("scalar.heavy_threshold_us", {heavyThresholdUs});
    builder.addF64("scalar.light_median_us", {lightMedianUs});
    builder.addF64("scalar.cpu_median_us", {cpuMedianUs});

    std::vector<std::string> heavy;
    for (OpType op : heavyOps)
        heavy.push_back(graph::opTypeName(op));
    io::addStringColumn(&builder, "heavy_ops", heavy);

    // Map iteration order (sorted by key) matches save()'s line order.
    std::vector<std::string> om_gpu, om_op, om_fit;
    std::vector<std::uint8_t> om_quadratic, om_usable;
    std::vector<double> om_r2, om_median;
    std::vector<std::uint64_t> om_points;
    for (const auto &[key, entry] : opModels) {
        om_gpu.push_back(hw::gpuModelName(key.first));
        om_op.push_back(graph::opTypeName(key.second));
        om_quadratic.push_back(entry.quadratic ? 1 : 0);
        om_usable.push_back(entry.usable ? 1 : 0);
        om_r2.push_back(entry.r2);
        om_median.push_back(entry.medianUs);
        om_points.push_back(entry.points);
        om_fit.push_back(entry.model.serialize());
    }
    io::addStringColumn(&builder, "om.gpu", om_gpu);
    io::addStringColumn(&builder, "om.op", om_op);
    builder.addU8("om.quadratic", om_quadratic);
    builder.addU8("om.usable", om_usable);
    builder.addF64("om.r2", om_r2);
    builder.addF64("om.median_us", om_median);
    builder.addU64("om.points", om_points);
    io::addStringColumn(&builder, "om.fit", om_fit);

    // Only valid fits are stored, k is 1-based — same as save().
    std::vector<std::string> cf_gpu, cf_fit;
    std::vector<std::uint64_t> cf_k;
    std::vector<double> cf_r2;
    for (const auto &[gpu, per_k] : comm.fits) {
        for (std::size_t i = 0; i < per_k.size(); ++i) {
            if (!per_k[i].valid)
                continue;
            cf_gpu.push_back(hw::gpuModelName(gpu));
            cf_k.push_back(i + 1);
            cf_r2.push_back(per_k[i].r2);
            cf_fit.push_back(per_k[i].model.serialize());
        }
    }
    io::addStringColumn(&builder, "cf.gpu", cf_gpu);
    builder.addU64("cf.k", cf_k);
    builder.addF64("cf.r2", cf_r2);
    io::addStringColumn(&builder, "cf.fit", cf_fit);

    builder.write(out);
}

bool
CeerModel::tryLoadCbf(const io::CbfFile &file, CeerModel *model,
                      std::string *error)
{
    const char *schema = nullptr;
    std::size_t schema_size = 0;
    if (!file.bytes("schema", &schema, &schema_size, error))
        return false;
    const std::string schema_name(schema, schema_size);
    if (schema_name != "ceer.model.v1") {
        *error = "schema '" + schema_name +
                 "' is not ceer.model.v1 (wrong container?)";
        return false;
    }

    CeerModel parsed;
    const auto scalar = [&](const char *name, double *out) {
        const double *data = nullptr;
        std::size_t count = 0;
        if (!file.f64(name, &data, &count, error))
            return false;
        if (count != 1) {
            *error = util::format(
                "column '%s' has %zu values, expected 1", name, count);
            return false;
        }
        *out = data[0];
        return true;
    };
    if (!scalar("scalar.heavy_threshold_us", &parsed.heavyThresholdUs) ||
        !scalar("scalar.light_median_us", &parsed.lightMedianUs) ||
        !scalar("scalar.cpu_median_us", &parsed.cpuMedianUs))
        return false;

    std::vector<std::string> heavy;
    if (!io::readStringColumn(file, "heavy_ops", &heavy, error))
        return false;
    for (std::size_t i = 0; i < heavy.size(); ++i) {
        OpType op;
        if (!graph::opTypeFromName(heavy[i], op)) {
            *error = util::format("heavy_ops row %zu: bad op '%s'", i,
                                  heavy[i].c_str());
            return false;
        }
        parsed.heavyOps.insert(op);
    }

    const auto sized = [&](std::size_t count, std::size_t rows,
                           const char *name) {
        if (count == rows)
            return true;
        *error = util::format("column '%s' has %zu rows, expected %zu",
                              name, count, rows);
        return false;
    };

    std::vector<std::string> om_gpu, om_op, om_fit;
    if (!io::readStringColumn(file, "om.gpu", &om_gpu, error) ||
        !io::readStringColumn(file, "om.op", &om_op, error) ||
        !io::readStringColumn(file, "om.fit", &om_fit, error))
        return false;
    const std::size_t om_rows = om_gpu.size();
    const std::uint8_t *om_quadratic = nullptr, *om_usable = nullptr;
    const double *om_r2 = nullptr, *om_median = nullptr;
    const std::uint64_t *om_points = nullptr;
    std::size_t n = 0;
    if (!(file.u8("om.quadratic", &om_quadratic, &n, error) &&
          sized(n, om_rows, "om.quadratic")) ||
        !(file.u8("om.usable", &om_usable, &n, error) &&
          sized(n, om_rows, "om.usable")) ||
        !(file.f64("om.r2", &om_r2, &n, error) &&
          sized(n, om_rows, "om.r2")) ||
        !(file.f64("om.median_us", &om_median, &n, error) &&
          sized(n, om_rows, "om.median_us")) ||
        !(file.u64("om.points", &om_points, &n, error) &&
          sized(n, om_rows, "om.points")) ||
        !sized(om_op.size(), om_rows, "om.op") ||
        !sized(om_fit.size(), om_rows, "om.fit"))
        return false;
    for (std::size_t i = 0; i < om_rows; ++i) {
        OpTimeModel entry;
        if (!hw::gpuModelFromName(om_gpu[i], entry.gpu)) {
            *error = util::format("om row %zu: bad GPU '%s'", i,
                                  om_gpu[i].c_str());
            return false;
        }
        if (!graph::opTypeFromName(om_op[i], entry.op)) {
            *error = util::format("om row %zu: bad op '%s'", i,
                                  om_op[i].c_str());
            return false;
        }
        entry.quadratic = om_quadratic[i] != 0;
        entry.usable = om_usable[i] != 0;
        entry.r2 = om_r2[i];
        entry.medianUs = om_median[i];
        entry.points = om_points[i];
        std::string model_error;
        if (!LinearModel::tryDeserialize(om_fit[i], &entry.model,
                                         &model_error)) {
            *error = util::format("om row %zu: fit: ", i) + model_error;
            return false;
        }
        parsed.opModels.emplace(std::make_pair(entry.gpu, entry.op),
                                std::move(entry));
    }

    std::vector<std::string> cf_gpu, cf_fit;
    if (!io::readStringColumn(file, "cf.gpu", &cf_gpu, error) ||
        !io::readStringColumn(file, "cf.fit", &cf_fit, error))
        return false;
    const std::size_t cf_rows = cf_gpu.size();
    const std::uint64_t *cf_k = nullptr;
    const double *cf_r2 = nullptr;
    if (!(file.u64("cf.k", &cf_k, &n, error) &&
          sized(n, cf_rows, "cf.k")) ||
        !(file.f64("cf.r2", &cf_r2, &n, error) &&
          sized(n, cf_rows, "cf.r2")) ||
        !sized(cf_fit.size(), cf_rows, "cf.fit"))
        return false;
    for (std::size_t i = 0; i < cf_rows; ++i) {
        GpuModel gpu;
        if (!hw::gpuModelFromName(cf_gpu[i], gpu)) {
            *error = util::format("cf row %zu: bad GPU '%s'", i,
                                  cf_gpu[i].c_str());
            return false;
        }
        const std::uint64_t k = cf_k[i];
        if (k == 0 || k > 1024) {
            *error = util::format(
                "cf row %zu: bad k %llu", i,
                static_cast<unsigned long long>(k));
            return false;
        }
        auto &per_k = parsed.comm.fits[gpu];
        if (per_k.size() < k)
            per_k.resize(k);
        per_k[k - 1].r2 = cf_r2[i];
        std::string model_error;
        if (!LinearModel::tryDeserialize(cf_fit[i],
                                         &per_k[k - 1].model,
                                         &model_error)) {
            *error = util::format("cf row %zu: fit: ", i) + model_error;
            return false;
        }
        per_k[k - 1].valid = true;
    }

    *model = std::move(parsed);
    return true;
}

bool
CeerModel::tryLoadFile(const std::string &path, CeerModel *model,
                       std::string *error)
{
    OBS_TIMER("io.load_us");
    io::FileFormat format;
    if (!io::sniffFile(path, &format, error))
        return false;
    if (format == io::FileFormat::Cbf) {
        io::CbfFile file;
        std::string map_error;
        if (!io::CbfFile::tryMap(path, &file, &map_error)) {
            // mmap can fail on exotic filesystems; the streaming
            // reader applies the identical validation.
            if (!io::CbfFile::tryLoad(path, &file, error)) {
                *error = path + ": " + *error;
                return false;
            }
        }
        if (!tryLoadCbf(file, model, error)) {
            *error = path + ": " + *error;
            return false;
        }
        return true;
    }
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    if (!tryLoad(in, model, error)) {
        *error = path + ": " + *error;
        return false;
    }
    return true;
}

CeerModel
CeerModel::loadFile(const std::string &path)
{
    CeerModel model;
    std::string error;
    if (!tryLoadFile(path, &model, &error))
        util::fatal("CeerModel::loadFile: " + error);
    return model;
}

} // namespace core
} // namespace ceer
