#include "core/predict_plan.h"

#include <algorithm>
#include <array>

#include "core/predictor.h"
#include "obs/metrics.h"
#include "profile/features.h"
#include "util/logging.h"

// The evaluation kernel is multiversioned via the shared macro; this
// TU is compiled with -ffp-contract=off (see CMakeLists.txt) so no
// clone fuses multiply-add into FMA and every clone returns the same
// bits as the scalar node walk.
#include "util/target_clones.h"

namespace ceer {
namespace core {

namespace plan_kernel {

namespace {
/** Rows processed per kernel block (accumulator tile size). */
constexpr std::size_t kBlock = 256;
} // namespace

CEER_VECTOR_CLONES double
dotClampSum(const double *x, std::size_t n, std::size_t d,
            const double *w, const double *s, double intercept)
{
    // Per block: seed every lane with the intercept, stream the
    // feature columns (j outermost, so each lane replays
    // LinearModel::predict's j-ascending add sequence exactly), then
    // clamp and fold into the running sum. The sum is carried across
    // blocks left-to-right, so the overall association matches a
    // plain per-node scalar accumulation.
    std::array<double, kBlock> acc;
    double sum = 0.0;
    for (std::size_t start = 0; start < n; start += kBlock) {
        const std::size_t len = std::min(kBlock, n - start);
        const double *rows = x + start * d;
        for (std::size_t i = 0; i < len; ++i)
            acc[i] = intercept;
        for (std::size_t j = 0; j < d; ++j) {
            const double wj = w[j];
            const double sj = s[j];
            for (std::size_t i = 0; i < len; ++i)
                acc[i] += wj * (rows[i * d + j] / sj);
        }
        for (std::size_t i = 0; i < len; ++i)
            sum += std::max(acc[i], 1.0);
    }
    return sum;
}

} // namespace plan_kernel

double
PredictPlan::heavyUs(hw::GpuModel gpu) const
{
    const std::size_t slot = static_cast<std::size_t>(gpu);
    Memo &memo = *memo_;
    if (slot >= memo.ready.size())
        util::panic("PredictPlan::heavyUs: unknown GPU slot");
    if (memo.ready[slot].load(std::memory_order_acquire)) {
        OBS_COUNTER_INC("predictor.memo_hits");
        return memo.value[slot];
    }

    std::lock_guard<std::mutex> lock(memo.mutex);
    if (memo.ready[slot].load(std::memory_order_relaxed)) {
        OBS_COUNTER_INC("predictor.memo_hits");
        return memo.value[slot];
    }

    double heavy = 0.0;
    for (const OpGroup &group : groups_) {
        const GpuRecipe &recipe = group.recipes[slot];
        if (recipe.viaModel) {
            const double *matrix = recipe.quadratic
                                       ? group.quadFeatures.data()
                                       : group.features.data();
            heavy += plan_kernel::dotClampSum(
                matrix, group.rows, recipe.weights.size(),
                recipe.weights.data(), recipe.scales.data(),
                recipe.intercept);
        } else {
            heavy += static_cast<double>(group.rows) * recipe.flatUs;
        }
    }
    memo.value[slot] = heavy;
    memo.ready[slot].store(true, std::memory_order_release);
    OBS_COUNTER_INC("predictor.memo_fills");
    return heavy;
}

double
PredictPlan::lightUs() const
{
    return static_cast<double>(lightCount_) * lightMedianUs_;
}

double
PredictPlan::cpuUs() const
{
    return static_cast<double>(cpuCount_) * cpuMedianUs_;
}

std::size_t
PredictPlan::approxBytes() const
{
    std::size_t bytes = sizeof *this;
    for (const OpGroup &group : groups_) {
        bytes += sizeof group;
        bytes += (group.features.capacity() +
                  group.quadFeatures.capacity()) *
                 sizeof(double);
        for (const GpuRecipe &recipe : group.recipes) {
            bytes += sizeof recipe;
            bytes += (recipe.weights.capacity() +
                      recipe.scales.capacity()) *
                     sizeof(double);
        }
    }
    if (memo_)
        bytes += sizeof(Memo) +
                 memo_->ready.capacity() * sizeof(std::atomic<bool>) +
                 memo_->value.capacity() * sizeof(double);
    return bytes;
}

PredictPlan
CeerPredictor::compile(const graph::Graph &g) const
{
    OBS_TIMER("predictor.compile_us");
    OBS_COUNTER_INC("predictor.plan_builds");
    PredictPlan plan;
    plan.nodeCount_ = g.size();
    plan.lightMedianUs_ = model_.lightMedianUs;
    plan.cpuMedianUs_ = model_.cpuMedianUs;
    plan.paramCount_ = static_cast<double>(g.totalParameters());

    std::size_t gpu_slots = 0;
    for (hw::GpuModel gpu : hw::allGpuModels())
        gpu_slots = std::max(gpu_slots,
                             static_cast<std::size_t>(gpu) + 1);

    // One walk: classify every node once; heavy instances append a
    // feature row to their op type's group (groups in first-appearance
    // order, rows in graph order — the accumulation order contract).
    for (const graph::Node &node : g.nodes()) {
        switch (model_.classify(node.type)) {
          case OpClass::Cpu:
            ++plan.cpuCount_;
            break;
          case OpClass::Light:
            ++plan.lightCount_;
            break;
          case OpClass::Heavy: {
            PredictPlan::OpGroup *group = nullptr;
            for (PredictPlan::OpGroup &candidate : plan.groups_) {
                if (candidate.op == node.type) {
                    group = &candidate;
                    break;
                }
            }
            if (!group) {
                plan.groups_.emplace_back();
                group = &plan.groups_.back();
                group->op = node.type;
            }
            const std::vector<double> features =
                profile::opFeatures(node);
            group->features.insert(group->features.end(),
                                   features.begin(), features.end());
            ++group->rows;
            ++plan.heavyCount_;
            break;
          }
        }
    }

    // Per-GPU evaluation recipes: snapshot the fitted model in the
    // scaled space predict() actually computes in, or record the flat
    // per-node fallback (unusable fit -> clamped median; never
    // profiled on this GPU -> the paper's light-median rule). The
    // quadratic expansion is materialized lazily in the sense that it
    // exists only when some GPU's fitted model selected it.
    for (PredictPlan::OpGroup &group : plan.groups_) {
        group.recipes.resize(gpu_slots);
        bool any_quadratic = false;
        for (hw::GpuModel gpu : hw::allGpuModels()) {
            PredictPlan::GpuRecipe &recipe =
                group.recipes[static_cast<std::size_t>(gpu)];
            const OpTimeModel *op_model = model_.opModel(gpu, group.op);
            if (!op_model) {
                recipe.flatUs = model_.lightMedianUs;
            } else if (!op_model->usable) {
                recipe.flatUs = std::max(op_model->medianUs, 1.0);
            } else {
                recipe.viaModel = true;
                recipe.quadratic = op_model->quadratic;
                recipe.weights = op_model->model.scaledWeights();
                recipe.scales = op_model->model.scales();
                recipe.intercept = op_model->model.intercept();
                any_quadratic |= op_model->quadratic;
            }
        }
        if (any_quadratic) {
            const std::size_t d = profile::kNumOpFeatures;
            group.quadFeatures.reserve(group.rows * 2 * d);
            for (std::size_t row = 0; row < group.rows; ++row) {
                const double *raw = group.features.data() + row * d;
                for (std::size_t j = 0; j < d; ++j)
                    group.quadFeatures.push_back(raw[j]);
                for (std::size_t j = 0; j < d; ++j)
                    group.quadFeatures.push_back(raw[j] * raw[j]);
            }
        }
    }

    plan.memo_ = std::make_unique<PredictPlan::Memo>();
    plan.memo_->ready = std::vector<std::atomic<bool>>(gpu_slots);
    plan.memo_->value.assign(gpu_slots, 0.0);
    return plan;
}

} // namespace core
} // namespace ceer
