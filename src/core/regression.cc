#include "core/regression.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace ceer {
namespace core {

std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> a,
                  std::vector<double> b)
{
    const std::size_t n = a.size();
    if (n == 0 || b.size() != n)
        util::panic("solveLinearSystem: malformed system");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        if (std::abs(a[pivot][col]) < 1e-300)
            util::panic("solveLinearSystem: singular matrix");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

LinearModel
LinearModel::fit(const std::vector<std::vector<double>> &X,
                 const std::vector<double> &y, double ridge)
{
    if (X.empty() || X.size() != y.size())
        util::panic("LinearModel::fit: empty or mismatched data");
    const std::size_t d = X.front().size();
    for (const auto &row : X) {
        if (row.size() != d)
            util::panic("LinearModel::fit: ragged feature rows");
    }

    LinearModel model;
    model.scales_.assign(d, 1.0);
    for (std::size_t j = 0; j < d; ++j) {
        double max_abs = 0.0;
        for (const auto &row : X)
            max_abs = std::max(max_abs, std::abs(row[j]));
        model.scales_[j] = max_abs > 0.0 ? max_abs : 1.0;
    }

    // Normal equations over [1, x_scaled].
    const std::size_t m = d + 1;
    std::vector<std::vector<double>> ata(m,
                                         std::vector<double>(m, 0.0));
    std::vector<double> atb(m, 0.0);
    std::vector<double> scaled(m, 0.0);
    for (std::size_t i = 0; i < X.size(); ++i) {
        scaled[0] = 1.0;
        for (std::size_t j = 0; j < d; ++j)
            scaled[j + 1] = X[i][j] / model.scales_[j];
        for (std::size_t r = 0; r < m; ++r) {
            for (std::size_t c = 0; c < m; ++c)
                ata[r][c] += scaled[r] * scaled[c];
            atb[r] += scaled[r] * y[i];
        }
    }
    for (std::size_t r = 1; r < m; ++r)
        ata[r][r] += ridge;

    const std::vector<double> solution =
        solveLinearSystem(std::move(ata), std::move(atb));
    model.intercept_ = solution[0];
    model.weights_.assign(solution.begin() + 1, solution.end());
    return model;
}

double
LinearModel::predict(const std::vector<double> &x) const
{
    if (x.size() != weights_.size())
        util::panic(util::format(
            "LinearModel::predict: arity mismatch (%zu vs %zu)",
            x.size(), weights_.size()));
    double y = intercept_;
    for (std::size_t j = 0; j < weights_.size(); ++j)
        y += weights_[j] * (x[j] / scales_[j]);
    return y;
}

double
LinearModel::rSquared(const std::vector<std::vector<double>> &X,
                      const std::vector<double> &y) const
{
    if (X.size() != y.size() || y.empty())
        util::panic("LinearModel::rSquared: mismatched data");
    double mean = 0.0;
    for (double value : y)
        mean += value;
    mean /= static_cast<double>(y.size());

    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double residual = y[i] - predict(X[i]);
        ss_res += residual * residual;
        ss_tot += (y[i] - mean) * (y[i] - mean);
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

std::vector<double>
LinearModel::weights() const
{
    std::vector<double> unscaled(weights_.size());
    for (std::size_t j = 0; j < weights_.size(); ++j)
        unscaled[j] = weights_[j] / scales_[j];
    return unscaled;
}

std::string
LinearModel::serialize() const
{
    std::string out = util::format("%.17g", intercept_);
    for (std::size_t j = 0; j < weights_.size(); ++j) {
        out += util::format(";%.17g,%.17g", weights_[j], scales_[j]);
    }
    return out;
}

LinearModel
LinearModel::deserialize(const std::string &text)
{
    LinearModel model;
    std::string error;
    if (!tryDeserialize(text, &model, &error))
        util::fatal("LinearModel::deserialize: " + error);
    return model;
}

bool
LinearModel::tryDeserialize(const std::string &text, LinearModel *model,
                            std::string *error)
{
    LinearModel parsed;
    if (text.empty()) {
        *error = "empty text";
        return false;
    }
    const auto parts = util::split(text, ';');
    const auto intercept = util::parseDouble(parts[0]);
    if (!intercept) {
        *error = "bad intercept '" + parts[0] + "': " + intercept.error;
        return false;
    }
    parsed.intercept_ = intercept.value;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const auto pair = util::split(parts[i], ',');
        if (pair.size() != 2) {
            *error = "bad term '" + parts[i] + "'";
            return false;
        }
        const auto weight = util::parseDouble(pair[0]);
        if (!weight) {
            *error = "bad weight '" + pair[0] + "': " + weight.error;
            return false;
        }
        const auto scale = util::parseDouble(pair[1]);
        if (!scale) {
            *error = "bad scale '" + pair[1] + "': " + scale.error;
            return false;
        }
        // predict() divides features by the scales; anything but a
        // finite positive scale turns predictions into ±inf/NaN.
        if (!std::isfinite(scale.value) || !(scale.value > 0.0)) {
            *error = "invalid scale '" + pair[1] +
                     "' (must be finite and > 0)";
            return false;
        }
        parsed.weights_.push_back(weight.value);
        parsed.scales_.push_back(scale.value);
    }
    *model = std::move(parsed);
    return true;
}

std::vector<double>
quadraticExpand(const std::vector<double> &x)
{
    std::vector<double> expanded = x;
    expanded.reserve(2 * x.size());
    for (double value : x)
        expanded.push_back(value * value);
    return expanded;
}

std::vector<std::vector<double>>
quadraticExpandAll(const std::vector<std::vector<double>> &X)
{
    std::vector<std::vector<double>> out;
    out.reserve(X.size());
    for (const auto &row : X)
        out.push_back(quadraticExpand(row));
    return out;
}

void
quadraticExpandInto(const std::vector<std::vector<double>> &X,
                    std::vector<std::vector<double>> *out)
{
    out->resize(X.size());
    for (std::size_t i = 0; i < X.size(); ++i) {
        auto &row = (*out)[i];
        row.assign(X[i].begin(), X[i].end());
        row.reserve(2 * X[i].size());
        for (double value : X[i])
            row.push_back(value * value);
    }
}

} // namespace core
} // namespace ceer
