#include "core/recommender.h"

#include <map>

#include "util/strings.h"

#include "hw/memory.h"

#include "util/logging.h"

namespace ceer {
namespace core {

const CandidateEvaluation &
Recommendation::best() const
{
    if (bestIndex < 0 ||
        static_cast<std::size_t>(bestIndex) >= evaluations.size())
        util::panic("Recommendation::best: no feasible candidate");
    return evaluations[static_cast<std::size_t>(bestIndex)];
}

ObjectiveFn
objectiveFunction(Objective objective)
{
    if (objective == Objective::MinTrainingTime)
        return [](double hours, double) { return hours; };
    return [](double, double cost_usd) { return cost_usd; };
}

Recommendation
recommend(const CeerPredictor &predictor, const WorkloadSpec &workload,
          const std::vector<cloud::GpuInstance> &candidates,
          Objective objective, const Constraints &constraints)
{
    return recommend(predictor, workload, candidates,
                     objectiveFunction(objective), constraints);
}

Recommendation
recommend(const CeerPredictor &predictor, const WorkloadSpec &workload,
          const std::vector<cloud::GpuInstance> &candidates,
          const ObjectiveFn &objective, const Constraints &constraints)
{
    if (!workload.graph)
        util::panic("recommend: workload has no graph");
    if (!objective)
        util::panic("recommend: empty objective function");
    if (workload.graph->batchSize() > 0 &&
        workload.graph->batchSize() != workload.batchPerGpu) {
        util::panic(util::format(
            "recommend: graph was built at batch %lld but the "
            "workload declares batch %lld — per-op input sizes would "
            "not match the iteration count",
            static_cast<long long>(workload.graph->batchSize()),
            static_cast<long long>(workload.batchPerGpu)));
    }

    // Memory depends only on the GPU model (the per-GPU batch and the
    // replica footprint are the same for any k); compute it once per
    // silicon.
    std::map<hw::GpuModel, bool> fits;
    if (constraints.enforceGpuMemory) {
        for (hw::GpuModel gpu : hw::allGpuModels())
            fits[gpu] = hw::fitsInGpuMemory(*workload.graph, gpu);
    }

    Recommendation result;
    result.evaluations.reserve(candidates.size());
    for (const cloud::GpuInstance &instance : candidates) {
        CandidateEvaluation evaluation;
        evaluation.instance = instance;
        if (constraints.enforceGpuMemory)
            evaluation.fitsMemory = fits.at(instance.gpu);
        evaluation.prediction = predictor.predictTraining(
            *workload.graph, instance, workload.datasetSamples,
            workload.batchPerGpu);
        evaluation.costUsd =
            evaluation.prediction.costUsd(instance.hourlyUsd);
        evaluation.withinHourly =
            instance.hourlyUsd <= constraints.hourlyBudgetUsd +
                                      constraints.hourlyToleranceUsd;
        evaluation.withinTotal =
            evaluation.costUsd <= constraints.totalBudgetUsd;
        result.evaluations.push_back(std::move(evaluation));
    }

    for (std::size_t i = 0; i < result.evaluations.size(); ++i) {
        const CandidateEvaluation &candidate = result.evaluations[i];
        if (!candidate.feasible())
            continue;
        if (result.bestIndex < 0) {
            result.bestIndex = static_cast<int>(i);
            continue;
        }
        const CandidateEvaluation &incumbent =
            result.evaluations[static_cast<std::size_t>(
                result.bestIndex)];
        const double candidate_score = objective(
            candidate.prediction.hours, candidate.costUsd);
        const double incumbent_score = objective(
            incumbent.prediction.hours, incumbent.costUsd);
        if (candidate_score < incumbent_score)
            result.bestIndex = static_cast<int>(i);
    }
    return result;
}

} // namespace core
} // namespace ceer
