#include "core/recommender.h"

#include <array>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/strings.h"

#include "hw/memory.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace ceer {
namespace core {

const CandidateEvaluation &
Recommendation::best() const
{
    if (bestIndex < 0 ||
        static_cast<std::size_t>(bestIndex) >= evaluations.size())
        util::panic("Recommendation::best: no feasible candidate");
    return evaluations[static_cast<std::size_t>(bestIndex)];
}

ObjectiveFn
objectiveFunction(Objective objective)
{
    if (objective == Objective::MinTrainingTime)
        return [](double hours, double) { return hours; };
    return [](double, double cost_usd) { return cost_usd; };
}

Recommendation
recommend(const CeerPredictor &predictor, const WorkloadSpec &workload,
          const std::vector<cloud::GpuInstance> &candidates,
          Objective objective, const Constraints &constraints,
          int threads)
{
    return recommend(predictor, workload, candidates,
                     objectiveFunction(objective), constraints,
                     threads);
}

Recommendation
recommend(const CeerPredictor &predictor, const WorkloadSpec &workload,
          const std::vector<cloud::GpuInstance> &candidates,
          const ObjectiveFn &objective, const Constraints &constraints,
          int threads)
{
    if (!workload.graph)
        util::panic("recommend: workload has no graph");
    // Compile the workload once; every candidate scores against the
    // shared plan (its per-GPU memo is thread-safe, so the sweep can
    // fan out).
    const PredictPlan plan = predictor.compile(*workload.graph);
    return recommend(predictor, plan, workload, candidates, objective,
                     constraints, threads);
}

Recommendation
recommend(const CeerPredictor &predictor, const PredictPlan &plan,
          const WorkloadSpec &workload,
          const std::vector<cloud::GpuInstance> &candidates,
          const ObjectiveFn &objective, const Constraints &constraints,
          int threads)
{
    Recommendation result;
    recommendInto(predictor, plan, workload, candidates, objective,
                  constraints, threads, &result);
    return result;
}

MemoryFitTable
computeMemoryFits(const graph::Graph &g)
{
    MemoryFitTable fits{};
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        const std::size_t slot = static_cast<std::size_t>(gpu);
        if (slot >= fits.size())
            util::panic("recommend: GpuModel beyond fits table");
        fits[slot] = hw::fitsInGpuMemory(g, gpu);
    }
    return fits;
}

void
recommendInto(const CeerPredictor &predictor, const PredictPlan &plan,
              const WorkloadSpec &workload,
              const std::vector<cloud::GpuInstance> &candidates,
              const ObjectiveFn &objective,
              const Constraints &constraints, int threads,
              Recommendation *out, const MemoryFitTable *fits)
{
    if (!workload.graph)
        util::panic("recommend: workload has no graph");
    if (!objective)
        util::panic("recommend: empty objective function");
    if (workload.graph->batchSize() > 0 &&
        workload.graph->batchSize() != workload.batchPerGpu) {
        util::panic(util::format(
            "recommend: graph was built at batch %lld but the "
            "workload declares batch %lld — per-op input sizes would "
            "not match the iteration count",
            static_cast<long long>(workload.graph->batchSize()),
            static_cast<long long>(workload.batchPerGpu)));
    }

    // Memory depends only on the GPU model (the per-GPU batch and the
    // replica footprint are the same for any k); compute it once per
    // silicon — or take the caller's cached table, since the verdicts
    // are a pure function of the graph and the underlying estimate
    // walks every node. A fixed-size table indexed by the GpuModel
    // enum keeps this off the heap (recommendInto must not allocate
    // on a warm Recommendation).
    MemoryFitTable local{};
    if (constraints.enforceGpuMemory && !fits) {
        local = computeMemoryFits(*workload.graph);
        fits = &local;
    }

    // Each task writes only its own evaluation slot and every value is
    // a pure function of (plan, candidate), so the evaluation list is
    // byte-identical at any thread count. Every slot field is assigned
    // unconditionally — reused slots must not leak a previous sweep's
    // values.
    OBS_SPAN("recommender.sweep", "recommender");
    OBS_TIMER("recommender.sweep_us");
    OBS_COUNTER_ADD("recommender.candidates", candidates.size());

    Recommendation &result = *out;
    result.bestIndex = -1;
    result.evaluations.resize(candidates.size());
    const auto evaluate = [&](std::size_t i) {
        const cloud::GpuInstance &instance = candidates[i];
        CandidateEvaluation &evaluation = result.evaluations[i];
        evaluation.instance = instance;
        evaluation.fitsMemory =
            !constraints.enforceGpuMemory ||
            (*fits)[static_cast<std::size_t>(instance.gpu)];
        evaluation.prediction = predictor.predictTraining(
            plan, instance, workload.datasetSamples,
            workload.batchPerGpu);
        evaluation.costUsd =
            evaluation.prediction.costUsd(instance.hourlyUsd);
        evaluation.withinHourly =
            instance.hourlyUsd <= constraints.hourlyBudgetUsd +
                                      constraints.hourlyToleranceUsd;
        evaluation.withinTotal =
            evaluation.costUsd <= constraints.totalBudgetUsd;
    };

    const std::size_t effective =
        threads == 1 ? 1 : util::ThreadPool::effectiveThreads(threads);
    if (effective <= 1 || candidates.size() <= 1) {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            evaluate(i);
    } else {
        // One candidate scores in well under a microsecond once the
        // plan's heavy term is memoized, so per-candidate tasks would
        // drown in scheduling overhead. The measured-first-chunk
        // grain controller coarsens the sweep into contiguous blocks
        // (minGrain keeps the probe itself above timer noise), and
        // the shared pool's parked workers keep the fan-out cost of
        // this sub-millisecond section to one wake.
        util::ParallelOptions parallel;
        parallel.minGrain = 8;
        parallel.maxThreads = effective;
        util::ThreadPool::shared().parallelForRange(
            candidates.size(), parallel,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    evaluate(i);
            });
    }

    for (std::size_t i = 0; i < result.evaluations.size(); ++i) {
        const CandidateEvaluation &candidate = result.evaluations[i];
        if (!candidate.feasible())
            continue;
        if (result.bestIndex < 0) {
            result.bestIndex = static_cast<int>(i);
            continue;
        }
        const CandidateEvaluation &incumbent =
            result.evaluations[static_cast<std::size_t>(
                result.bestIndex)];
        const double candidate_score = objective(
            candidate.prediction.hours, candidate.costUsd);
        const double incumbent_score = objective(
            incumbent.prediction.hours, incumbent.costUsd);
        if (candidate_score < incumbent_score)
            result.bestIndex = static_cast<int>(i);
    }

    // Winner margin (runner-up score minus winner score among the
    // feasible candidates): a read-only pass taken only while
    // observability is on, so the sweep itself is untouched.
    if (obs::enabled() && result.bestIndex >= 0) {
        const CandidateEvaluation &best = result.best();
        const double best_score =
            objective(best.prediction.hours, best.costUsd);
        double runner_up = 0.0;
        bool have_runner_up = false;
        for (std::size_t i = 0; i < result.evaluations.size(); ++i) {
            if (static_cast<int>(i) == result.bestIndex)
                continue;
            const CandidateEvaluation &candidate =
                result.evaluations[i];
            if (!candidate.feasible())
                continue;
            const double score = objective(
                candidate.prediction.hours, candidate.costUsd);
            if (!have_runner_up || score < runner_up) {
                runner_up = score;
                have_runner_up = true;
            }
        }
        if (have_runner_up)
            OBS_GAUGE_SET("recommender.winner_margin",
                          runner_up - best_score);
    }
}

} // namespace core
} // namespace ceer
