/**
 * @file
 * Least-squares regression used by Ceer's compute-time and
 * communication models.
 *
 * Ceer fits small models (1-6 features, tens to hundreds of points):
 * ordinary least squares via normal equations with feature scaling and
 * a tiny ridge term for conditioning is exactly right. Quadratic models
 * are linear models over quadratically-expanded features.
 */

#ifndef CEER_CORE_REGRESSION_H
#define CEER_CORE_REGRESSION_H

#include <string>
#include <vector>

namespace ceer {
namespace core {

/** y ~= w . x + b fit by (ridge-stabilized) least squares. */
class LinearModel
{
  public:
    /** Constructs a zero model (predicts 0). */
    LinearModel() = default;

    /**
     * Fits a model to rows @p X and targets @p y.
     *
     * Features are internally rescaled to [0, 1] by their column
     * maxima before solving, which keeps the normal equations well
     * conditioned for byte-sized features (~1e8).
     *
     * @param X     One feature vector per observation (equal lengths).
     * @param y     Targets, same length as X.
     * @param ridge Diagonal regularizer in scaled space.
     */
    static LinearModel fit(const std::vector<std::vector<double>> &X,
                           const std::vector<double> &y,
                           double ridge = 1e-8);

    /** Predicted value for @p x (must match the fitted arity). */
    double predict(const std::vector<double> &x) const;

    /** Coefficient of determination on a dataset. */
    double rSquared(const std::vector<std::vector<double>> &X,
                    const std::vector<double> &y) const;

    /** Weights in original (unscaled) feature units. */
    std::vector<double> weights() const;

    /**
     * Weights in the internal scaled feature space, as predict() uses
     * them: predict(x) = intercept + sum_j scaledWeights()[j] *
     * (x[j] / scales()[j]). Exposed so a compiled prediction plan can
     * replay the exact same operation sequence lane-wise and stay
     * bit-identical to predict().
     */
    const std::vector<double> &scaledWeights() const { return weights_; }

    /** Per-feature divisors paired with scaledWeights(). */
    const std::vector<double> &scales() const { return scales_; }

    /** Intercept term. */
    double intercept() const { return intercept_; }

    /** Number of features the model expects. */
    std::size_t featureCount() const { return weights_.size(); }

    /** Compact text form: "b;w1,s1;w2,s2;...". */
    std::string serialize() const;

    /** Inverse of serialize(); fatals on malformed text. */
    static LinearModel deserialize(const std::string &text);

    /**
     * Exception-free variant of deserialize().
     *
     * Rejects malformed numbers and any scale that is not a finite
     * positive value (predict() divides by the scales; a zero scale
     * would silently yield ±inf/NaN predictions).
     *
     * @param text  Serialized form.
     * @param model Receives the parsed model on success.
     * @param error Receives a description on failure.
     * @return True on success.
     */
    static bool tryDeserialize(const std::string &text,
                               LinearModel *model, std::string *error);

  private:
    std::vector<double> weights_; ///< In scaled feature space.
    std::vector<double> scales_;  ///< Per-feature divisors.
    double intercept_ = 0.0;
};

/**
 * Quadratic feature expansion: appends the square of each feature.
 * A LinearModel over this expansion is Ceer's "quadratic fit".
 */
std::vector<double> quadraticExpand(const std::vector<double> &x);

/** Applies quadraticExpand to every row. */
std::vector<std::vector<double>>
quadraticExpandAll(const std::vector<std::vector<double>> &X);

/**
 * quadraticExpandAll into a caller-owned buffer, reusing row capacity
 * across calls. The trainer expands one (GPU, op) cell after another;
 * routing them through one scratch buffer avoids reallocating the
 * whole row-of-rows structure per cell.
 */
void quadraticExpandInto(const std::vector<std::vector<double>> &X,
                         std::vector<std::vector<double>> *out);

/**
 * Solves the square system A x = b in place via Gaussian elimination
 * with partial pivoting. Fatals on singular systems.
 */
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b);

} // namespace core
} // namespace ceer

#endif // CEER_CORE_REGRESSION_H
