/**
 * @file
 * The trained Ceer model: everything Sec. IV of the paper learns from
 * the operation-level profiles of the 8 training CNNs.
 *
 *  - per-(GPU, heavy op) input-size regressions (linear or quadratic);
 *  - GPU-, CNN- and op-oblivious median estimates for light GPU ops
 *    and for CPU ops;
 *  - per-(GPU, k) communication-overhead regressions on the CNN's
 *    parameter count.
 */

#ifndef CEER_CORE_CEER_MODEL_H
#define CEER_CORE_CEER_MODEL_H

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/regression.h"
#include "graph/op_type.h"
#include "hw/gpu_spec.h"

namespace ceer {

namespace io {
class CbfFile;
}

namespace core {

/** How Ceer treats an op type (a measured property, Sec. III). */
enum class OpClass { Heavy, Light, Cpu };

/** Compute-time model of one heavy op type on one GPU model. */
struct OpTimeModel
{
    graph::OpType op = graph::OpType::Identity; ///< Operation type.
    hw::GpuModel gpu = hw::GpuModel::V100;      ///< GPU model.
    bool quadratic = false; ///< Quadratic feature expansion in use.
    LinearModel model;      ///< Fitted regression.
    double r2 = 0.0;        ///< Training-set R^2.
    double medianUs = 0.0;  ///< Fallback when regression is unusable.
    bool usable = false;    ///< Enough distinct points to regress.
    std::size_t points = 0; ///< Instances used for the fit.

    /**
     * Predicted compute time for raw (unexpanded) features, clamped to
     * a small positive floor.
     */
    double predictUs(const std::vector<double> &features) const;
};

/** Communication-overhead model S_GPU(k, params), Sec. IV-C. */
struct CommModel
{
    /** One per-(GPU, k) linear fit on the parameter count. */
    struct Fit
    {
        LinearModel model; ///< overhead_us ~= a + b * params.
        double r2 = 0.0;   ///< Training-set R^2.
        bool valid = false;
    };

    /// Index 0 holds the k=1 host<->GPU overhead fit; index k-1 the
    /// *additional* data-parallel overhead D_k for k >= 2
    /// (S_k = S_1 + D_k).
    std::map<hw::GpuModel, std::vector<Fit>> fits;

    /**
     * Total per-iteration overhead estimate in microseconds.
     * Extrapolates linearly in k beyond the largest trained width.
     *
     * @param gpu         GPU model.
     * @param num_gpus    Data-parallel width (>= 1).
     * @param param_count Trainable parameters of the target CNN.
     */
    double overheadUs(hw::GpuModel gpu, int num_gpus,
                      double param_count) const;
};

/** Everything trainCeer() produces. */
struct CeerModel
{
    /** Per-(GPU, op) regressions for heavy ops. */
    std::map<std::pair<hw::GpuModel, graph::OpType>, OpTimeModel>
        opModels;

    /** Op types classified heavy (mean time on P2 above threshold). */
    std::set<graph::OpType> heavyOps;

    /** Sample median of light GPU op times, pooled (Sec. IV-B). */
    double lightMedianUs = 0.0;

    /** Sample median of CPU op times, pooled. */
    double cpuMedianUs = 0.0;

    /** Communication model. */
    CommModel comm;

    /** Classification threshold used (mean us on the threshold GPU). */
    double heavyThresholdUs = 500.0;

    /** Classifies an op type. Unseen GPU ops default to Light. */
    OpClass classify(graph::OpType op) const;

    /** Model for (gpu, op) or nullptr when absent. */
    const OpTimeModel *opModel(hw::GpuModel gpu, graph::OpType op) const;

    /** Range [min, max] of op-model R^2 values (paper: 0.84-0.98). */
    std::pair<double, double> opModelR2Range() const;

    /**
     * Writes the model as a line-oriented text document.
     *
     * All numeric fields are emitted at full precision (%.17g), so a
     * reloaded model predicts bit-identically to the original.
     */
    void save(std::ostream &out) const;

    /** Parses a document produced by save(); fatal on malformed input. */
    static CeerModel load(std::istream &in);

    /**
     * Exception-free variant of load().
     *
     * @param in    Input stream.
     * @param model Receives the parsed model on success.
     * @param error Receives a "line N: ..." description on failure.
     * @return True on success.
     */
    static bool tryLoad(std::istream &in, CeerModel *model,
                        std::string *error);

    /**
     * Serializes the model as CBF (docs/file_formats.md). Regression
     * fits are embedded as their %.17g serialize() text, so both
     * dialects round-trip predictions bit-identically.
     */
    void saveCbf(std::ostream &out) const;

    /** Parses a validated CBF file produced by saveCbf(). */
    static bool tryLoadCbf(const io::CbfFile &file, CeerModel *model,
                           std::string *error);

    /**
     * Loads @p path in either format, sniffed by magic bytes: CBF
     * files take the mmap zero-copy path (falling back to the checked
     * streaming reader when mapping fails), anything else parses as
     * the text dialect. @p model is untouched on failure.
     */
    static bool tryLoadFile(const std::string &path, CeerModel *model,
                            std::string *error);

    /** tryLoadFile(), fatal on failure. */
    static CeerModel loadFile(const std::string &path);
};

} // namespace core
} // namespace ceer

#endif // CEER_CORE_CEER_MODEL_H
