/**
 * @file
 * Training time and cost prediction (paper Eqs. 1-3).
 *
 * Per-iteration time is the sum over all graph operations of their
 * estimated compute times — regression for heavy ops, medians for
 * light/CPU ops — plus the communication overhead S_GPU(k, params).
 * Total time scales by the iteration count D / (k * B); cost is time
 * multiplied by the instance's hourly price.
 */

#ifndef CEER_CORE_PREDICTOR_H
#define CEER_CORE_PREDICTOR_H

#include "cloud/instances.h"
#include "core/ceer_model.h"
#include "core/predict_plan.h"
#include "graph/graph.h"

namespace ceer {
namespace core {

/** Ablation switches (all on = full Ceer). */
struct PredictOptions
{
    /** Include S_GPU (Eq. 2). Off reproduces the Sec. IV-A ablation. */
    bool includeComm = true;

    /**
     * Include the median terms for light GPU and CPU ops. Off
     * reproduces the heavy-only ablation of Sec. IV-B (15-25% error).
     */
    bool includeLightAndCpu = true;
};

/** A full training-run prediction. */
struct TrainingPrediction
{
    std::int64_t iterations = 0; ///< D / (k * B).
    double iterationUs = 0.0;    ///< Predicted per-iteration time.
    double hours = 0.0;          ///< Predicted total training time.

    /** Cost at @p hourly_usd dollars per hour. */
    double
    costUsd(double hourly_usd) const
    {
        return hours * hourly_usd;
    }
};

/**
 * Attribution of a per-iteration prediction (Eq. 2), for explaining
 * where Ceer thinks the time goes.
 */
struct PredictionBreakdown
{
    double heavyUs = 0.0; ///< Sum of heavy-op regression estimates.
    double lightUs = 0.0; ///< n_l * light median.
    double cpuUs = 0.0;   ///< n_c * CPU median.
    double commUs = 0.0;  ///< S_GPU(k, params).

    /** Total per-iteration prediction. */
    double
    totalUs() const
    {
        return heavyUs + lightUs + cpuUs + commUs;
    }

    /** Per-op-type contribution of the heavy term, descending. */
    std::vector<std::pair<graph::OpType, double>> heavyByType;
};

/**
 * Scales a per-iteration prediction into a full TrainingPrediction:
 * iterations = ceil(D / (k * B)), hours = iterations * iterationUs /
 * 3.6e9. Shared by CeerPredictor, the baseline predictors and the
 * evaluation harness so every engine's hour/cost arithmetic is
 * identical by construction. Panics when D or B is non-positive.
 */
TrainingPrediction makeTrainingPrediction(double iteration_us,
                                          int num_gpus,
                                          std::int64_t dataset_samples,
                                          std::int64_t batch_per_gpu);

/** One (GPU, k) candidate of a predictBatch call. */
struct PredictRequest
{
    hw::GpuModel gpu = hw::GpuModel::V100; ///< GPU model.
    int numGpus = 1;                       ///< Data-parallel width k.
};

/** Applies a trained CeerModel to unseen CNNs. */
class CeerPredictor
{
  public:
    /** @param model Trained model; copied into the predictor. */
    explicit CeerPredictor(CeerModel model);

    /** The underlying model. */
    const CeerModel &model() const { return model_; }

    /**
     * Predicted compute time of a single op instance on @p gpu.
     * Heavy ops with no trained model fall back to the light median
     * (the paper's rule for unseen operations, Sec. IV-D).
     */
    double predictOpUs(const graph::Node &node, hw::GpuModel gpu) const;

    /**
     * Predicted per-iteration training time (Eq. 2), via the scalar
     * node walk: one classification per node, heavy terms grouped per
     * op type. For repeated evaluations of one graph, compile() a
     * PredictPlan instead — bit-identical and orders of magnitude
     * faster.
     *
     * @param g        Training graph at the per-GPU batch size.
     * @param gpu      GPU model.
     * @param num_gpus Data-parallel width k.
     * @param options  Ablation switches.
     */
    double predictIterationUs(const graph::Graph &g, hw::GpuModel gpu,
                              int num_gpus,
                              const PredictOptions &options = {}) const;

    /**
     * Predicted full-training time (Eq. 2 scaled by D / (k * B)).
     *
     * @param g               Training graph at the per-GPU batch.
     * @param gpu             GPU model.
     * @param num_gpus        Data-parallel width.
     * @param dataset_samples Dataset size D.
     * @param batch_per_gpu   Per-GPU batch B.
     * @param options         Ablation switches.
     */
    TrainingPrediction
    predictTraining(const graph::Graph &g, hw::GpuModel gpu,
                    int num_gpus, std::int64_t dataset_samples,
                    std::int64_t batch_per_gpu,
                    const PredictOptions &options = {}) const;

    /**
     * Attributes a per-iteration prediction to heavy ops (per type),
     * light ops, CPU ops and communication. The breakdown's total
     * equals predictIterationUs with default options.
     */
    PredictionBreakdown breakdown(const graph::Graph &g,
                                  hw::GpuModel gpu, int num_gpus) const;

    /** Convenience: predictTraining for a catalog instance. */
    TrainingPrediction
    predictTraining(const graph::Graph &g,
                    const cloud::GpuInstance &instance,
                    std::int64_t dataset_samples,
                    std::int64_t batch_per_gpu,
                    const PredictOptions &options = {}) const;

    /**
     * Compiles @p g against this predictor's model: one graph walk
     * produces a PredictPlan (dense per-op-type feature matrices,
     * per-GPU evaluation recipes, cached counts) that the plan
     * overloads below evaluate in a handful of dense matrix-vector
     * products. Bit-identical to the scalar node walk; see
     * predict_plan.h for the determinism contract. The plan is only
     * meaningful with the predictor that compiled it.
     */
    PredictPlan compile(const graph::Graph &g) const;

    /** Plan overload of predictIterationUs (Eq. 2, memoized). */
    double predictIterationUs(const PredictPlan &plan, hw::GpuModel gpu,
                              int num_gpus,
                              const PredictOptions &options = {}) const;

    /** Plan overload of predictTraining. */
    TrainingPrediction
    predictTraining(const PredictPlan &plan, hw::GpuModel gpu,
                    int num_gpus, std::int64_t dataset_samples,
                    std::int64_t batch_per_gpu,
                    const PredictOptions &options = {}) const;

    /** Plan overload of predictTraining for a catalog instance. */
    TrainingPrediction
    predictTraining(const PredictPlan &plan,
                    const cloud::GpuInstance &instance,
                    std::int64_t dataset_samples,
                    std::int64_t batch_per_gpu,
                    const PredictOptions &options = {}) const;

    /**
     * Evaluates every (GPU, k) candidate against one compiled plan.
     * Element i is predictIterationUs(plan, requests[i], ...); across
     * requests that share a GPU only the communication term is
     * recomputed (the heavy term is memoized per GPU in the plan).
     */
    std::vector<double>
    predictBatch(const PredictPlan &plan,
                 const std::vector<PredictRequest> &requests,
                 const PredictOptions &options = {}) const;

  private:
    CeerModel model_;
};

} // namespace core
} // namespace ceer

#endif // CEER_CORE_PREDICTOR_H
