/**
 * @file
 * Compiled prediction plans: the one-time workload featurization half
 * of the predictor's compile -> evaluate split.
 *
 * Eq. 2 is additive over graph operations, so nothing about a CNN's
 * contribution to a prediction depends on the candidate (GPU, k)
 * being scored — yet the scalar path re-walks the graph, re-classifies
 * every node and re-extracts features per call. CeerPredictor::compile
 * walks the graph exactly once and produces a PredictPlan:
 *
 *  - per heavy op type, a dense row-major feature matrix (one row per
 *    node instance, profile::kNumOpFeatures columns) plus the
 *    quadratically-expanded matrix, materialized only when some
 *    (GPU, op) model actually selected the quadratic fit;
 *  - the evaluation recipe per GPU (scaled-space weights/scales/
 *    intercept snapshot, or the flat per-node fallback);
 *  - light / CPU op counts and the cached parameter count.
 *
 * predictIterationUs(plan, gpu, k) then reduces to one dense
 * matrix-vector product per heavy op type with the per-node
 * max(., 1.0) clamp applied lane-wise in a vectorized kernel — and a
 * per-(plan, GPU) memo caches that heavy sum, so scoring the same GPU
 * at another k recomputes only the communication-overhead term.
 *
 * Determinism contract: evaluating a plan is bit-identical to the
 * scalar node walk (predictIterationUs(graph, ...)) for every graph,
 * GPU and k — the kernel replays LinearModel::predict's exact
 * operation sequence per lane and both paths accumulate in the same
 * grouped order (pinned by PredictorTest.CompiledPlanMatchesNodeWalk*).
 * Plans are immutable after compile() apart from the memo, whose
 * lazy fill is thread-safe (double-checked atomics + mutex), so one
 * plan may be evaluated from many threads concurrently.
 */

#ifndef CEER_CORE_PREDICT_PLAN_H
#define CEER_CORE_PREDICT_PLAN_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/op_type.h"
#include "hw/gpu_spec.h"

namespace ceer {
namespace core {

class CeerPredictor;

/**
 * A graph compiled against one predictor's model. Obtain via
 * CeerPredictor::compile(); evaluate via the plan overloads of
 * predictIterationUs / predictTraining / predictBatch on the SAME
 * predictor (the plan snapshots the op models, but the communication
 * model is read from the live predictor at evaluation time).
 */
class PredictPlan
{
  public:
    PredictPlan(PredictPlan &&) = default;
    PredictPlan &operator=(PredictPlan &&) = default;

    /** Number of nodes in the compiled graph. */
    std::size_t nodeCount() const { return nodeCount_; }

    /** Heavy op-type groups (first-appearance order). */
    std::size_t groupCount() const { return groups_.size(); }

    /** Total heavy node instances across all groups. */
    std::size_t heavyCount() const { return heavyCount_; }

    /** Nodes classified light. */
    std::size_t lightCount() const { return lightCount_; }

    /** Nodes classified CPU. */
    std::size_t cpuCount() const { return cpuCount_; }

    /** Cached trainable-parameter count of the compiled graph. */
    double paramCount() const { return paramCount_; }

    /**
     * Memoized heavy-term sum for @p gpu: the sum over all heavy nodes
     * of their clamped regression estimates, computed by the
     * vectorized kernel on first use and cached. Thread-safe.
     */
    double heavyUs(hw::GpuModel gpu) const;

    /** Light-term total: lightCount() * the snapshotted light median. */
    double lightUs() const;

    /** CPU-term total: cpuCount() * the snapshotted CPU median. */
    double cpuUs() const;

    /**
     * Approximate resident size in bytes (feature matrices, recipes,
     * memo). Used for cache accounting — an estimate, not an exact
     * heap measurement.
     */
    std::size_t approxBytes() const;

  private:
    friend class CeerPredictor;
    PredictPlan() = default;

    /** How one heavy op-type group is evaluated on one GPU. */
    struct GpuRecipe
    {
        /** True: dense matvec over the group's matrix. False: every
         *  node contributes flatUs (unusable-model clamped median, or
         *  the light-median fallback for never-profiled ops). */
        bool viaModel = false;
        bool quadratic = false;       ///< Use the expanded matrix.
        std::vector<double> weights;  ///< Scaled-space weights.
        std::vector<double> scales;   ///< Per-feature divisors.
        double intercept = 0.0;
        double flatUs = 0.0;
    };

    /** All instances of one heavy op type, in graph order. */
    struct OpGroup
    {
        graph::OpType op = graph::OpType::Identity;
        std::size_t rows = 0;
        /** Row-major rows x kNumOpFeatures raw feature matrix. */
        std::vector<double> features;
        /** Row-major rows x 2*kNumOpFeatures quadratic expansion;
         *  empty unless some GPU's fitted model is quadratic. */
        std::vector<double> quadFeatures;
        /** Indexed by static_cast<std::size_t>(hw::GpuModel). */
        std::vector<GpuRecipe> recipes;
    };

    /** Lazily-filled per-GPU heavy-sum cache. Lives behind a
     *  unique_ptr so the plan stays movable. */
    struct Memo
    {
        std::mutex mutex;
        std::vector<std::atomic<bool>> ready;
        std::vector<double> value;
    };

    std::vector<OpGroup> groups_;
    std::size_t nodeCount_ = 0;
    std::size_t heavyCount_ = 0;
    std::size_t lightCount_ = 0;
    std::size_t cpuCount_ = 0;
    double lightMedianUs_ = 0.0;
    double cpuMedianUs_ = 0.0;
    double paramCount_ = 0.0;
    std::unique_ptr<Memo> memo_;
};

namespace plan_kernel {

/**
 * The plan evaluation kernel: for each row i of the row-major
 * @p n x @p d matrix @p x, computes the clamped linear estimate
 *
 *   max(intercept + sum_j w[j] * (x[i*d + j] / s[j]), 1.0)
 *
 * and returns the left-to-right sum over rows. The per-lane operation
 * sequence is exactly LinearModel::predict followed by OpTimeModel's
 * clamp, and the translation unit is compiled with -ffp-contract=off,
 * so the result is bit-identical to the scalar per-node walk on every
 * clone the runtime dispatches to.
 */
double dotClampSum(const double *x, std::size_t n, std::size_t d,
                   const double *w, const double *s, double intercept);

} // namespace plan_kernel

} // namespace core
} // namespace ceer

#endif // CEER_CORE_PREDICT_PLAN_H
