/**
 * @file
 * AWS GPU instance catalog with the paper's On-Demand prices.
 *
 * The paper evaluates 8 real instances (Sec. V) and, where AWS offers
 * no k-GPU instance (e.g. a 3-GPU P2), synthesizes a proxy priced at
 * k/N of the N-GPU instance. Sec. V's final scenario also reprices the
 * catalog with commodity market ratios (1 : 0.31 : 0.18 : 0.05 for
 * V100 : T4 : M60 : K80).
 */

#ifndef CEER_CLOUD_INSTANCES_H
#define CEER_CLOUD_INSTANCES_H

#include <iosfwd>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"

namespace ceer {
namespace cloud {

/** One rentable GPU instance (real or proxy). */
struct GpuInstance
{
    std::string name;    ///< e.g. "p3.2xlarge" or "p2.3gpu-proxy".
    hw::GpuModel gpu;    ///< GPU silicon on the instance.
    int numGpus = 1;     ///< GPUs used for training.
    double hourlyUsd = 0.0; ///< Rental price per hour.
    bool isProxy = false;   ///< Synthesized per the paper's rule.

    /** Dollars per second of use. */
    double perSecondUsd() const { return hourlyUsd / 3600.0; }
};

/** A set of rentable instances with lookup helpers. */
class InstanceCatalog
{
  public:
    /**
     * The paper's AWS On-Demand catalog: the four 1-GPU instances
     * (p3.2xlarge $3.06, p2.xlarge $0.90, g4dn.2xlarge $0.752,
     * g3s.xlarge $0.75), the four multi-GPU instances (p3.8xlarge
     * $12.24, p2.8xlarge $7.20, g4dn.12xlarge $3.912, g3.16xlarge
     * $4.56), and 2/3-GPU proxies priced at k/N of the multi-GPU
     * instance.
     */
    static InstanceCatalog awsOnDemand();

    /**
     * Market-ratio repricing (paper Sec. V, Fig. 12): per-GPU hourly
     * prices $3.06 (P3), $0.95 (G4), $0.55 (G3), $0.15 (P2), with
     * multi-GPU instances linearly scaled.
     */
    static InstanceCatalog marketPriced();

    /** All instances. */
    const std::vector<GpuInstance> &instances() const
    {
        return instances_;
    }

    /** Instance by name; fatals if absent. */
    const GpuInstance &find(const std::string &name) const;

    /** The instance with @p gpu and @p num_gpus; fatals if absent. */
    const GpuInstance &find(hw::GpuModel gpu, int num_gpus) const;

    /** Instances of one GPU family. */
    std::vector<GpuInstance> forGpu(hw::GpuModel gpu) const;

    /** Instances whose hourly price is within @p hourly_budget. */
    std::vector<GpuInstance> withinHourlyBudget(
        double hourly_budget) const;

    /**
     * For each family, the largest (most GPUs) instance whose hourly
     * price does not exceed @p hourly_budget + @p tolerance — the
     * paper's hourly-budget scenario selection rule, which tolerates
     * small violations (it admits the $3.06 P3 and $3.42 3-GPU G3
     * under a $3 budget).
     */
    std::vector<GpuInstance> largestPerFamilyWithin(
        double hourly_budget, double tolerance) const;

    /** Adds an instance (used by tests and custom catalogs). */
    void add(GpuInstance instance);

    /**
     * Loads a user-supplied catalog from CSV with the header
     * `name,gpu,gpus,hourly_usd` — the adoption path for other
     * regions, spot pricing, or other clouds' GPU offerings (the GPU
     * column still names one of the four modeled silicons).
     */
    static InstanceCatalog fromCsv(std::istream &in);

    /** Writes the catalog in the fromCsv format. */
    void saveCsv(std::ostream &out) const;

  private:
    std::vector<GpuInstance> instances_;
};

} // namespace cloud
} // namespace ceer

#endif // CEER_CLOUD_INSTANCES_H
