/**
 * @file
 * AWS GPU instance catalog with the paper's On-Demand prices.
 *
 * The paper evaluates 8 real instances (Sec. V) and, where AWS offers
 * no k-GPU instance (e.g. a 3-GPU P2), synthesizes a proxy priced at
 * k/N of the N-GPU instance. Sec. V's final scenario also reprices the
 * catalog with commodity market ratios (1 : 0.31 : 0.18 : 0.05 for
 * V100 : T4 : M60 : K80).
 */

#ifndef CEER_CLOUD_INSTANCES_H
#define CEER_CLOUD_INSTANCES_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"

namespace ceer {

namespace io {
class CbfFile;
}

namespace cloud {

/** One rentable GPU instance (real or proxy). */
struct GpuInstance
{
    std::string name;    ///< e.g. "p3.2xlarge" or "p2.3gpu-proxy".
    hw::GpuModel gpu;    ///< GPU silicon on the instance.
    int numGpus = 1;     ///< GPUs used for training.
    double hourlyUsd = 0.0; ///< Rental price per hour.
    bool isProxy = false;   ///< Synthesized per the paper's rule.

    /** Dollars per second of use. */
    double perSecondUsd() const { return hourlyUsd / 3600.0; }
};

/** A set of rentable instances with lookup helpers. */
class InstanceCatalog
{
  public:
    /**
     * The paper's AWS On-Demand catalog: the four 1-GPU instances
     * (p3.2xlarge $3.06, p2.xlarge $0.90, g4dn.2xlarge $0.752,
     * g3s.xlarge $0.75), the four multi-GPU instances (p3.8xlarge
     * $12.24, p2.8xlarge $7.20, g4dn.12xlarge $3.912, g3.16xlarge
     * $4.56), and 2/3-GPU proxies priced at k/N of the multi-GPU
     * instance.
     */
    static InstanceCatalog awsOnDemand();

    /**
     * Market-ratio repricing (paper Sec. V, Fig. 12): per-GPU hourly
     * prices $3.06 (P3), $0.95 (G4), $0.55 (G3), $0.15 (P2), with
     * multi-GPU instances linearly scaled.
     */
    static InstanceCatalog marketPriced();

    /** All instances. */
    const std::vector<GpuInstance> &instances() const
    {
        return instances_;
    }

    /** Instance by name; fatals if absent. */
    const GpuInstance &find(const std::string &name) const;

    /** The instance with @p gpu and @p num_gpus; fatals if absent. */
    const GpuInstance &find(hw::GpuModel gpu, int num_gpus) const;

    /** Instances of one GPU family. */
    std::vector<GpuInstance> forGpu(hw::GpuModel gpu) const;

    /** Instances whose hourly price is within @p hourly_budget. */
    std::vector<GpuInstance> withinHourlyBudget(
        double hourly_budget) const;

    /**
     * For each family, the largest (most GPUs) instance whose hourly
     * price does not exceed @p hourly_budget + @p tolerance — the
     * paper's hourly-budget scenario selection rule, which tolerates
     * small violations (it admits the $3.06 P3 and $3.42 3-GPU G3
     * under a $3 budget).
     */
    std::vector<GpuInstance> largestPerFamilyWithin(
        double hourly_budget, double tolerance) const;

    /** Adds an instance (used by tests and custom catalogs). */
    void add(GpuInstance instance);

    /**
     * Loads a user-supplied catalog from CSV with the header
     * `name,gpu,gpus,hourly_usd` — the adoption path for other
     * regions, spot pricing, or other clouds' GPU offerings (the GPU
     * column still names one of the four modeled silicons).
     */
    static InstanceCatalog fromCsv(std::istream &in);

    /** Exception-free variant of fromCsv(). @p catalog untouched on
     *  failure; @p error carries row/column context. */
    static bool tryFromCsv(std::istream &in, InstanceCatalog *catalog,
                           std::string *error);

    /** Writes the catalog in the fromCsv format. */
    void saveCsv(std::ostream &out) const;

    /**
     * Serializes the catalog as CBF (docs/file_formats.md). Both
     * dialects store `name,gpu,gpus,hourly_usd` — the proxy flag is a
     * property of the built-in paper catalogs, not of user-supplied
     * files — so CSV/CBF conversions are exact in both directions.
     */
    void saveCbf(std::ostream &out) const;

    /** Parses a validated CBF file produced by saveCbf(). */
    static bool tryLoadCbf(const io::CbfFile &file,
                           InstanceCatalog *catalog, std::string *error);

    /**
     * Loads @p path in either format, sniffed by magic bytes: CBF
     * files take the mmap zero-copy path (falling back to the checked
     * streaming reader when mapping fails), anything else parses as
     * the CSV dialect. @p catalog is untouched on failure.
     */
    static bool tryLoadFile(const std::string &path,
                            InstanceCatalog *catalog, std::string *error);

    /** tryLoadFile(), fatal on failure. */
    static InstanceCatalog fromFile(const std::string &path);

    /**
     * Deterministic synthetic fleet of @p count instance types across
     * the four modeled GPU silicons (1-8 GPUs each, market-anchored
     * prices with ±30% jitter) for fleet-scale recommendation sweeps.
     * Prices are canonicalized through the CSV %.6g dialect so a
     * generated fleet serializes identically via CSV and CBF.
     */
    static InstanceCatalog syntheticFleet(std::size_t count,
                                          std::uint64_t seed = 42);

  private:
    std::vector<GpuInstance> instances_;
};

} // namespace cloud
} // namespace ceer

#endif // CEER_CLOUD_INSTANCES_H
