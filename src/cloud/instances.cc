#include "cloud/instances.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "io/cbf.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/random.h"
#include "util/strings.h"

namespace ceer {
namespace cloud {

using hw::GpuModel;

namespace {

/** Real AWS instance names for the 1-GPU and multi-GPU offerings. */
struct FamilyOffering
{
    GpuModel gpu;
    const char *singleName;
    double singleUsd;
    const char *multiName;
    int multiGpus;
    double multiUsd;
};

constexpr FamilyOffering kAws[] = {
    {GpuModel::V100, "p3.2xlarge", 3.06, "p3.8xlarge", 4, 12.24},
    {GpuModel::K80, "p2.xlarge", 0.90, "p2.8xlarge", 8, 7.20},
    {GpuModel::T4, "g4dn.2xlarge", 0.752, "g4dn.12xlarge", 4, 3.912},
    {GpuModel::M60, "g3s.xlarge", 0.75, "g3.16xlarge", 4, 4.56},
};

} // namespace

InstanceCatalog
InstanceCatalog::awsOnDemand()
{
    InstanceCatalog catalog;
    for (const auto &family : kAws) {
        catalog.add({family.singleName, family.gpu, 1, family.singleUsd,
                     false});
        const double per_gpu =
            family.multiUsd / static_cast<double>(family.multiGpus);
        for (int k = 2; k <= 4; ++k) {
            if (k == family.multiGpus) {
                catalog.add({family.multiName, family.gpu, k,
                             family.multiUsd, false});
            } else {
                // Paper's proxy rule: use the multi-GPU instance with
                // only k GPUs active, at k/N of its rental cost.
                catalog.add({util::format("%s-%dgpu-proxy",
                                          family.multiName, k),
                             family.gpu, k, per_gpu * k, true});
            }
        }
    }
    return catalog;
}

InstanceCatalog
InstanceCatalog::marketPriced()
{
    // Per-GPU hourly prices from commodity market ratios (Sec. V).
    const std::map<GpuModel, double> per_gpu = {
        {GpuModel::V100, 3.06},
        {GpuModel::T4, 0.95},
        {GpuModel::M60, 0.55},
        {GpuModel::K80, 0.15},
    };
    InstanceCatalog catalog;
    for (const auto &family : kAws) {
        const double unit = per_gpu.at(family.gpu);
        for (int k = 1; k <= 4; ++k) {
            catalog.add({util::format("%s-market-%dgpu",
                                      hw::gpuFamilyName(family.gpu)
                                          .c_str(),
                                      k),
                         family.gpu, k, unit * k, k != 1});
        }
    }
    return catalog;
}

void
InstanceCatalog::add(GpuInstance instance)
{
    instances_.push_back(std::move(instance));
}

InstanceCatalog
InstanceCatalog::fromCsv(std::istream &in)
{
    InstanceCatalog catalog;
    std::string error;
    if (!tryFromCsv(in, &catalog, &error))
        util::fatal("InstanceCatalog::fromCsv: " + error);
    return catalog;
}

bool
InstanceCatalog::tryFromCsv(std::istream &in, InstanceCatalog *catalog,
                            std::string *error)
{
    InstanceCatalog parsed;
    std::vector<std::vector<std::string>> rows;
    if (!util::tryReadCsv(in, &rows, error))
        return false;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const auto &row = rows[i];
        if (row.size() < 4) {
            *error = util::format(
                "row %zu has %zu fields (need name,gpu,gpus,"
                "hourly_usd)", i, row.size());
            return false;
        }
        GpuInstance instance;
        instance.name = row[0];
        if (!hw::gpuModelFromName(row[1], instance.gpu)) {
            *error = util::format("row %zu: unknown GPU '%s'", i,
                                  row[1].c_str());
            return false;
        }
        const auto gpus = util::parseInt64(row[2]);
        if (!gpus) {
            *error = util::format("row %zu column 3 (gpus): %s: '%s'",
                                  i, gpus.error, row[2].c_str());
            return false;
        }
        instance.numGpus = static_cast<int>(gpus.value);
        const auto price = util::parseDouble(row[3]);
        if (!price) {
            *error = util::format(
                "row %zu column 4 (hourly_usd): %s: '%s'", i,
                price.error, row[3].c_str());
            return false;
        }
        instance.hourlyUsd = price.value;
        if (instance.numGpus < 1 || !(instance.hourlyUsd > 0.0) ||
            !std::isfinite(instance.hourlyUsd)) {
            *error = util::format("row %zu: bad row for '%s'", i,
                                  instance.name.c_str());
            return false;
        }
        parsed.add(std::move(instance));
    }
    *catalog = std::move(parsed);
    return true;
}

void
InstanceCatalog::saveCsv(std::ostream &out) const
{
    util::CsvWriter writer(out);
    writer.writeRow({"name", "gpu", "gpus", "hourly_usd"});
    for (const auto &instance : instances_) {
        writer.writeRow({instance.name, hw::gpuModelName(instance.gpu),
                         std::to_string(instance.numGpus),
                         util::format("%.6g", instance.hourlyUsd)});
    }
}

void
InstanceCatalog::saveCbf(std::ostream &out) const
{
    io::CbfBuilder builder;
    builder.addBytes("schema", "ceer.catalog.v1");
    std::vector<std::string> names, gpus;
    std::vector<std::int64_t> num_gpus;
    std::vector<double> prices;
    for (const auto &instance : instances_) {
        names.push_back(instance.name);
        gpus.push_back(hw::gpuModelName(instance.gpu));
        num_gpus.push_back(instance.numGpus);
        prices.push_back(instance.hourlyUsd);
    }
    io::addStringColumn(&builder, "cat.name", names);
    io::addStringColumn(&builder, "cat.gpu", gpus);
    builder.addI64("cat.gpus", num_gpus);
    builder.addF64("cat.hourly_usd", prices);
    builder.write(out);
}

bool
InstanceCatalog::tryLoadCbf(const io::CbfFile &file,
                            InstanceCatalog *catalog, std::string *error)
{
    const char *schema = nullptr;
    std::size_t schema_size = 0;
    if (!file.bytes("schema", &schema, &schema_size, error))
        return false;
    const std::string schema_name(schema, schema_size);
    if (schema_name != "ceer.catalog.v1") {
        *error = "schema '" + schema_name +
                 "' is not ceer.catalog.v1 (wrong container?)";
        return false;
    }
    std::vector<std::string> names, gpus;
    if (!io::readStringColumn(file, "cat.name", &names, error) ||
        !io::readStringColumn(file, "cat.gpu", &gpus, error))
        return false;
    const std::size_t rows = names.size();
    const std::int64_t *num_gpus = nullptr;
    const double *prices = nullptr;
    std::size_t n = 0;
    const auto sized = [&](std::size_t count, const char *name) {
        if (count == rows)
            return true;
        *error = util::format("column '%s' has %zu rows, expected %zu",
                              name, count, rows);
        return false;
    };
    if (!(file.i64("cat.gpus", &num_gpus, &n, error) &&
          sized(n, "cat.gpus")) ||
        !(file.f64("cat.hourly_usd", &prices, &n, error) &&
          sized(n, "cat.hourly_usd")) ||
        !sized(gpus.size(), "cat.gpu"))
        return false;
    InstanceCatalog parsed;
    for (std::size_t i = 0; i < rows; ++i) {
        GpuInstance instance;
        instance.name = std::move(names[i]);
        if (!hw::gpuModelFromName(gpus[i], instance.gpu)) {
            *error = util::format("row %zu: unknown GPU '%s'", i,
                                  gpus[i].c_str());
            return false;
        }
        if (num_gpus[i] < 1 || num_gpus[i] > 1 << 20) {
            *error = util::format(
                "row %zu: bad gpus %lld", i,
                static_cast<long long>(num_gpus[i]));
            return false;
        }
        instance.numGpus = static_cast<int>(num_gpus[i]);
        instance.hourlyUsd = prices[i];
        if (!(instance.hourlyUsd > 0.0) ||
            !std::isfinite(instance.hourlyUsd)) {
            *error = util::format("row %zu: bad hourly price for '%s'",
                                  i, instance.name.c_str());
            return false;
        }
        parsed.add(std::move(instance));
    }
    *catalog = std::move(parsed);
    return true;
}

bool
InstanceCatalog::tryLoadFile(const std::string &path,
                             InstanceCatalog *catalog, std::string *error)
{
    OBS_TIMER("io.load_us");
    io::FileFormat format;
    if (!io::sniffFile(path, &format, error))
        return false;
    if (format == io::FileFormat::Cbf) {
        io::CbfFile file;
        std::string map_error;
        if (!io::CbfFile::tryMap(path, &file, &map_error)) {
            // mmap can fail on exotic filesystems; the streaming
            // reader applies the identical validation.
            if (!io::CbfFile::tryLoad(path, &file, error)) {
                *error = path + ": " + *error;
                return false;
            }
        }
        if (!tryLoadCbf(file, catalog, error)) {
            *error = path + ": " + *error;
            return false;
        }
        return true;
    }
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    if (!tryFromCsv(in, catalog, error)) {
        *error = path + ": " + *error;
        return false;
    }
    return true;
}

InstanceCatalog
InstanceCatalog::fromFile(const std::string &path)
{
    InstanceCatalog catalog;
    std::string error;
    if (!tryLoadFile(path, &catalog, &error))
        util::fatal("InstanceCatalog::fromFile: " + error);
    return catalog;
}

InstanceCatalog
InstanceCatalog::syntheticFleet(std::size_t count, std::uint64_t seed)
{
    // Per-GPU hourly price anchors, as in marketPriced().
    const std::map<GpuModel, double> per_gpu = {
        {GpuModel::V100, 3.06},
        {GpuModel::T4, 0.95},
        {GpuModel::M60, 0.55},
        {GpuModel::K80, 0.15},
    };
    util::Rng rng(util::hashMix(seed, std::string("ceer-fleet")));
    const auto &silicons = hw::allGpuModels();
    InstanceCatalog catalog;
    for (std::size_t i = 0; i < count; ++i) {
        GpuInstance instance;
        instance.gpu = silicons[rng.uniformInt(silicons.size())];
        instance.numGpus = 1 + static_cast<int>(rng.uniformInt(8));
        const double raw = per_gpu.at(instance.gpu) *
                           instance.numGpus * rng.uniform(0.7, 1.3);
        // Canonicalize through the CSV %.6g price dialect so CSV and
        // CBF serializations of a fleet convert byte-exactly.
        instance.hourlyUsd =
            util::parseDouble(util::format("%.6g", raw)).value;
        instance.name = util::format(
            "fleet-%s-%dgpu-%06zu",
            hw::gpuFamilyName(instance.gpu).c_str(), instance.numGpus,
            i);
        catalog.add(std::move(instance));
    }
    return catalog;
}

const GpuInstance &
InstanceCatalog::find(const std::string &name) const
{
    for (const auto &instance : instances_)
        if (instance.name == name)
            return instance;
    util::fatal("InstanceCatalog: no instance named '" + name + "'");
}

const GpuInstance &
InstanceCatalog::find(hw::GpuModel gpu, int num_gpus) const
{
    for (const auto &instance : instances_)
        if (instance.gpu == gpu && instance.numGpus == num_gpus)
            return instance;
    util::fatal(util::format("InstanceCatalog: no %d-GPU %s instance",
                             num_gpus, hw::gpuModelName(gpu).c_str()));
}

std::vector<GpuInstance>
InstanceCatalog::forGpu(hw::GpuModel gpu) const
{
    std::vector<GpuInstance> out;
    for (const auto &instance : instances_)
        if (instance.gpu == gpu)
            out.push_back(instance);
    std::sort(out.begin(), out.end(),
              [](const GpuInstance &a, const GpuInstance &b) {
                  return a.numGpus < b.numGpus;
              });
    return out;
}

std::vector<GpuInstance>
InstanceCatalog::withinHourlyBudget(double hourly_budget) const
{
    std::vector<GpuInstance> out;
    for (const auto &instance : instances_)
        if (instance.hourlyUsd <= hourly_budget)
            out.push_back(instance);
    return out;
}

std::vector<GpuInstance>
InstanceCatalog::largestPerFamilyWithin(double hourly_budget,
                                        double tolerance) const
{
    std::vector<GpuInstance> out;
    for (GpuModel gpu : hw::allGpuModels()) {
        const GpuInstance *best = nullptr;
        for (const auto &instance : instances_) {
            if (instance.gpu != gpu ||
                instance.hourlyUsd > hourly_budget + tolerance) {
                continue;
            }
            if (!best || instance.numGpus > best->numGpus)
                best = &instance;
        }
        if (best)
            out.push_back(*best);
    }
    return out;
}

} // namespace cloud
} // namespace ceer
