#include "cloud/instances.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace ceer {
namespace cloud {

using hw::GpuModel;

namespace {

/** Real AWS instance names for the 1-GPU and multi-GPU offerings. */
struct FamilyOffering
{
    GpuModel gpu;
    const char *singleName;
    double singleUsd;
    const char *multiName;
    int multiGpus;
    double multiUsd;
};

constexpr FamilyOffering kAws[] = {
    {GpuModel::V100, "p3.2xlarge", 3.06, "p3.8xlarge", 4, 12.24},
    {GpuModel::K80, "p2.xlarge", 0.90, "p2.8xlarge", 8, 7.20},
    {GpuModel::T4, "g4dn.2xlarge", 0.752, "g4dn.12xlarge", 4, 3.912},
    {GpuModel::M60, "g3s.xlarge", 0.75, "g3.16xlarge", 4, 4.56},
};

} // namespace

InstanceCatalog
InstanceCatalog::awsOnDemand()
{
    InstanceCatalog catalog;
    for (const auto &family : kAws) {
        catalog.add({family.singleName, family.gpu, 1, family.singleUsd,
                     false});
        const double per_gpu =
            family.multiUsd / static_cast<double>(family.multiGpus);
        for (int k = 2; k <= 4; ++k) {
            if (k == family.multiGpus) {
                catalog.add({family.multiName, family.gpu, k,
                             family.multiUsd, false});
            } else {
                // Paper's proxy rule: use the multi-GPU instance with
                // only k GPUs active, at k/N of its rental cost.
                catalog.add({util::format("%s-%dgpu-proxy",
                                          family.multiName, k),
                             family.gpu, k, per_gpu * k, true});
            }
        }
    }
    return catalog;
}

InstanceCatalog
InstanceCatalog::marketPriced()
{
    // Per-GPU hourly prices from commodity market ratios (Sec. V).
    const std::map<GpuModel, double> per_gpu = {
        {GpuModel::V100, 3.06},
        {GpuModel::T4, 0.95},
        {GpuModel::M60, 0.55},
        {GpuModel::K80, 0.15},
    };
    InstanceCatalog catalog;
    for (const auto &family : kAws) {
        const double unit = per_gpu.at(family.gpu);
        for (int k = 1; k <= 4; ++k) {
            catalog.add({util::format("%s-market-%dgpu",
                                      hw::gpuFamilyName(family.gpu)
                                          .c_str(),
                                      k),
                         family.gpu, k, unit * k, k != 1});
        }
    }
    return catalog;
}

void
InstanceCatalog::add(GpuInstance instance)
{
    instances_.push_back(std::move(instance));
}

InstanceCatalog
InstanceCatalog::fromCsv(std::istream &in)
{
    InstanceCatalog catalog;
    const auto rows = util::readCsv(in);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const auto &row = rows[i];
        if (row.size() < 4) {
            util::fatal(util::format(
                "InstanceCatalog::fromCsv: row %zu has %zu fields "
                "(need name,gpu,gpus,hourly_usd)", i, row.size()));
        }
        GpuInstance instance;
        instance.name = row[0];
        if (!hw::gpuModelFromName(row[1], instance.gpu))
            util::fatal("InstanceCatalog::fromCsv: unknown GPU " +
                        row[1]);
        const auto gpus = util::parseInt64(row[2]);
        if (!gpus) {
            util::fatal(util::format(
                "InstanceCatalog::fromCsv: row %zu column 3 (gpus): "
                "%s: '%s'", i, gpus.error, row[2].c_str()));
        }
        instance.numGpus = static_cast<int>(gpus.value);
        const auto price = util::parseDouble(row[3]);
        if (!price) {
            util::fatal(util::format(
                "InstanceCatalog::fromCsv: row %zu column 4 "
                "(hourly_usd): %s: '%s'", i, price.error,
                row[3].c_str()));
        }
        instance.hourlyUsd = price.value;
        if (instance.numGpus < 1 || !(instance.hourlyUsd > 0.0) ||
            !std::isfinite(instance.hourlyUsd))
            util::fatal("InstanceCatalog::fromCsv: bad row for " +
                        instance.name);
        catalog.add(std::move(instance));
    }
    return catalog;
}

void
InstanceCatalog::saveCsv(std::ostream &out) const
{
    util::CsvWriter writer(out);
    writer.writeRow({"name", "gpu", "gpus", "hourly_usd"});
    for (const auto &instance : instances_) {
        writer.writeRow({instance.name, hw::gpuModelName(instance.gpu),
                         std::to_string(instance.numGpus),
                         util::format("%.6g", instance.hourlyUsd)});
    }
}

const GpuInstance &
InstanceCatalog::find(const std::string &name) const
{
    for (const auto &instance : instances_)
        if (instance.name == name)
            return instance;
    util::fatal("InstanceCatalog: no instance named '" + name + "'");
}

const GpuInstance &
InstanceCatalog::find(hw::GpuModel gpu, int num_gpus) const
{
    for (const auto &instance : instances_)
        if (instance.gpu == gpu && instance.numGpus == num_gpus)
            return instance;
    util::fatal(util::format("InstanceCatalog: no %d-GPU %s instance",
                             num_gpus, hw::gpuModelName(gpu).c_str()));
}

std::vector<GpuInstance>
InstanceCatalog::forGpu(hw::GpuModel gpu) const
{
    std::vector<GpuInstance> out;
    for (const auto &instance : instances_)
        if (instance.gpu == gpu)
            out.push_back(instance);
    std::sort(out.begin(), out.end(),
              [](const GpuInstance &a, const GpuInstance &b) {
                  return a.numGpus < b.numGpus;
              });
    return out;
}

std::vector<GpuInstance>
InstanceCatalog::withinHourlyBudget(double hourly_budget) const
{
    std::vector<GpuInstance> out;
    for (const auto &instance : instances_)
        if (instance.hourlyUsd <= hourly_budget)
            out.push_back(instance);
    return out;
}

std::vector<GpuInstance>
InstanceCatalog::largestPerFamilyWithin(double hourly_budget,
                                        double tolerance) const
{
    std::vector<GpuInstance> out;
    for (GpuModel gpu : hw::allGpuModels()) {
        const GpuInstance *best = nullptr;
        for (const auto &instance : instances_) {
            if (instance.gpu != gpu ||
                instance.hourlyUsd > hourly_budget + tolerance) {
                continue;
            }
            if (!best || instance.numGpus > best->numGpus)
                best = &instance;
        }
        if (best)
            out.push_back(*best);
    }
    return out;
}

} // namespace cloud
} // namespace ceer
