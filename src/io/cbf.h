/**
 * @file
 * CBF — the repo's versioned, checksummed columnar binary format.
 *
 * Layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       8     magic "CEER.CBF"
 *   8       4     format version (currently 1)
 *   12      4     column count N
 *   16      8     total file size in bytes
 *   24      8     XXH64 checksum of the column table
 *   32      72*N  column table, one entry per column:
 *                   0   32  name (NUL-padded UTF-8, at most 31 bytes)
 *                   32  1   dtype (DType)
 *                   33  7   reserved (zero)
 *                   40  8   element count
 *                   48  8   payload byte offset (8-byte aligned)
 *                   56  8   payload byte length
 *                   64  8   XXH64 checksum of the payload
 *   ...           payload sections, each 8-byte aligned
 *
 * Doubles are stored as raw IEEE-754 bits, so round-trips are exact by
 * construction. Files are written via temp + rename (atomic against
 * concurrent readers) and loaded two ways: a checked streaming reader
 * that copies the file into an owned buffer, and an mmap path that
 * validates the header and every section checksum, then serves column
 * pointers straight out of the mapping. Every validation failure
 * reports the byte offset it was detected at and leaves outputs
 * untouched. See docs/file_formats.md for the compatibility policy.
 */

#ifndef CEER_IO_CBF_H
#define CEER_IO_CBF_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ceer {
namespace io {

/** 8-byte magic at offset 0 of every CBF file. */
extern const char kCbfMagic[8];

/** Format version written by CbfBuilder and accepted by CbfFile. */
constexpr std::uint32_t kCbfVersion = 1;

/** Element type of one column. */
enum class DType : std::uint8_t {
    F64 = 0,   ///< IEEE-754 binary64, raw bits.
    U64 = 1,   ///< Unsigned 64-bit.
    I64 = 2,   ///< Signed 64-bit (two's complement).
    U8 = 3,    ///< Unsigned byte.
    Bytes = 4, ///< Opaque byte blob (count == byte length).
};

/** Size in bytes of one element of @p dtype. */
std::size_t dtypeSize(DType dtype);

/** Human-readable dtype name for error messages. */
std::string dtypeName(DType dtype);

/**
 * XXH64 of @p size bytes at @p data with @p seed.
 *
 * Local implementation of the xxHash64 algorithm (the container has no
 * xxhash package); validated against the reference test vectors in
 * io_test.cc.
 */
std::uint64_t xxhash64(const void *data, std::size_t size,
                       std::uint64_t seed = 0);

/** One entry of a parsed column table. */
struct ColumnDesc
{
    std::string name;           ///< Column name (<= 31 bytes).
    DType dtype = DType::F64;   ///< Element type.
    std::uint64_t count = 0;    ///< Element count.
    std::uint64_t offset = 0;   ///< Payload offset from file start.
    std::uint64_t length = 0;   ///< Payload length in bytes.
    std::uint64_t checksum = 0; ///< XXH64 of the payload bytes.
};

/**
 * Accumulates columns and serializes them as one CBF file.
 *
 * Column order is preserved; re-serializing a parsed file with the
 * same columns in the same order reproduces it byte for byte.
 *
 * A builder is reusable: clear() retires the columns but keeps every
 * slot's string storage, so a clear-add-buildInto cycle on a warm
 * builder performs no heap allocation (the serving hot path leans on
 * this). The pointer-based add overloads exist for the same reason —
 * callers with data already laid out flat skip the vector temporary.
 */
class CbfBuilder
{
  public:
    /** Adds a double column (raw IEEE-754 bits). */
    void addF64(const std::string &name, const std::vector<double> &v);
    void addF64(const std::string &name, const double *data,
                std::size_t n);

    /** Adds an unsigned 64-bit column. */
    void addU64(const std::string &name,
                const std::vector<std::uint64_t> &v);
    void addU64(const std::string &name, const std::uint64_t *data,
                std::size_t n);

    /** Adds a signed 64-bit column. */
    void addI64(const std::string &name,
                const std::vector<std::int64_t> &v);
    void addI64(const std::string &name, const std::int64_t *data,
                std::size_t n);

    /** Adds a byte column (bools, flags). */
    void addU8(const std::string &name,
               const std::vector<std::uint8_t> &v);
    void addU8(const std::string &name, const std::uint8_t *data,
               std::size_t n);

    /** Adds an opaque blob column (count == byte length). */
    void addBytes(const std::string &name, const std::string &bytes);
    void addBytes(const std::string &name, const char *data,
                  std::size_t n);

    /** Retires all columns but keeps slot storage for reuse. */
    void clear();

    /** Serializes the whole file into a byte string. */
    std::string build() const;

    /**
     * Serializes the whole file into @p out (cleared first), reusing
     * its capacity. Byte-identical to build().
     */
    void buildInto(std::string *out) const;

    /** Writes build() to a stream. */
    void write(std::ostream &out) const;

    /**
     * Writes build() to @p path via a process-unique temp file plus
     * rename, so concurrent readers never observe a partial file.
     *
     * @return True on success; on failure @p error describes why and
     *         no file is left behind.
     */
    bool tryWriteFile(const std::string &path, std::string *error) const;

  private:
    struct Column
    {
        std::string name;
        DType dtype = DType::F64;
        std::uint64_t count = 0;
        std::string payload;
    };

    /** Claims the next column slot (reusing retired storage) and
        returns its payload string for the caller to fill. */
    std::string *nextColumn(const std::string &name, DType dtype,
                            std::uint64_t count);

    std::vector<Column> columns_;
    std::size_t used_ = 0; ///< Active slots; the rest are retired.
};

/**
 * A validated CBF file, either owned (streaming read) or mmapped.
 *
 * All header, table and per-section checksum validation happens inside
 * tryLoad/tryMap/tryParse; accessors afterwards can only fail on
 * missing columns or dtype mismatches. Move-only (the mmap variant
 * owns the mapping).
 */
class CbfFile
{
  public:
    CbfFile() = default;
    ~CbfFile();
    CbfFile(CbfFile &&other) noexcept;
    CbfFile &operator=(CbfFile &&other) noexcept;
    CbfFile(const CbfFile &) = delete;
    CbfFile &operator=(const CbfFile &) = delete;

    /**
     * Checked streaming reader: reads @p path into an owned buffer and
     * validates it. @p out is untouched on failure; @p error carries
     * byte-offset context.
     */
    static bool tryLoad(const std::string &path, CbfFile *out,
                        std::string *error);

    /**
     * mmap zero-copy path: maps @p path read-only, validates the
     * header and every section checksum against the mapping, and
     * serves column pointers straight out of it. Falls back nowhere —
     * callers that want resilience try tryLoad() next.
     */
    static bool tryMap(const std::string &path, CbfFile *out,
                       std::string *error);

    /** Validates an in-memory byte string (tests, cache probes). */
    static bool tryParse(std::string bytes, CbfFile *out,
                         std::string *error);

    /**
     * Zero-copy view parse: validates @p size bytes at @p data that
     * the CALLER keeps alive for the lifetime of @p out; accessors
     * point straight into the view. Unlike tryParse, @p out is reused
     * in place — its column table keeps its capacity across calls, so
     * re-parsing a same-schema payload on a warm CbfFile allocates
     * nothing. On failure @p out is left empty, not untouched.
     */
    static bool tryParseView(const char *data, std::size_t size,
                             CbfFile *out, std::string *error);

    /** True when the file is served from an mmap. */
    bool mapped() const { return mapped_; }

    /** Total file size in bytes. */
    std::size_t size() const { return size_; }

    /** Parsed column table, in file order. */
    const std::vector<ColumnDesc> &columns() const { return columns_; }

    /** Column descriptor by name, or nullptr when absent. */
    const ColumnDesc *find(const std::string &name) const;

    /**
     * Typed zero-copy access to a column: on success @p data points at
     * the column payload (inside the owned buffer or the mapping) and
     * @p count receives the element count. Fails on a missing column
     * or a dtype mismatch.
     */
    bool f64(const std::string &name, const double **data,
             std::size_t *count, std::string *error) const;
    bool u64(const std::string &name, const std::uint64_t **data,
             std::size_t *count, std::string *error) const;
    bool i64(const std::string &name, const std::int64_t **data,
             std::size_t *count, std::string *error) const;
    bool u8(const std::string &name, const std::uint8_t **data,
            std::size_t *count, std::string *error) const;
    bool bytes(const std::string &name, const char **data,
               std::size_t *size, std::string *error) const;

  private:
    const char *columnData(const ColumnDesc &desc) const;
    bool typedColumn(const std::string &name, DType dtype,
                     const void **data, std::size_t *count,
                     std::string *error) const;
    void reset();

    std::string owned_;          ///< Streaming-read buffer.
    const char *view_ = nullptr; ///< Caller-owned bytes (tryParseView).
    void *mapping_ = nullptr;    ///< mmap base (mapped_ only).
    std::size_t size_ = 0;       ///< Total file size.
    bool mapped_ = false;
    std::vector<ColumnDesc> columns_;
};

/**
 * Variable-length schema helpers: a list-of-strings column is stored
 * as "<name>" (Bytes, the concatenated payloads) plus "<name>.off"
 * (U64, N+1 start offsets); a list-of-f64-lists column likewise with
 * the offsets counting elements. readStringColumn/readF64ListColumn
 * validate the offset vector (monotone, in range) with column context.
 */
void addStringColumn(CbfBuilder *builder, const std::string &name,
                     const std::vector<std::string> &values);
bool readStringColumn(const CbfFile &file, const std::string &name,
                      std::vector<std::string> *out, std::string *error);
void addF64ListColumn(CbfBuilder *builder, const std::string &name,
                      const std::vector<std::vector<double>> &values);
bool readF64ListColumn(const CbfFile &file, const std::string &name,
                       std::vector<std::vector<double>> *out,
                       std::string *error);

/** What sniffFile() decided a file is. */
enum class FileFormat { Cbf, Text };

/**
 * Sniffs @p path by its first 8 bytes: kCbfMagic means CBF, anything
 * else (including files shorter than the magic) is treated as the text
 * dialect of whichever loader is asking. Fails only when the file
 * cannot be opened.
 */
bool sniffFile(const std::string &path, FileFormat *format,
               std::string *error);

} // namespace io
} // namespace ceer

#endif // CEER_IO_CBF_H
