#include "io/cbf.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace io {

// The format is defined little-endian and this implementation reads
// and writes fields with native-endian memcpy.
static_assert(std::endian::native == std::endian::little,
              "CBF assumes a little-endian host");

const char kCbfMagic[8] = {'C', 'E', 'E', 'R', '.', 'C', 'B', 'F'};

namespace {

constexpr std::size_t kHeaderSize = 32;
constexpr std::size_t kNameSize = 32;
constexpr std::size_t kTableEntrySize = 72;
/// Far above any real schema; a corrupt count must not turn into a
/// multi-gigabyte table scan.
constexpr std::uint32_t kMaxColumns = 1u << 20;

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

inline std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
readU64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint32_t
readU32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint64_t
xxhRound(std::uint64_t acc, std::uint64_t input)
{
    acc += input * kPrime2;
    acc = rotl64(acc, 31);
    acc *= kPrime1;
    return acc;
}

inline std::uint64_t
xxhMerge(std::uint64_t acc, std::uint64_t val)
{
    acc ^= xxhRound(0, val);
    return acc * kPrime1 + kPrime4;
}

/** Appends a native (little-endian) integer to @p out. */
template <typename T>
void
appendInt(std::string *out, T value)
{
    char buf[sizeof value];
    std::memcpy(buf, &value, sizeof value);
    out->append(buf, sizeof value);
}

inline std::uint32_t
loadU32(const char *p)
{
    return readU32(reinterpret_cast<const unsigned char *>(p));
}

inline std::uint64_t
loadU64(const char *p)
{
    return readU64(reinterpret_cast<const unsigned char *>(p));
}

inline std::uint64_t
align8(std::uint64_t offset)
{
    return (offset + 7) & ~std::uint64_t{7};
}

/**
 * Validates a complete in-memory CBF image and fills @p columns.
 * Every failure message names the byte offset it was detected at.
 * @p columns is reused in place (slot and string capacity survive
 * across calls — the serving hot path re-parses same-schema payloads
 * allocation-free) and cleared on failure.
 */
bool
validateImage(const char *base, std::size_t size,
              std::vector<ColumnDesc> *columns, std::string *error)
{
    if (size < kHeaderSize) {
        *error = util::format(
            "truncated file: %zu bytes, need at least %zu for the "
            "header (offset 0)", size, kHeaderSize);
        return false;
    }
    if (std::memcmp(base, kCbfMagic, sizeof kCbfMagic) != 0) {
        *error = "bad magic at offset 0 (not a CBF file)";
        return false;
    }
    const std::uint32_t version = loadU32(base + 8);
    if (version != kCbfVersion) {
        *error = util::format(
            "unsupported format version %u at offset 8 (this build "
            "reads version %u)", version, kCbfVersion);
        return false;
    }
    const std::uint32_t column_count = loadU32(base + 12);
    if (column_count > kMaxColumns) {
        *error = util::format("implausible column count %u at offset 12",
                              column_count);
        return false;
    }
    const std::uint64_t declared_size = loadU64(base + 16);
    if (declared_size != size) {
        *error = util::format(
            "truncated file: header at offset 16 declares %llu bytes, "
            "got %zu", (unsigned long long)declared_size, size);
        return false;
    }
    const std::uint64_t table_bytes =
        std::uint64_t{column_count} * kTableEntrySize;
    if (size - kHeaderSize < table_bytes) {
        *error = util::format(
            "truncated column table at offset %zu (%u columns need "
            "%llu bytes, file has %zu)", kHeaderSize, column_count,
            (unsigned long long)table_bytes, size - kHeaderSize);
        return false;
    }
    const std::uint64_t table_checksum = loadU64(base + 24);
    if (xxhash64(base + kHeaderSize, table_bytes) != table_checksum) {
        OBS_COUNTER_INC("io.checksum_failures");
        *error = util::format(
            "column table checksum mismatch (stored at offset 24, "
            "table at offset %zu)", kHeaderSize);
        return false;
    }

    // Duplicate-name detection: a linear scan over the names parsed so
    // far beats a std::map for the small tables that dominate (every
    // wire payload), and only degrades to the map above a threshold a
    // hostile table could exploit quadratically.
    constexpr std::uint32_t kDupScanLimit = 64;
    std::map<std::string, std::size_t> seen;
    columns->resize(column_count);
    for (std::uint32_t i = 0; i < column_count; ++i) {
        const std::size_t entry_off = kHeaderSize + i * kTableEntrySize;
        const char *entry = base + entry_off;
        ColumnDesc &desc = (*columns)[i];
        if (entry[kNameSize - 1] != '\0') {
            *error = util::format(
                "column %u: unterminated name at offset %zu", i,
                entry_off);
            columns->clear();
            return false;
        }
        desc.name = entry; // NUL-terminated within the 32-byte field.
        if (desc.name.empty()) {
            *error = util::format("column %u: empty name at offset %zu",
                                  i, entry_off);
            columns->clear();
            return false;
        }
        bool duplicate = false;
        if (column_count <= kDupScanLimit) {
            for (std::uint32_t j = 0; j < i && !duplicate; ++j)
                duplicate = (*columns)[j].name == desc.name;
        } else {
            duplicate = !seen.emplace(desc.name, i).second;
        }
        if (duplicate) {
            *error = util::format(
                "column %u: duplicate name '%s' at offset %zu", i,
                desc.name.c_str(), entry_off);
            columns->clear();
            return false;
        }
        const std::uint8_t dtype_byte =
            static_cast<std::uint8_t>(entry[kNameSize]);
        if (dtype_byte > static_cast<std::uint8_t>(DType::Bytes)) {
            *error = util::format(
                "column '%s': bad dtype %u at offset %zu",
                desc.name.c_str(), dtype_byte, entry_off + kNameSize);
            columns->clear();
            return false;
        }
        desc.dtype = static_cast<DType>(dtype_byte);
        desc.count = loadU64(entry + 40);
        desc.offset = loadU64(entry + 48);
        desc.length = loadU64(entry + 56);
        desc.checksum = loadU64(entry + 64);
        const std::size_t elem = dtypeSize(desc.dtype);
        if (desc.count > size / elem || desc.count * elem != desc.length) {
            *error = util::format(
                "column '%s': length %llu does not match %llu %s "
                "elements (table entry at offset %zu)",
                desc.name.c_str(), (unsigned long long)desc.length,
                (unsigned long long)desc.count,
                dtypeName(desc.dtype).c_str(), entry_off);
            columns->clear();
            return false;
        }
        if (desc.offset < kHeaderSize + table_bytes ||
            desc.offset > size || desc.length > size - desc.offset) {
            *error = util::format(
                "column '%s': short section — [%llu, %llu) exceeds "
                "file size %zu (table entry at offset %zu)",
                desc.name.c_str(), (unsigned long long)desc.offset,
                (unsigned long long)(desc.offset + desc.length), size,
                entry_off);
            columns->clear();
            return false;
        }
        // 8-byte dtypes are read through typed pointers straight out
        // of the buffer/mapping; misalignment would be UB, so it is a
        // validation failure, not a crash.
        if (elem == 8 &&
            (desc.offset % 8 != 0 ||
             reinterpret_cast<std::uintptr_t>(base + desc.offset) % 8 !=
                 0)) {
            *error = util::format(
                "column '%s': misaligned section offset %llu (8-byte "
                "elements need 8-byte alignment; table entry at offset "
                "%zu)", desc.name.c_str(),
                (unsigned long long)desc.offset, entry_off);
            columns->clear();
            return false;
        }
        if (xxhash64(base + desc.offset, desc.length) != desc.checksum) {
            OBS_COUNTER_INC("io.checksum_failures");
            *error = util::format(
                "column '%s': payload checksum mismatch (section at "
                "offset %llu, %llu bytes)", desc.name.c_str(),
                (unsigned long long)desc.offset,
                (unsigned long long)desc.length);
            columns->clear();
            return false;
        }
    }
    return true;
}

} // namespace

std::size_t
dtypeSize(DType dtype)
{
    switch (dtype) {
      case DType::F64:
      case DType::U64:
      case DType::I64:
        return 8;
      case DType::U8:
      case DType::Bytes:
        return 1;
    }
    util::panic("dtypeSize: bad dtype");
}

std::string
dtypeName(DType dtype)
{
    switch (dtype) {
      case DType::F64: return "f64";
      case DType::U64: return "u64";
      case DType::I64: return "i64";
      case DType::U8: return "u8";
      case DType::Bytes: return "bytes";
    }
    return "?";
}

std::uint64_t
xxhash64(const void *data, std::size_t size, std::uint64_t seed)
{
    static const unsigned char kEmpty[1] = {0};
    const unsigned char *p =
        data ? static_cast<const unsigned char *>(data) : kEmpty;
    const unsigned char *end = p + size;
    std::uint64_t h;
    if (size >= 32) {
        std::uint64_t v1 = seed + kPrime1 + kPrime2;
        std::uint64_t v2 = seed + kPrime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - kPrime1;
        const unsigned char *limit = end - 32;
        do {
            v1 = xxhRound(v1, readU64(p));
            v2 = xxhRound(v2, readU64(p + 8));
            v3 = xxhRound(v3, readU64(p + 16));
            v4 = xxhRound(v4, readU64(p + 24));
            p += 32;
        } while (p <= limit);
        h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) +
            rotl64(v4, 18);
        h = xxhMerge(h, v1);
        h = xxhMerge(h, v2);
        h = xxhMerge(h, v3);
        h = xxhMerge(h, v4);
    } else {
        h = seed + kPrime5;
    }
    h += static_cast<std::uint64_t>(size);
    while (end - p >= 8) {
        h ^= xxhRound(0, readU64(p));
        h = rotl64(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (end - p >= 4) {
        h ^= std::uint64_t{readU32(p)} * kPrime1;
        h = rotl64(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= std::uint64_t{*p} * kPrime5;
        h = rotl64(h, 11) * kPrime1;
        ++p;
    }
    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

std::string *
CbfBuilder::nextColumn(const std::string &name, DType dtype,
                       std::uint64_t count)
{
    if (name.empty() || name.size() >= kNameSize)
        util::panic("CbfBuilder: column name '" + name +
                    "' must be 1-31 bytes");
    for (std::size_t i = 0; i < used_; ++i)
        if (columns_[i].name == name)
            util::panic("CbfBuilder: duplicate column '" + name + "'");
    if (used_ == columns_.size())
        columns_.emplace_back();
    Column &column = columns_[used_++];
    column.name = name;
    column.dtype = dtype;
    column.count = count;
    column.payload.clear();
    return &column.payload;
}

void
CbfBuilder::clear()
{
    used_ = 0;
}

void
CbfBuilder::addF64(const std::string &name, const double *data,
                   std::size_t n)
{
    std::string *payload = nextColumn(name, DType::F64, n);
    if (n)
        payload->assign(reinterpret_cast<const char *>(data),
                        n * sizeof(double));
}

void
CbfBuilder::addF64(const std::string &name, const std::vector<double> &v)
{
    addF64(name, v.data(), v.size());
}

void
CbfBuilder::addU64(const std::string &name, const std::uint64_t *data,
                   std::size_t n)
{
    std::string *payload = nextColumn(name, DType::U64, n);
    if (n)
        payload->assign(reinterpret_cast<const char *>(data),
                        n * sizeof(std::uint64_t));
}

void
CbfBuilder::addU64(const std::string &name,
                   const std::vector<std::uint64_t> &v)
{
    addU64(name, v.data(), v.size());
}

void
CbfBuilder::addI64(const std::string &name, const std::int64_t *data,
                   std::size_t n)
{
    std::string *payload = nextColumn(name, DType::I64, n);
    if (n)
        payload->assign(reinterpret_cast<const char *>(data),
                        n * sizeof(std::int64_t));
}

void
CbfBuilder::addI64(const std::string &name,
                   const std::vector<std::int64_t> &v)
{
    addI64(name, v.data(), v.size());
}

void
CbfBuilder::addU8(const std::string &name, const std::uint8_t *data,
                  std::size_t n)
{
    std::string *payload = nextColumn(name, DType::U8, n);
    if (n)
        payload->assign(reinterpret_cast<const char *>(data), n);
}

void
CbfBuilder::addU8(const std::string &name,
                  const std::vector<std::uint8_t> &v)
{
    addU8(name, v.data(), v.size());
}

void
CbfBuilder::addBytes(const std::string &name, const char *data,
                     std::size_t n)
{
    std::string *payload = nextColumn(name, DType::Bytes, n);
    if (n)
        payload->assign(data, n);
}

void
CbfBuilder::addBytes(const std::string &name, const std::string &bytes)
{
    addBytes(name, bytes.data(), bytes.size());
}

void
CbfBuilder::buildInto(std::string *out) const
{
    // Lay out payload sections after the table, each 8-byte aligned.
    // Offsets are cheap to recompute, so the layout is walked three
    // times (total size, table, payloads) instead of materializing an
    // offsets vector — buildInto on a warm output string allocates
    // nothing.
    const std::uint64_t table_bytes = used_ * kTableEntrySize;
    std::uint64_t cursor = kHeaderSize + table_bytes;
    for (std::size_t i = 0; i < used_; ++i) {
        cursor = align8(cursor);
        cursor += columns_[i].payload.size();
    }
    const std::uint64_t total = cursor;

    out->clear();
    out->reserve(total);
    out->append(kCbfMagic, sizeof kCbfMagic);
    appendInt(out, kCbfVersion);
    appendInt(out, static_cast<std::uint32_t>(used_));
    appendInt(out, total);
    appendInt(out, std::uint64_t{0}); // table checksum, patched below
    cursor = kHeaderSize + table_bytes;
    for (std::size_t i = 0; i < used_; ++i) {
        const Column &column = columns_[i];
        cursor = align8(cursor);
        char name[kNameSize] = {};
        std::memcpy(name, column.name.data(), column.name.size());
        out->append(name, kNameSize);
        out->push_back(static_cast<char>(column.dtype));
        out->append(7, '\0');
        appendInt(out, std::uint64_t{column.count});
        appendInt(out, cursor);
        appendInt(out, std::uint64_t{column.payload.size()});
        appendInt(out, xxhash64(column.payload.data(),
                                column.payload.size()));
        cursor += column.payload.size();
    }
    const std::uint64_t table_checksum =
        xxhash64(out->data() + kHeaderSize, table_bytes);
    std::memcpy(out->data() + 24, &table_checksum,
                sizeof table_checksum);
    for (std::size_t i = 0; i < used_; ++i) {
        out->append(align8(out->size()) - out->size(), '\0');
        out->append(columns_[i].payload);
    }
}

std::string
CbfBuilder::build() const
{
    std::string out;
    buildInto(&out);
    return out;
}

void
CbfBuilder::write(std::ostream &out) const
{
    const std::string data = build();
    out.write(data.data(),
              static_cast<std::streamsize>(data.size()));
}

bool
CbfBuilder::tryWriteFile(const std::string &path,
                         std::string *error) const
{
    const std::string data = build();
    // Process-unique temp + rename: concurrent readers never observe
    // a half-written file (same discipline as the profile cache).
    const std::string temp =
        path + "." + std::to_string(::getpid()) + ".tmp";
    std::ofstream out(temp, std::ios::binary);
    if (!out) {
        *error = "cannot open '" + temp + "' for writing";
        return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.close();
    std::error_code ec;
    if (!out.good()) {
        std::filesystem::remove(temp, ec);
        *error = "write to '" + temp + "' failed";
        return false;
    }
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::filesystem::remove(temp, ec);
        *error = "cannot rename '" + temp + "' to '" + path +
                 "': " + ec.message();
        return false;
    }
    return true;
}

CbfFile::~CbfFile()
{
    reset();
}

void
CbfFile::reset()
{
    if (mapped_ && mapping_)
        ::munmap(mapping_, size_);
    mapping_ = nullptr;
    mapped_ = false;
    view_ = nullptr;
    size_ = 0;
    owned_.clear();
    columns_.clear();
}

CbfFile::CbfFile(CbfFile &&other) noexcept
    : owned_(std::move(other.owned_)), view_(other.view_),
      mapping_(other.mapping_), size_(other.size_),
      mapped_(other.mapped_), columns_(std::move(other.columns_))
{
    other.view_ = nullptr;
    other.mapping_ = nullptr;
    other.mapped_ = false;
    other.size_ = 0;
}

CbfFile &
CbfFile::operator=(CbfFile &&other) noexcept
{
    if (this != &other) {
        reset();
        owned_ = std::move(other.owned_);
        view_ = other.view_;
        mapping_ = other.mapping_;
        size_ = other.size_;
        mapped_ = other.mapped_;
        columns_ = std::move(other.columns_);
        other.view_ = nullptr;
        other.mapping_ = nullptr;
        other.mapped_ = false;
        other.size_ = 0;
    }
    return *this;
}

bool
CbfFile::tryParseView(const char *data, std::size_t size, CbfFile *out,
                      std::string *error)
{
    // Reuse *out in place: columns_ keeps its slot and name capacity,
    // so a warm re-parse of a same-schema payload allocates nothing.
    if (out->mapped_ && out->mapping_)
        ::munmap(out->mapping_, out->size_);
    out->mapping_ = nullptr;
    out->mapped_ = false;
    out->owned_.clear();
    out->view_ = data;
    out->size_ = size;
    if (!validateImage(data, size, &out->columns_, error)) {
        out->view_ = nullptr;
        out->size_ = 0;
        out->columns_.clear();
        return false;
    }
    return true;
}

bool
CbfFile::tryParse(std::string bytes, CbfFile *out, std::string *error)
{
    CbfFile parsed;
    parsed.owned_ = std::move(bytes);
    parsed.size_ = parsed.owned_.size();
    if (!validateImage(parsed.owned_.data(), parsed.size_,
                       &parsed.columns_, error))
        return false;
    *out = std::move(parsed);
    return true;
}

bool
CbfFile::tryLoad(const std::string &path, CbfFile *out,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) {
        *error = "read error on '" + path + "'";
        return false;
    }
    return tryParse(std::move(bytes), out, error);
}

bool
CbfFile::tryMap(const std::string &path, CbfFile *out,
                std::string *error)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        *error = "cannot stat '" + path + "'";
        return false;
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size < kHeaderSize) {
        ::close(fd);
        *error = util::format(
            "truncated file: %zu bytes, need at least %zu for the "
            "header (offset 0)", size, kHeaderSize);
        return false;
    }
    void *mapping =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (mapping == MAP_FAILED) {
        *error = "mmap of '" + path + "' failed";
        return false;
    }
    CbfFile parsed;
    parsed.mapping_ = mapping;
    parsed.mapped_ = true;
    parsed.size_ = size;
    if (!validateImage(static_cast<const char *>(mapping), size,
                       &parsed.columns_, error))
        return false; // parsed's destructor unmaps
    OBS_COUNTER_INC("io.mmap_hits");
    *out = std::move(parsed);
    return true;
}

const ColumnDesc *
CbfFile::find(const std::string &name) const
{
    for (const ColumnDesc &column : columns_)
        if (column.name == name)
            return &column;
    return nullptr;
}

const char *
CbfFile::columnData(const ColumnDesc &desc) const
{
    const char *base = mapped_ ? static_cast<const char *>(mapping_)
                     : view_   ? view_
                               : owned_.data();
    return base + desc.offset;
}

bool
CbfFile::typedColumn(const std::string &name, DType dtype,
                     const void **data, std::size_t *count,
                     std::string *error) const
{
    const ColumnDesc *desc = find(name);
    if (!desc) {
        *error = "missing column '" + name + "'";
        return false;
    }
    if (desc->dtype != dtype) {
        *error = "column '" + name + "' has dtype " +
                 dtypeName(desc->dtype) + ", expected " +
                 dtypeName(dtype);
        return false;
    }
    *data = columnData(*desc);
    *count = desc->count;
    return true;
}

bool
CbfFile::f64(const std::string &name, const double **data,
             std::size_t *count, std::string *error) const
{
    const void *raw;
    if (!typedColumn(name, DType::F64, &raw, count, error))
        return false;
    *data = static_cast<const double *>(raw);
    return true;
}

bool
CbfFile::u64(const std::string &name, const std::uint64_t **data,
             std::size_t *count, std::string *error) const
{
    const void *raw;
    if (!typedColumn(name, DType::U64, &raw, count, error))
        return false;
    *data = static_cast<const std::uint64_t *>(raw);
    return true;
}

bool
CbfFile::i64(const std::string &name, const std::int64_t **data,
             std::size_t *count, std::string *error) const
{
    const void *raw;
    if (!typedColumn(name, DType::I64, &raw, count, error))
        return false;
    *data = static_cast<const std::int64_t *>(raw);
    return true;
}

bool
CbfFile::u8(const std::string &name, const std::uint8_t **data,
            std::size_t *count, std::string *error) const
{
    const void *raw;
    if (!typedColumn(name, DType::U8, &raw, count, error))
        return false;
    *data = static_cast<const std::uint8_t *>(raw);
    return true;
}

bool
CbfFile::bytes(const std::string &name, const char **data,
               std::size_t *size, std::string *error) const
{
    const void *raw;
    if (!typedColumn(name, DType::Bytes, &raw, size, error))
        return false;
    *data = static_cast<const char *>(raw);
    return true;
}

void
addStringColumn(CbfBuilder *builder, const std::string &name,
                const std::vector<std::string> &values)
{
    std::string blob;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(values.size() + 1);
    offsets.push_back(0);
    for (const std::string &value : values) {
        blob += value;
        offsets.push_back(blob.size());
    }
    builder->addBytes(name, blob);
    builder->addU64(name + ".off", offsets);
}

bool
readStringColumn(const CbfFile &file, const std::string &name,
                 std::vector<std::string> *out, std::string *error)
{
    const char *blob;
    std::size_t blob_size;
    const std::uint64_t *offsets;
    std::size_t offset_count;
    if (!file.bytes(name, &blob, &blob_size, error) ||
        !file.u64(name + ".off", &offsets, &offset_count, error))
        return false;
    if (offset_count == 0 || offsets[0] != 0 ||
        offsets[offset_count - 1] != blob_size) {
        *error = "column '" + name + ".off': bad offset vector";
        return false;
    }
    std::vector<std::string> values;
    values.reserve(offset_count - 1);
    for (std::size_t i = 0; i + 1 < offset_count; ++i) {
        if (offsets[i + 1] < offsets[i] || offsets[i + 1] > blob_size) {
            *error = util::format(
                "column '%s.off': offset %zu out of order",
                name.c_str(), i + 1);
            return false;
        }
        values.emplace_back(blob + offsets[i],
                            offsets[i + 1] - offsets[i]);
    }
    *out = std::move(values);
    return true;
}

void
addF64ListColumn(CbfBuilder *builder, const std::string &name,
                 const std::vector<std::vector<double>> &values)
{
    std::vector<double> flat;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(values.size() + 1);
    offsets.push_back(0);
    for (const std::vector<double> &value : values) {
        flat.insert(flat.end(), value.begin(), value.end());
        offsets.push_back(flat.size());
    }
    builder->addF64(name, flat);
    builder->addU64(name + ".off", offsets);
}

bool
readF64ListColumn(const CbfFile &file, const std::string &name,
                  std::vector<std::vector<double>> *out,
                  std::string *error)
{
    const double *flat;
    std::size_t flat_count;
    const std::uint64_t *offsets;
    std::size_t offset_count;
    if (!file.f64(name, &flat, &flat_count, error) ||
        !file.u64(name + ".off", &offsets, &offset_count, error))
        return false;
    if (offset_count == 0 || offsets[0] != 0 ||
        offsets[offset_count - 1] != flat_count) {
        *error = "column '" + name + ".off': bad offset vector";
        return false;
    }
    std::vector<std::vector<double>> values;
    values.reserve(offset_count - 1);
    for (std::size_t i = 0; i + 1 < offset_count; ++i) {
        if (offsets[i + 1] < offsets[i] ||
            offsets[i + 1] > flat_count) {
            *error = util::format(
                "column '%s.off': offset %zu out of order",
                name.c_str(), i + 1);
            return false;
        }
        values.emplace_back(flat + offsets[i], flat + offsets[i + 1]);
    }
    *out = std::move(values);
    return true;
}

bool
sniffFile(const std::string &path, FileFormat *format,
          std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    char magic[sizeof kCbfMagic];
    in.read(magic, sizeof magic);
    *format = (in.gcount() ==
                   static_cast<std::streamsize>(sizeof magic) &&
               std::memcmp(magic, kCbfMagic, sizeof magic) == 0)
                  ? FileFormat::Cbf
                  : FileFormat::Text;
    return true;
}

} // namespace io
} // namespace ceer
