/**
 * @file
 * Analytic FLOP and memory-traffic counts for graph operations.
 *
 * These are the classic first-order kernel cost formulas (as used by
 * PALEO and roofline analyses): convolution FLOPs are
 * 2 * output_elems * kh * kw * in_channels, pooling moves its input and
 * output through memory, elementwise ops are pure traffic, etc. The
 * timing model combines them with per-GPU effective throughputs.
 */

#ifndef CEER_HW_OP_COST_H
#define CEER_HW_OP_COST_H

#include "graph/graph.h"

namespace ceer {
namespace hw {

/** First-order cost of one kernel. */
struct OpCost
{
    double flops = 0.0; ///< Floating-point operations.
    double bytes = 0.0; ///< Bytes moved through device memory.
};

/**
 * Computes the analytic cost of @p node from its shapes and attrs.
 *
 * CPU ops return zero cost here; their time comes from the CPU model.
 */
OpCost opCost(const graph::Node &node);

} // namespace hw
} // namespace ceer

#endif // CEER_HW_OP_COST_H
