#include "hw/device_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ceer {
namespace hw {

using graph::CostCategory;
using graph::Device;
using graph::Node;
using graph::OpType;

GpuTimingModel::GpuTimingModel(GpuModel model) : spec_(&gpuSpec(model)) {}

namespace {

/**
 * Deterministic per-instance efficiency wobble in [1-amp, 1+amp].
 *
 * Real kernels deviate from roofline predictions instance by instance
 * (tiling, occupancy, cache effects). The wobble is keyed on the full
 * shape signature, so identical instances agree across runs while the
 * deviation is irreducible for input-size regressions — this is what
 * keeps Ceer's R^2 in the paper's 0.84-0.98 band instead of 1.0.
 */
double
instanceWobble(const Node &node, std::uint64_t salt, double amplitude)
{
    std::uint64_t key = 0x2545F4914F6CDD1Dull ^ salt;
    key ^= static_cast<std::uint64_t>(node.type) * 0x9E3779B97F4A7C15ull;
    key ^= static_cast<std::uint64_t>(node.outputBytes()) *
           0xFF51AFD7ED558CCDull;
    std::uint64_t mix = 1;
    for (const auto &shape : node.inputShapes) {
        mix = mix * 0x100000001B3ull +
              static_cast<std::uint64_t>(shape.numElements());
    }
    key ^= mix;
    const double u =
        static_cast<double>(util::splitMix64(key) >> 11) * 0x1.0p-53;
    return 1.0 + amplitude * (2.0 * u - 1.0);
}

} // namespace

double
GpuTimingModel::workUs(const Node &node) const
{
    const OpCost cost = opCost(node);
    const CategoryThroughput &rate = spec_->throughput(node.category());
    double compute_us = 0.0;
    double memory_us = 0.0;
    if (cost.flops > 0.0 && rate.tflops > 0.0)
        compute_us = cost.flops / (rate.tflops * 1e6);
    if (cost.bytes > 0.0 && rate.gbps > 0.0)
        memory_us = cost.bytes / (rate.gbps * 1e3);
    double work = std::max(compute_us, memory_us);

    if (node.type == OpType::Conv2DBackpropFilter) {
        // Atomics/workspace contention grows with the activation size,
        // making this kernel superlinear in its input (paper Sec. IV-B
        // fits it with a quadratic).
        work *= 1.0 +
                static_cast<double>(node.inputBytes()) /
                    spec_->filterGradKneeBytes;
    }
    return work * instanceWobble(
                      node, static_cast<std::uint64_t>(spec_->model),
                      0.10);
}

double
GpuTimingModel::meanTimeUs(const Node &node) const
{
    if (node.device() != Device::Gpu)
        util::panic("GpuTimingModel::meanTimeUs on CPU op " + node.name);
    return spec_->kernelLaunchUs + workUs(node);
}

double
GpuTimingModel::instanceSigma(const Node &node) const
{
    // Hash {op type, input bytes, GPU model} into a stable uniform u,
    // then map through 0.012 + 0.10 * u^3: median sigma ~0.025, 95th
    // percentile ~0.098 and a small tail above 0.1 — reproducing the
    // paper's Fig. 5 CDF of normalized stddev across instances.
    std::uint64_t key = 0x6A09E667F3BCC909ull;
    key ^= static_cast<std::uint64_t>(node.type) * 0x9E3779B97F4A7C15ull;
    key ^= static_cast<std::uint64_t>(node.inputBytes()) *
           0xC2B2AE3D27D4EB4Full;
    key ^= static_cast<std::uint64_t>(spec_->model) *
           0x165667B19E3779F9ull;
    const double u =
        static_cast<double>(util::splitMix64(key) >> 11) * 0x1.0p-53;
    return 0.012 + 0.10 * u * u * u;
}

double
GpuTimingModel::effectiveSigma(const Node &node) const
{
    const double work = workUs(node);
    const double sigma_inst = instanceSigma(node);
    const double sigma_short = 0.32 * std::exp(-work / 7.0);
    return std::sqrt(sigma_inst * sigma_inst +
                     sigma_short * sigma_short);
}

double
GpuTimingModel::sampleTimeUs(const Node &node, util::Rng &rng) const
{
    // Instance-specific heavy-op sigma plus a short-kernel term that
    // decays with duration: trivial kernels end up with CV ~0.35,
    // kernels beyond ~20us with CV ~= their instance sigma.
    return meanTimeUs(node) * rng.lognormalFactor(effectiveSigma(node));
}

CpuTimingModel::CpuTimingModel(double speed_factor)
    : speedFactor_(speed_factor)
{
    if (speed_factor <= 0.0)
        util::panic("CpuTimingModel: speed factor must be positive");
}

double
CpuTimingModel::meanTimeUs(const Node &node) const
{
    if (node.device() != Device::Cpu)
        util::panic("CpuTimingModel::meanTimeUs on GPU op " + node.name);
    const double bytes = static_cast<double>(node.outputBytes());
    double base_us = 0.0;
    double gbps = 1.0;
    switch (node.type) {
      case OpType::DecodeJpeg:
        // Raw JPEG decode of a batch takes tens of ms, but the input
        // pipeline prefetches it off the critical path; only a small
        // residual dequeue cost is visible per training step.
        base_us = 250.0;
        gbps = 40.0;
        break;
      case OpType::IteratorGetNext:
        // Batch dequeue from the host pipeline: partially hidden by
        // prefetching, but moving a ~20MB image batch out of the
        // staging area is a real per-step cost in TF r1.x.
        base_us = 400.0;
        gbps = 2.0;
        break;
      case OpType::SparseToDense:
        base_us = 30.0;
        gbps = 1.5;
        break;
      case OpType::OneHot:
        base_us = 20.0;
        gbps = 2.0;
        break;
      case OpType::RandomUniform:
        base_us = 10.0;
        gbps = 1.0;
        break;
      case OpType::Range:
        base_us = 12.0;
        gbps = 4.0;
        break;
      case OpType::Assert:
        base_us = 18.0;
        gbps = 4.0;
        break;
      default:
        base_us = 25.0;
        gbps = 1.0;
        break;
    }
    return (base_us + bytes / (gbps * 1e3)) * speedFactor_;
}

double
CpuTimingModel::sampleTimeUs(const Node &node, util::Rng &rng) const
{
    // Gamma multiplicative noise with CV ~= 0.6: host kernels contend
    // with the input pipeline and the OS, so they are far noisier than
    // heavy GPU kernels (paper Sec. III-C).
    constexpr double kShape = 2.78; // CV = 1/sqrt(shape) ~= 0.6.
    return meanTimeUs(node) * rng.gamma(kShape, 1.0 / kShape);
}

double
hostSpeedFactor(GpuModel model)
{
    // Newer instance families ship newer host CPUs.
    switch (model) {
      case GpuModel::V100: return 1.0;
      case GpuModel::T4:   return 0.95;
      case GpuModel::M60:  return 1.10;
      case GpuModel::K80:  return 1.15;
    }
    util::panic("hostSpeedFactor: unknown GpuModel");
}

} // namespace hw
} // namespace ceer
