/**
 * @file
 * GPU training-memory footprint estimation.
 *
 * The paper lists each GPU's memory (16 GB V100/T4, 12 GB K80, 8 GB
 * M60) but never checks whether a CNN fits; a practitioner's
 * recommender must. The estimate follows the standard accounting for
 * data-parallel SGD training:
 *
 *   params + gradients + optimizer slot  (3x parameter bytes)
 * + retained forward activations         (outputs of non-gradient GPU
 *                                         ops, kept for the backward
 *                                         pass)
 * + framework/cuDNN workspace            (fixed reserve)
 *
 * Activations scale with the per-GPU batch; under data parallelism each
 * replica holds its own copy, so the estimate is per GPU.
 */

#ifndef CEER_HW_MEMORY_H
#define CEER_HW_MEMORY_H

#include "graph/graph.h"
#include "hw/gpu_spec.h"

namespace ceer {
namespace hw {

/** Components of the per-GPU memory estimate, in bytes. */
struct MemoryEstimate
{
    double paramBytes = 0.0;      ///< Weights.
    double gradientBytes = 0.0;   ///< Weight gradients.
    double optimizerBytes = 0.0;  ///< Optimizer slots (0-2x params).
    double activationBytes = 0.0; ///< Retained forward activations.
    double workspaceBytes = 0.0;  ///< cuDNN/framework reserve.

    /** Total footprint. */
    double
    totalBytes() const
    {
        return paramBytes + gradientBytes + optimizerBytes +
               activationBytes + workspaceBytes;
    }

    /** Total footprint in GB (powers of 1000, as GPU specs quote). */
    double totalGB() const { return totalBytes() / 1e9; }
};

/**
 * Estimates the per-GPU training footprint of @p g (built at the
 * per-GPU batch size).
 */
MemoryEstimate estimateTrainingMemory(const graph::Graph &g);

/**
 * True when @p g's training footprint fits in @p gpu's memory with
 * a safety margin.
 *
 * @param g      Training graph at the per-GPU batch size.
 * @param gpu    Target GPU model.
 * @param margin Fraction of device memory kept free (default 5%).
 */
bool fitsInGpuMemory(const graph::Graph &g, GpuModel gpu,
                     double margin = 0.05);

} // namespace hw
} // namespace ceer

#endif // CEER_HW_MEMORY_H
