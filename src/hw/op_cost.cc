#include "hw/op_cost.h"

#include <algorithm>

#include "util/logging.h"

namespace ceer {
namespace hw {

using graph::CostCategory;
using graph::Node;
using graph::OpType;

namespace {

double
totalInputBytes(const Node &node)
{
    return static_cast<double>(node.inputBytes());
}

double
outputBytes(const Node &node)
{
    return static_cast<double>(node.outputBytes());
}

/** 2 * output_elems * kh * kw * in_channels (multiply-accumulate). */
double
convFlops(const Node &node)
{
    const auto &attrs = node.attrs;
    // Input channels live in the filter shape [kh, kw, inC, outC].
    const double in_channels =
        attrs.filterShape.rank() == 4
            ? static_cast<double>(attrs.filterShape.dim(2))
            : 1.0;
    // For the backward ops, outputShape is the gradient being produced;
    // the MAC count is symmetric with the forward pass, so compute it
    // from whichever rank-4 activation tensor is largest.
    double out_elems =
        static_cast<double>(node.outputShape.numElements());
    if (node.type != OpType::Conv2D) {
        // Both backprop kernels perform the same MAC count as the
        // forward pass: 2 * fwd_output_elems * kh * kw * inC. The
        // largest rank-4 tensor in play is the input activation (the
        // output of BackpropInput / an input of BackpropFilter);
        // dividing its element count by the stride area recovers the
        // forward output element count.
        for (const auto &shape : node.inputShapes) {
            if (shape.rank() == 4) {
                out_elems = std::max(
                    out_elems,
                    static_cast<double>(shape.numElements()));
            }
        }
        out_elems /=
            static_cast<double>(attrs.strideH * attrs.strideW);
    }
    return 2.0 * out_elems * attrs.kernelH * attrs.kernelW * in_channels;
}

} // namespace

OpCost
opCost(const Node &node)
{
    OpCost cost;
    const double in_bytes = totalInputBytes(node);
    const double out_bytes = outputBytes(node);
    cost.bytes = in_bytes + out_bytes;

    // Depthwise convolutions: 2 * elems * kh * kw MACs (no input-
    // channel factor — each channel sees only its own filter plane).
    if (node.type == OpType::DepthwiseConv2dNative ||
        node.type == OpType::DepthwiseConv2dNativeBackpropInput ||
        node.type == OpType::DepthwiseConv2dNativeBackpropFilter) {
        double elems =
            static_cast<double>(node.outputShape.numElements());
        if (node.type != OpType::DepthwiseConv2dNative) {
            for (const auto &shape : node.inputShapes) {
                if (shape.rank() == 4) {
                    elems = std::max(
                        elems,
                        static_cast<double>(shape.numElements()));
                }
            }
            elems /= static_cast<double>(node.attrs.strideH *
                                         node.attrs.strideW);
        }
        cost.flops =
            2.0 * elems * node.attrs.kernelH * node.attrs.kernelW;
        return cost;
    }

    switch (node.category()) {
      case CostCategory::Conv:
      case CostCategory::ConvFilterGrad:
        cost.flops = convFlops(node);
        break;
      case CostCategory::MatMulCat: {
        // 2 * output_elems * K. The contraction length K is recovered
        // from the first input and the output's leading dim, which is
        // correct for all three kernels TF emits for a dense layer:
        // forward C[M,N] = A[M,K] W[K,N]  -> K = MK / M;
        // input grad dA[M,K] = dC[M,N] W' -> "K" = MN / M = N;
        // weight grad dW[K,N] = A' dC     -> "K" = MK / K = M (batch).
        const auto &a = node.inputShapes.front();
        const double out_elems =
            static_cast<double>(node.outputShape.numElements());
        // Rows of the (possibly batched) output matrix; dividing the
        // first input's element count by it recovers the contraction
        // length for MatMul and BatchMatMul in all three kernel roles
        // (forward, input grad, weight grad).
        const double rows =
            out_elems / static_cast<double>(node.outputShape.dim(-1));
        const double k =
            static_cast<double>(a.numElements()) / std::max(rows, 1.0);
        cost.flops = 2.0 * out_elems * k;
        break;
      }
      case CostCategory::Pool:
        cost.flops =
            static_cast<double>(node.outputShape.numElements()) *
            node.attrs.kernelH * node.attrs.kernelW;
        break;
      case CostCategory::PoolGrad:
        // Scatter of the gradient plus window bookkeeping: traffic
        // dominates; count one op per input element.
        cost.flops =
            static_cast<double>(node.outputShape.numElements());
        // MaxPoolGrad re-reads the forward input and output.
        cost.bytes = in_bytes + 2.0 * out_bytes;
        break;
      case CostCategory::Elementwise:
      case CostCategory::Bias:
        cost.flops =
            static_cast<double>(node.outputShape.numElements());
        break;
      case CostCategory::BatchNorm:
        // Fused mean/variance/normalize passes: ~5 ops per element
        // forward, ~8 backward, and extra traffic backward.
        if (node.type == OpType::FusedBatchNormGradV3 ||
            node.type == OpType::LayerNormGrad) {
            cost.flops =
                8.0 *
                static_cast<double>(node.outputShape.numElements());
            cost.bytes = in_bytes + 2.0 * out_bytes;
        } else {
            cost.flops =
                5.0 *
                static_cast<double>(node.outputShape.numElements());
        }
        break;
      case CostCategory::DataMovement:
        cost.flops = 0.0;
        break;
      case CostCategory::Reduction:
        cost.flops = static_cast<double>(
            node.inputShapes.empty()
                ? node.outputShape.numElements()
                : node.inputShapes.front().numElements());
        break;
      case CostCategory::Normalization: {
        const double window = 2.0 * node.attrs.depthRadius + 1.0;
        cost.flops =
            2.0 * window *
            static_cast<double>(node.outputShape.numElements());
        cost.bytes = 2.0 * in_bytes + out_bytes;
        break;
      }
      case CostCategory::Trivial:
        // Metadata-only: no traffic proportional to the tensor.
        cost.flops = 0.0;
        cost.bytes = 0.0;
        break;
      case CostCategory::Cpu:
        cost.flops = 0.0;
        cost.bytes = 0.0;
        break;
    }
    return cost;
}

} // namespace hw
} // namespace ceer
