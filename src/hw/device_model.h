/**
 * @file
 * Timing models for GPU kernels and CPU ops.
 *
 * GpuTimingModel turns the analytic OpCost of a node into a compute
 * time on a specific GPU: launch overhead plus a roofline
 * max(flops / eff_tflops, bytes / eff_gbps) with a superlinear
 * correction for Conv2DBackpropFilter.
 *
 * Stochastic behaviour reproduces the paper's Fig. 5: for a fixed
 * {heavy op, input size} pair, run-to-run variability is low (95% of
 * pairs have normalized stddev < 0.1), while light and CPU ops vary a
 * lot. Each {op type, input size, GPU} instance gets a deterministic
 * noise level drawn from a hash, so the *distribution* of variabilities
 * across instances matches the paper's CDF.
 */

#ifndef CEER_HW_DEVICE_MODEL_H
#define CEER_HW_DEVICE_MODEL_H

#include "graph/graph.h"
#include "hw/gpu_spec.h"
#include "hw/op_cost.h"
#include "util/random.h"

namespace ceer {
namespace hw {

/** Compute-time model for one GPU model. */
class GpuTimingModel
{
  public:
    /** @param model Which GPU silicon to model. */
    explicit GpuTimingModel(GpuModel model);

    /** The spec this model was built from. */
    const GpuSpec &spec() const { return *spec_; }

    /**
     * Noise-free (median) compute time of @p node in microseconds.
     * Panics if the node is CPU-placed.
     */
    double meanTimeUs(const graph::Node &node) const;

    /**
     * Samples one execution time with instance-specific variability.
     *
     * @param node Node to execute.
     * @param rng  Generator owned by the simulated device.
     */
    double sampleTimeUs(const graph::Node &node, util::Rng &rng) const;

    /**
     * Deterministic lognormal sigma for a {op type, input size, GPU}
     * instance. Heavy (work-dominated) kernels receive sigma in
     * [0.012, 0.112] with ~95% below 0.1; an additional term that
     * decays with kernel duration makes short kernels noisy.
     */
    double instanceSigma(const graph::Node &node) const;

    /**
     * Total lognormal sigma used when sampling @p node: the instance
     * sigma combined with a short-kernel term ~0.32*exp(-work/7us)
     * that makes launch-bound kernels noisy while leaving kernels
     * above ~20us inside the paper's Fig. 5 variability band.
     */
    double effectiveSigma(const graph::Node &node) const;

  private:
    double workUs(const graph::Node &node) const;

    const GpuSpec *spec_;
};

/** Compute-time model for CPU-placed ops (host kernels). */
class CpuTimingModel
{
  public:
    /**
     * @param speed_factor Relative host speed of the instance family
     *                     (1.0 = baseline); larger is slower.
     */
    explicit CpuTimingModel(double speed_factor = 1.0);

    /** Median time of @p node in microseconds. */
    double meanTimeUs(const graph::Node &node) const;

    /** Samples one execution (gamma noise, CV ~= 0.6). */
    double sampleTimeUs(const graph::Node &node, util::Rng &rng) const;

  private:
    double speedFactor_;
};

/** Host speed factor of the instance family carrying @p model. */
double hostSpeedFactor(GpuModel model);

} // namespace hw
} // namespace ceer

#endif // CEER_HW_DEVICE_MODEL_H
