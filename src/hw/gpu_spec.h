/**
 * @file
 * Hardware descriptions of the four AWS GPU models from the paper:
 * NVIDIA Tesla V100 (P3), K80 (P2), T4 (G4) and Tesla M60 (G3).
 *
 * The specs combine published peak numbers (CUDA cores, memory size)
 * with *effective* per-category throughputs calibrated so that the
 * simulator reproduces the paper's aggregate observations (Sec. III):
 * averaged over heavy ops, P3 is ~10x faster than P2 and ~4x faster
 * than G4, P2 is ~1.5x slower than G3, pooling kernels favour the
 * V100's memory system enough that P3 wins them on *cost* despite its
 * 4x price, and FusedBatchNormGradV3 is the op where G4's cost
 * advantage peaks. See DESIGN.md ("Calibration targets").
 */

#ifndef CEER_HW_GPU_SPEC_H
#define CEER_HW_GPU_SPEC_H

#include <string>
#include <vector>

#include "graph/op_type.h"

namespace ceer {
namespace hw {

/** The four GPU silicon models offered by AWS (paper Sec. II). */
enum class GpuModel { V100, K80, T4, M60 };

/** Effective throughput of one cost category on one GPU. */
struct CategoryThroughput
{
    double tflops; ///< Effective compute throughput (TFLOP/s).
    double gbps;   ///< Effective memory throughput (GB/s).
};

/** Full description of one GPU model. */
struct GpuSpec
{
    GpuModel model;          ///< Which silicon.
    std::string name;        ///< Marketing name, e.g. "Tesla V100".
    std::string family;      ///< AWS instance family: P3/P2/G4/G3.
    int cudaCores;           ///< Published parallel core count.
    double memoryGB;         ///< Device memory.
    double peakTflops;       ///< Published peak fp32 TFLOP/s.
    double peakGbps;         ///< Published peak memory bandwidth.
    /**
     * Fixed per-op overhead: kernel launch plus the TF r1.x executor's
     * dispatch cost (op scheduling, stream bookkeeping), which is why
     * light ops still take 10-20us each on real instances.
     */
    double kernelLaunchUs;
    /**
     * Saturation knee for the Conv2DBackpropFilter superlinear term:
     * effective time grows by (1 + inputBytes / filterGradKneeBytes),
     * producing the quadratic time-vs-size behaviour the paper reports
     * for that op (Sec. IV-B).
     */
    double filterGradKneeBytes;

    /** Effective throughput for @p category (calibrated). */
    const CategoryThroughput &
    throughput(graph::CostCategory category) const;

    /// Effective throughputs indexed by CostCategory. Internal layout;
    /// use throughput().
    CategoryThroughput perCategory[13];
};

/** Returns the spec for @p model. */
const GpuSpec &gpuSpec(GpuModel model);

/** All four GPU models, in the paper's P3, P2, G4, G3 order. */
const std::vector<GpuModel> &allGpuModels();

/** Short name, e.g. "V100". */
std::string gpuModelName(GpuModel model);

/** AWS family name, e.g. "P3". */
std::string gpuFamilyName(GpuModel model);

/**
 * Parses either the silicon name ("V100") or family ("P3").
 *
 * @param name Case-insensitive model or family name.
 * @param out  Receives the parsed model.
 * @return true on success.
 */
bool gpuModelFromName(const std::string &name, GpuModel &out);

} // namespace hw
} // namespace ceer

#endif // CEER_HW_GPU_SPEC_H
