#include "hw/gpu_spec.h"

#include <array>
#include <map>

#include "util/logging.h"
#include "util/strings.h"

namespace ceer {
namespace hw {

using graph::CostCategory;

const CategoryThroughput &
GpuSpec::throughput(CostCategory category) const
{
    const auto idx = static_cast<std::size_t>(category);
    if (idx >= 13)
        util::panic("GpuSpec::throughput: bad category");
    return perCategory[idx];
}

namespace {

// Category order: Conv, ConvFilterGrad, Pool, PoolGrad, Elementwise,
// Bias, BatchNorm, MatMulCat, DataMovement, Reduction, Normalization,
// Trivial, Cpu.
//
// The effective numbers below are the calibration surface of the
// simulator, chosen so that BOTH aggregates the paper reports hold:
//   - the arithmetic mean over the 20 heavy op *types* (Fig. 2): P3
//     ~10x faster than P2, ~3.5-4x faster than G4, P2 ~1.45x slower
//     than G3;
//   - the *time-weighted* (network-level) ratios implied by the
//     evaluation scenarios (Figs. 8-10), which are much tighter
//     because the time-dominant conv/matmul kernels are compute-bound
//     and the peak-FLOPS gaps are small (V100/T4 fp32 peak is only
//     1.73x): conv ~1.8x (G4), ~3.1x (G3), ~4.5x (P2).
// Memory-bound categories carry the wide gaps:
//   - pooling: ~5.2x G4 (so P3 wins pooling on *cost* by ~20%), ~12x
//     P2;
//   - batch-norm: ~2.9x G4 (the paper's -29% G4 cost case);
//   - elementwise/bias/data-movement/reduction: ~3.6x G4, ~9.7x P2;
//   - G3 ~1.45x faster than P2 across the board.
// "Trivial" and "Cpu" rows are unused by the GPU timing path.

const GpuSpec kV100 = {
    GpuModel::V100,
    "Tesla V100",
    "P3",
    5120,
    16.0,
    14.0,
    900.0,
    12.0,
    250e6,
    {
        {8.0, 750.0},  // Conv
        {7.0, 750.0},  // ConvFilterGrad
        {1.5, 162.0},  // Pool
        {1.5, 150.0},  // PoolGrad
        {7.0, 700.0},  // Elementwise
        {7.0, 700.0},  // Bias
        {6.0, 500.0},  // BatchNorm
        {9.0, 750.0},  // MatMulCat
        {6.0, 600.0},  // DataMovement
        {5.0, 550.0},  // Reduction
        {4.0, 400.0},  // Normalization
        {1.0, 900.0},  // Trivial (launch-dominated)
        {0.0, 0.0},    // Cpu (unused)
    },
};

const GpuSpec kT4 = {
    GpuModel::T4,
    "T4 Tensor Core",
    "G4",
    2560,
    16.0,
    8.1,
    320.0,
    14.0,
    200e6,
    {
        {4.15, 390.0}, // Conv
        {3.63, 390.0}, // ConvFilterGrad
        {0.38, 30.0},  // Pool
        {0.38, 29.5},  // PoolGrad
        {1.95, 194.0}, // Elementwise
        {1.95, 194.0}, // Bias
        {1.70, 173.0}, // BatchNorm
        {5.30, 440.0}, // MatMulCat
        {1.70, 167.0}, // DataMovement
        {1.40, 153.0}, // Reduction
        {1.10, 115.0}, // Normalization
        {1.00, 320.0}, // Trivial
        {0.0, 0.0},    // Cpu
    },
};

const GpuSpec kM60 = {
    GpuModel::M60,
    "Tesla M60",
    "G3",
    2048,
    8.0,
    4.8,
    160.0,
    16.0,
    180e6,
    {
        {1.95, 183.0}, // Conv
        {1.71, 183.0}, // ConvFilterGrad
        {0.20, 18.7},  // Pool
        {0.20, 18.0},  // PoolGrad
        {1.05, 104.0}, // Elementwise
        {1.05, 104.0}, // Bias
        {0.85, 88.0},  // BatchNorm
        {2.17, 181.0}, // MatMulCat
        {0.90, 90.0},  // DataMovement
        {0.75, 82.0},  // Reduction
        {0.55, 60.0},  // Normalization
        {1.00, 160.0}, // Trivial
        {0.0, 0.0},    // Cpu
    },
};

const GpuSpec kK80 = {
    GpuModel::K80,
    "K80",
    "P2",
    2496,
    12.0,
    2.8,
    240.0,
    18.0,
    150e6,
    {
        {1.29, 121.0}, // Conv
        {1.13, 121.0}, // ConvFilterGrad
        {0.14, 13.0},  // Pool
        {0.14, 12.5},  // PoolGrad
        {0.72, 72.0},  // Elementwise
        {0.72, 72.0},  // Bias
        {0.60, 60.0},  // BatchNorm
        {1.50, 125.0}, // MatMulCat
        {0.62, 62.0},  // DataMovement
        {0.57, 57.0},  // Reduction
        {0.38, 40.0},  // Normalization
        {1.00, 240.0}, // Trivial
        {0.0, 0.0},    // Cpu
    },
};

} // namespace

const GpuSpec &
gpuSpec(GpuModel model)
{
    switch (model) {
      case GpuModel::V100: return kV100;
      case GpuModel::K80:  return kK80;
      case GpuModel::T4:   return kT4;
      case GpuModel::M60:  return kM60;
    }
    util::panic("gpuSpec: unknown GpuModel");
}

const std::vector<GpuModel> &
allGpuModels()
{
    static const std::vector<GpuModel> models = {
        GpuModel::V100, GpuModel::K80, GpuModel::T4, GpuModel::M60};
    return models;
}

std::string
gpuModelName(GpuModel model)
{
    switch (model) {
      case GpuModel::V100: return "V100";
      case GpuModel::K80:  return "K80";
      case GpuModel::T4:   return "T4";
      case GpuModel::M60:  return "M60";
    }
    util::panic("gpuModelName: unknown GpuModel");
}

std::string
gpuFamilyName(GpuModel model)
{
    return gpuSpec(model).family;
}

bool
gpuModelFromName(const std::string &name, GpuModel &out)
{
    // Loaders call this once per row; build the lowered-name index
    // once instead of re-lowering all eight candidates per call.
    static const std::map<std::string, GpuModel> index = [] {
        std::map<std::string, GpuModel> m;
        for (GpuModel model : allGpuModels()) {
            m.emplace(util::toLower(gpuModelName(model)), model);
            m.emplace(util::toLower(gpuFamilyName(model)), model);
        }
        return m;
    }();
    const auto it = index.find(util::toLower(name));
    if (it == index.end())
        return false;
    out = it->second;
    return true;
}

} // namespace hw
} // namespace ceer
