#include "hw/interconnect.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/logging.h"
#include "util/random.h"

namespace ceer {
namespace hw {

namespace {

// Calibrated so that (a) data-parallel training-time reductions for
// Inception-v1 average ~36%/47%/54% at 2/3/4 GPUs across families
// (paper Fig. 6) — dominated by the constant sync-barrier term, since
// Inception-v1 has only 6.6M parameters; (b) the k=1 overhead is a
// 5-30% effect whose omission hurts AlexNet worst, ~30% on P3 (paper
// Sec. IV-A); and (c) the absolute multi-GPU sync cost is nearly
// family-independent (PCIe-era TF all-reduce), which compresses P3's
// end-to-end advantage to the paper's ~3.6x over P2 at 4 GPUs
// (Fig. 8) and makes G4 the typical cost winner despite P3's per-op
// dominance.
const InterconnectSpec kP3 = {12.0, 16.0, 5.0, 150.0, 15e3, 1.0, 1.1};
const InterconnectSpec kG4 = {8.0, 7.3, 3.25, 200.0, 24e3, 1.0, 1.1};
const InterconnectSpec kG3 = {8.0, 5.5, 3.0, 250.0, 27e3, 1.0, 1.0};
const InterconnectSpec kP2 = {6.0, 4.1, 2.7, 300.0, 30e3, 1.0, 0.9};

} // namespace

const InterconnectSpec &
interconnectSpec(GpuModel model)
{
    switch (model) {
      case GpuModel::V100: return kP3;
      case GpuModel::T4:   return kG4;
      case GpuModel::M60:  return kG3;
      case GpuModel::K80:  return kP2;
    }
    util::panic("interconnectSpec: unknown GpuModel");
}

double
commOverheadUs(GpuModel model, int num_gpus, double param_bytes,
               double input_bytes, int gpus_per_host)
{
    if (num_gpus < 1)
        util::panic("commOverheadUs: num_gpus must be >= 1");
    if (gpus_per_host < 1)
        util::panic("commOverheadUs: gpus_per_host must be >= 1");
    const InterconnectSpec &spec = interconnectSpec(model);
    const int hosts = (num_gpus + gpus_per_host - 1) / gpus_per_host;

    double overhead = spec.baseLatencyUs +
                      input_bytes / (spec.pcieGbps * 1e3) +
                      param_bytes / (spec.stagingGbps * 1e3);
    if (num_gpus >= 2) {
        const double k = static_cast<double>(num_gpus);
        const double ring_traffic = 2.0 * (k - 1.0) / k;
        // A multi-host ring is throttled by the NIC on the cross-host
        // hops, and every extra host adds a barrier round-trip.
        const double sync_gbps =
            hosts > 1 ? std::min(spec.syncGbps, spec.networkGbps)
                      : spec.syncGbps;
        const double sync_lat =
            spec.syncLatencyUs * static_cast<double>(hosts);
        overhead += (sync_lat + param_bytes / (sync_gbps * 1e3)) *
                    ring_traffic *
                    (1.0 + spec.stragglerFactor * (k - 1.0));
    }

    // Deterministic per-(CNN, GPU, k) wobble: real models deviate from
    // the pure params-linear trend (gradient tensor counts, variable
    // layouts), which is why the paper's comm regressions have R^2 of
    // 0.88-0.98 rather than 1.0.
    std::uint64_t key = 0x9E3779B97F4A7C15ull;
    key ^= static_cast<std::uint64_t>(param_bytes) *
           0xC2B2AE3D27D4EB4Full;
    key ^= static_cast<std::uint64_t>(model) * 0x165667B19E3779F9ull;
    key ^= static_cast<std::uint64_t>(num_gpus) * 0xFF51AFD7ED558CCDull;
    const double u =
        static_cast<double>(util::splitMix64(key) >> 11) * 0x1.0p-53;
    return overhead * (1.0 + 0.10 * (2.0 * u - 1.0));
}

double
sampleCommOverheadUs(GpuModel model, int num_gpus, double param_bytes,
                     double input_bytes, util::Rng &rng,
                     int gpus_per_host)
{
    return commOverheadUs(model, num_gpus, param_bytes, input_bytes,
                          gpus_per_host) *
           rng.lognormalFactor(0.06);
}

double
sampleCommOverheadUs(GpuModel model, int num_gpus, double param_bytes,
                     double input_bytes, std::uint64_t seed,
                     std::int64_t iteration, int gpus_per_host)
{
    // Tag keeps the comm lane disjoint from the simulator's per-node
    // GPU/CPU sample keys derived from the same base seed.
    constexpr std::uint64_t kCommLane = 0x434F4D4Dull; // "COMM"
    const std::uint64_t key =
        util::hashMix(util::hashMix(seed, kCommLane),
                      static_cast<std::uint64_t>(iteration));
    return commOverheadUs(model, num_gpus, param_bytes, input_bytes,
                          gpus_per_host) *
           std::exp(0.06 * util::normalFromKey(key));
}

} // namespace hw
} // namespace ceer
