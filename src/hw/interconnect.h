/**
 * @file
 * Host<->GPU and GPU<->GPU communication model.
 *
 * The per-iteration communication overhead S_GPU(k, params) is the
 * ground truth Ceer's comm regression (paper Sec. IV-C) has to learn.
 * It is linear in the parameter-byte count for every fixed (GPU type,
 * k), matching the paper's Fig. 7:
 *
 *   S(1) = lat + input_bytes/pcie + param_bytes/staging
 *   S(k>=2) = S(1) + (sync_lat + param_bytes / sync)
 *             * g(k) * (1 + straggler*(k-1))
 *
 * with g(k) = 2(k-1)/k (ring all-reduce traffic). "staging" models the
 * TF r1.x replicated-variable refresh between host and device each
 * iteration. The k>=2 overhead has a *large constant* term (sync_lat:
 * barrier stalls and launch serialization of the synchronization ops)
 * plus a bandwidth term; the constant is what makes small models like
 * Inception-v1 scale as poorly as the paper's Fig. 6 shows while
 * 45-145M-parameter models still scale usefully (Fig. 10). The
 * straggler term reproduces the growing synchronization tail the paper
 * attributes to more GPUs (Sec. III-D).
 */

#ifndef CEER_HW_INTERCONNECT_H
#define CEER_HW_INTERCONNECT_H

#include <cstdint>

#include "hw/gpu_spec.h"
#include "util/random.h"

namespace ceer {
namespace hw {

/** Per-family interconnect description. */
struct InterconnectSpec
{
    double pcieGbps;        ///< Input-batch transfer bandwidth.
    double stagingGbps;     ///< Per-iteration variable refresh bw.
    double syncGbps;        ///< Effective all-reduce bandwidth.
    double baseLatencyUs;   ///< Host-sync latency (k = 1 term).
    double syncLatencyUs;   ///< Constant barrier cost per sync round.
    double stragglerFactor; ///< Tail growth per additional GPU.
    /**
     * Effective all-reduce bandwidth once the ring crosses host
     * boundaries (10-25 GbE era NICs; far below the intra-host PCIe
     * path). Exercised when a deployment spans multiple hosts — the
     * paper's Sec. VI limitation 2 notes its comm model would need
     * retraining for this case.
     */
    double networkGbps;
};

/** Returns the interconnect spec of the family carrying @p model. */
const InterconnectSpec &interconnectSpec(GpuModel model);

/**
 * Mean per-iteration communication overhead in microseconds.
 *
 * @param model       GPU model (selects the interconnect).
 * @param num_gpus    Number of data-parallel GPUs (>= 1).
 * @param param_bytes Total trainable parameter bytes of the CNN.
 * @param input_bytes Per-GPU input batch bytes.
 */
double commOverheadUs(GpuModel model, int num_gpus, double param_bytes,
                      double input_bytes, int gpus_per_host = 8);

/**
 * Samples one iteration's communication overhead (lognormal noise
 * around the mean, sigma 0.06).
 */
double sampleCommOverheadUs(GpuModel model, int num_gpus,
                            double param_bytes, double input_bytes,
                            util::Rng &rng, int gpus_per_host = 8);

/**
 * Counter-based variant: the lognormal noise is a pure function of
 * (seed, iteration) instead of a stateful Rng walk, so the sample for
 * any iteration is independent of how many iterations ran before it.
 * This is what lets the simulator fan iterations out across threads
 * while staying bit-deterministic. Same distribution as the Rng
 * overload (sigma 0.06 around the same mean).
 */
double sampleCommOverheadUs(GpuModel model, int num_gpus,
                            double param_bytes, double input_bytes,
                            std::uint64_t seed, std::int64_t iteration,
                            int gpus_per_host = 8);

} // namespace hw
} // namespace ceer

#endif // CEER_HW_INTERCONNECT_H
