#include "hw/memory.h"

#include <algorithm>

namespace ceer {
namespace hw {

using graph::Device;
using graph::Node;

MemoryEstimate
estimateTrainingMemory(const graph::Graph &g)
{
    MemoryEstimate estimate;
    estimate.paramBytes =
        static_cast<double>(g.totalParameters()) * 4.0;
    estimate.gradientBytes = estimate.paramBytes;

    // Optimizer slots: vanilla SGD keeps none, momentum one, Adam two.
    // Detect from the update ops present in the graph.
    int slots = 0;
    for (const Node &node : g.nodes()) {
        if (node.type == graph::OpType::ApplyMomentum)
            slots = std::max(slots, 1);
        else if (node.type == graph::OpType::ApplyAdam)
            slots = std::max(slots, 2);
    }
    estimate.optimizerBytes = slots * estimate.paramBytes;

    // A forward activation must be retained only if the backward pass
    // actually reads it (e.g. ReLU outputs feed ReluGrad; fused
    // batch-norm outputs are not read by FusedBatchNormGradV3, which
    // re-reads the conv output instead). The gradient flags plus the
    // consumer lists identify exactly that set.
    const auto &consumers = g.consumers();
    for (const Node &node : g.nodes()) {
        if (node.device() != Device::Gpu || node.isGradient)
            continue;
        bool retained = false;
        for (graph::NodeId consumer :
             consumers[static_cast<std::size_t>(node.id)]) {
            if (g.node(consumer).isGradient) {
                retained = true;
                break;
            }
        }
        if (retained) {
            estimate.activationBytes +=
                static_cast<double>(node.outputBytes());
        }
    }
    // cuDNN workspaces, streams, context: a flat reserve.
    estimate.workspaceBytes = 600e6;
    return estimate;
}

bool
fitsInGpuMemory(const graph::Graph &g, GpuModel gpu, double margin)
{
    const double budget = gpuSpec(gpu).memoryGB * 1e9 * (1.0 - margin);
    return estimateTrainingMemory(g).totalBytes() <= budget;
}

} // namespace hw
} // namespace ceer
