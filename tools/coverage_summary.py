#!/usr/bin/env python3
"""Summarize gcov line coverage for src/ and enforce the baseline.

Drives plain `gcov --json-format` over every .gcda the instrumented
test run produced (no lcov/gcovr dependency), merges the per-TU
reports, and prints a per-subsystem and total line-coverage summary
for files under src/. Exits nonzero when total coverage falls below
the floor recorded in tools/coverage_baseline.txt, so coverage can
only ratchet up.

A line is "instrumented" if any translation unit emitted a counter for
it, and "covered" if any TU observed a nonzero count (headers compiled
into many TUs count once).

Usage: tools/coverage_summary.py [--build-dir build-cov]
           [--source-root .] [--baseline tools/coverage_baseline.txt]
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile
from collections import defaultdict


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.join(root, name))
    return sorted(out)


def merge_gcov_json(report, source_root, instrumented, covered):
    for entry in report.get("files", []):
        path = entry.get("file", "")
        if not os.path.isabs(path):
            path = os.path.join(source_root, path)
        path = os.path.realpath(path)
        src_prefix = os.path.join(source_root, "src") + os.sep
        if not path.startswith(src_prefix):
            continue
        rel = os.path.relpath(path, source_root)
        for line in entry.get("lines", []):
            number = line.get("line_number")
            if number is None:
                continue
            instrumented[rel].add(number)
            if line.get("count", 0) > 0:
                covered[rel].add(number)


def collect_coverage(build_dir, source_root):
    gcda_files = find_gcda(build_dir)
    if not gcda_files:
        sys.exit(
            f"no .gcda files under {build_dir}; build with "
            "-DCEER_COVERAGE=ON and run the tests first"
        )
    instrumented = defaultdict(set)
    covered = defaultdict(set)
    # One gcda at a time in a scratch cwd: gcov names its .gcov.json.gz
    # after the source basename, so batching could collide.
    with tempfile.TemporaryDirectory() as scratch:
        for gcda in gcda_files:
            result = subprocess.run(
                ["gcov", "--json-format", os.path.abspath(gcda)],
                cwd=scratch,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            if result.returncode != 0:
                print(f"warning: gcov failed on {gcda}", file=sys.stderr)
            for name in os.listdir(scratch):
                if not name.endswith(".gcov.json.gz"):
                    continue
                full = os.path.join(scratch, name)
                try:
                    with gzip.open(full, "rt") as handle:
                        report = json.load(handle)
                    merge_gcov_json(
                        report, source_root, instrumented, covered
                    )
                except (OSError, json.JSONDecodeError) as error:
                    print(
                        f"warning: unreadable gcov report {name}: {error}",
                        file=sys.stderr,
                    )
                os.remove(full)
    return instrumented, covered


def read_baseline(path):
    try:
        with open(path) as handle:
            for raw in handle:
                line = raw.split("#", 1)[0].strip()
                if line:
                    return float(line)
    except OSError:
        pass
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument("--source-root", default=".")
    parser.add_argument(
        "--baseline", default="tools/coverage_baseline.txt"
    )
    args = parser.parse_args()
    source_root = os.path.realpath(args.source_root)

    instrumented, covered = collect_coverage(args.build_dir, source_root)

    per_subsystem = defaultdict(lambda: [0, 0])
    total_lines = 0
    total_covered = 0
    for rel, lines in sorted(instrumented.items()):
        parts = rel.split(os.sep)
        subsystem = parts[1] if len(parts) > 2 else parts[-1]
        hit = len(covered.get(rel, set()))
        per_subsystem[subsystem][0] += len(lines)
        per_subsystem[subsystem][1] += hit
        total_lines += len(lines)
        total_covered += hit

    print(f"{'subsystem':<12} {'lines':>7} {'covered':>8} {'pct':>7}")
    for subsystem, (lines, hit) in sorted(per_subsystem.items()):
        print(
            f"{subsystem:<12} {lines:>7} {hit:>8} "
            f"{100.0 * hit / lines:>6.1f}%"
        )
    total_pct = 100.0 * total_covered / max(total_lines, 1)
    print(
        f"{'TOTAL':<12} {total_lines:>7} {total_covered:>8} "
        f"{total_pct:>6.1f}%"
    )

    floor = read_baseline(args.baseline)
    if floor is None:
        print(f"no baseline at {args.baseline}; not enforcing a floor")
        return 0
    if total_pct < floor:
        print(
            f"FAIL: total line coverage {total_pct:.1f}% is below the "
            f"baseline floor {floor:.1f}% ({args.baseline})"
        )
        return 1
    print(f"OK: total {total_pct:.1f}% >= baseline floor {floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
