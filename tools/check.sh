#!/usr/bin/env bash
#
# CI-style check driver. Default mode runs four passes:
#
#   release   Release build + full ctest suite
#   bench     microbenchmark smoke runs (tiny iteration counts)
#   tsan      ThreadSanitizer build of the concurrency-sensitive pieces
#             (thread pool, metrics registry, parallel profiling,
#             iteration-parallel simulation, parallel recommend/train,
#             the parallel cross-predictor evaluation sweep, the ceerd
#             serving stack)
#   ubsan     UBSanitizer build of the serialization/I-O boundary
#
# `tools/check.sh coverage` instead builds with -DCEER_COVERAGE=ON,
# runs the test suite, and summarizes gcov line coverage for src/
# against the floor in tools/coverage_baseline.txt.
#
# `tools/check.sh scaling` runs the full micro benches and fails on
# any below-serial scaling row. On a multi-core host a parallel path
# running slower than serial is a scheduler regression, full stop; on
# a single-core host the benches mark the run "skipped_scaling" and
# the pass only verifies they said so (identity is still enforced by
# the benches' own exit codes).
#
# Every pass runs even if an earlier one failed; each pass's status is
# checked explicitly, a one-line PASS/FAIL summary is printed at the
# end, and the script exits nonzero if ANY pass failed.
#
# Usage: tools/check.sh [coverage|scaling] [jobs]

set -uo pipefail
cd "$(dirname "$0")/.."

MODE=all
if [[ "${1:-}" == "coverage" ]]; then
    MODE=coverage
    shift
elif [[ "${1:-}" == "scaling" ]]; then
    MODE=scaling
    shift
fi
JOBS="${1:-$(nproc)}"

PASS_NAMES=()
PASS_RESULTS=()
FAILED=0

# Runs one named pass (a function) in a `set -e` subshell so the first
# failing command fails the pass, records PASS/FAIL, and keeps going.
#
# The subshell must be a bare statement: putting it in an `if` or `||`
# condition context would make bash ignore `set -e` inside it and let
# a pass "succeed" past its first failing command — exactly the
# swallowed-exit-status bug this helper exists to prevent.
run_pass() {
    local name="$1"
    shift
    echo
    echo "==> ${name}"
    (set -e; "$@")
    local status=$?
    if [[ "${status}" -eq 0 ]]; then
        PASS_NAMES+=("${name}")
        PASS_RESULTS+=("PASS")
    else
        PASS_NAMES+=("${name}")
        PASS_RESULTS+=("FAIL")
        FAILED=1
    fi
}

pass_release() {
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
}

pass_bench_smoke() {
    # The perf-tracking benches must at least run clean and hold their
    # internal determinism checks ('' disables the JSON artifacts;
    # real numbers come from full runs).
    ./build/bench/micro_sim --iters 50 --out ''
    ./build/bench/micro_profile --iters 5 --out ''
    # micro_ceer's nonzero exit asserts the serial==parallel
    # recommender identity and the plan-vs-node-walk bit identity.
    ./build/bench/micro_ceer --iters 50 --train-iters 10 \
        --catalog-copies 8 --out ''
    # micro_obs doubles as a smoke test of the --metrics-out plumbing.
    ./build/bench/micro_obs --ops 100000 --threads 4 --out '' \
        --metrics-out build/check_obs_metrics.json
    grep -q obs_bench.counter build/check_obs_metrics.json
    # micro_io's nonzero exit asserts bit-identity across the CSV /
    # streaming-CBF / mmap-CBF load paths and the fleet recommend sweep.
    ./build/bench/micro_io --train-iters 10 --load-iters 3 \
        --fleet 256 --out ''
    # micro_serve's nonzero exit asserts the loadgen-vs-in-process
    # byte identity (across every reactor/thread combination, and
    # across hot reload) plus the steady-state allocation budget; the
    # smoke run also checks the emitted JSON carries the latency
    # fields and that the allocation gate actually passed.
    ./build/bench/micro_serve --train-iters 10 --seconds 0.4 \
        --connections 2 --models vgg_19,alexnet --qps-targets 50,0 \
        --out build/check_serve.json
    grep -q identity_ok build/check_serve.json
    grep -q p999_us build/check_serve.json
    grep -q '"alloc_gate_ok": true' build/check_serve.json
    # ceerd smoke through the CLI: serve a freshly trained model,
    # drive it briefly with the loadgen, then require a clean SIGTERM
    # drain (exit 0) and a well-formed loadgen JSON. The server sends
    # with MSG_NOSIGNAL and retries EINTR, so the mid-run signal must
    # not break in-flight replies.
    ./build/tools/ceer profile --iters 15 --models vgg_11,inception_v1 \
        --out build/check_serve_profiles.csv
    ./build/tools/ceer train --profiles build/check_serve_profiles.csv \
        --out build/check_serve_model.txt
    rm -f build/check_serve_port.txt
    ./build/tools/ceer serve --ceer-model build/check_serve_model.txt \
        --port 0 --port-file build/check_serve_port.txt &
    local serve_pid=$!
    for _ in $(seq 1 100); do
        if [[ -s build/check_serve_port.txt ]]; then
            break
        fi
        sleep 0.1
    done
    ./build/tools/ceer loadgen \
        --port "$(cat build/check_serve_port.txt)" \
        --seconds 1 --connections 2 --models vgg_19 \
        --out build/check_serve_loadgen.json
    kill -TERM "$serve_pid"
    wait "$serve_pid"
    grep -q throughput_qps build/check_serve_loadgen.json
    # The same smoke with two reactors: accept sharding (or the
    # single-listener fallback), cross-reactor sessions and the
    # reactor-aware SIGTERM drain must all survive a real process
    # lifecycle, not just the in-process tests.
    rm -f build/check_serve_port.txt
    ./build/tools/ceer serve --ceer-model build/check_serve_model.txt \
        --port 0 --reactors 2 \
        --port-file build/check_serve_port.txt &
    serve_pid=$!
    for _ in $(seq 1 100); do
        if [[ -s build/check_serve_port.txt ]]; then
            break
        fi
        sleep 0.1
    done
    ./build/tools/ceer loadgen \
        --port "$(cat build/check_serve_port.txt)" \
        --seconds 1 --connections 3 --models vgg_19 \
        --out build/check_serve_loadgen2.json
    kill -TERM "$serve_pid"
    wait "$serve_pid"
    grep -q throughput_qps build/check_serve_loadgen2.json
    # Cross-predictor evaluation smoke: train -> evaluate over the
    # checked-in fixture must reproduce the golden report byte for
    # byte, serially and under a parallel sweep (the same gate ctest
    # runs as cli_evaluate_golden, here exercised through check.sh's
    # release binaries).
    ./build/tools/ceer evaluate \
        --profiles tests/data/eval_fixture_profiles.csv \
        --models alexnet,inception_v1 --ks 1,2,4 --eval-iters 10 \
        --threads 1 --out build/check_eval_report.csv
    cmp tests/data/eval_report_golden.csv build/check_eval_report.csv
    ./build/tools/ceer evaluate \
        --profiles tests/data/eval_fixture_profiles.csv \
        --models alexnet,inception_v1 --ks 1,2,4 --eval-iters 10 \
        --threads 4 --out build/check_eval_report_par.csv
    cmp tests/data/eval_report_golden.csv build/check_eval_report_par.csv
    # The extended Table-5 bench: every registered predictor swept
    # over the held-out test CNNs, with Ceer required to win.
    ./build/bench/tab_predictor_errors --iters 25 --eval-iters 25
}

pass_tsan() {
    cmake -B build-tsan -S . -DCEER_SANITIZE=thread \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build build-tsan -j "$JOBS" \
          --target obs_test thread_pool_test profile_test sim_test \
                   predict_plan_test serve_test baselines_test

    # Run the TSan binaries directly (ctest discovery would require
    # every test target to be built). TSAN_OPTIONS makes races hard
    # failures.
    export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
    # The sharded metrics registry: 16-thread hammer, snapshots taken
    # mid-record, and the span sink under concurrent writers.
    ./build-tsan/tests/obs_test
    ./build-tsan/tests/thread_pool_test
    ./build-tsan/tests/profile_test \
        --gtest_filter='SeedingTest.*:DatasetTest.LoadedDatasetServesIndexedQueries'
    # Exercise the iteration-parallel run() under TSan: chunked
    # fan-out across the thread pool with deterministic merge.
    ./build-tsan/tests/sim_test \
        --gtest_filter='SimulatorTest.ParallelRunIsByteIdenticalToSerial:SimulatorTest.RunIsByteIdenticalWithObservabilityOn'
    # The parallel recommender sweep (shared PredictPlan memo under
    # concurrent first-touch) and the parallel trainer fits under
    # TSan, with and without observability.
    ./build-tsan/tests/predict_plan_test \
        --gtest_filter='ParallelRecommenderTest.*:ParallelTrainerTest.*:SerialAndParallel/*'
    # The cross-predictor evaluation sweep under TSan: every engine
    # predicting concurrently (the Ceer variants' first-touch plan
    # memo included) while per-cell simulators run on the pool.
    ./build-tsan/tests/baselines_test \
        --gtest_filter='EvalSweepTest.ParallelSweepIsByteIdentical'
    # The full ceerd stack under TSan: multi-reactor accept sharding
    # and fd handoff, the shared plan cache's concurrent compile-once
    # path, reactor/worker re-arm handoff, engine hot-swap, admission
    # counters and the loadgen's dedicated client threads all
    # race-checked end to end.
    ./build-tsan/tests/serve_test
}

pass_ubsan() {
    cmake -B build-ubsan -S . -DCEER_SANITIZE=undefined \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build build-ubsan -j "$JOBS" \
          --target obs_test util_test regression_test robustness_test \
                   roundtrip_test profile_cache_test io_test

    # Checked parsing must be UB-free on adversarial input:
    # overflowing integers, huge exponents, garbled bytes.
    # halt_on_error turns any report into a hard failure.
    export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
    ./build-ubsan/tests/obs_test --gtest_filter='ObsJsonTest.*'
    ./build-ubsan/tests/util_test --gtest_filter='CsvTest.*:ParseTest.*'
    ./build-ubsan/tests/regression_test \
        --gtest_filter='LinearModelTest.*'
    ./build-ubsan/tests/robustness_test \
        --gtest_filter='CsvRobustnessTest.*:ModelFileTest.*'
    ./build-ubsan/tests/roundtrip_test
    ./build-ubsan/tests/profile_cache_test
    # The CBF reader's corruption matrix under UBSan: misaligned and
    # short sections must be validation failures, never UB.
    ./build-ubsan/tests/io_test
}

pass_scaling() {
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS" \
          --target micro_sim micro_profile micro_ceer micro_obs
    mkdir -p build/scaling
    ./build/bench/micro_sim --out build/scaling/BENCH_sim.json
    ./build/bench/micro_profile --out build/scaling/BENCH_profile.json
    ./build/bench/micro_ceer --out build/scaling/BENCH_ceer.json
    ./build/bench/micro_obs --out build/scaling/BENCH_obs.json

    # On >= 2 hardware threads any below-serial row is a hard failure
    # and the recommender sweep must clear 1.5x at 2 threads; on one
    # hardware thread the benches must have declared the scaling
    # numbers meaningless instead of reporting them as regressions.
    python3 - <<'EOF'
import json, os, sys

multi_core = (os.cpu_count() or 1) >= 2
failures = []
for name in ("sim", "profile", "ceer", "obs"):
    path = f"build/scaling/BENCH_{name}.json"
    with open(path) as f:
        doc = json.load(f)
    skipped = doc.get("skipped_scaling")
    below = doc.get("below_serial_measurements")
    if multi_core:
        if skipped is not False:
            failures.append(f"{path}: skipped_scaling={skipped!r} "
                            "on a multi-core host")
        if below != 0:
            failures.append(f"{path}: {below} below-serial scaling "
                            "row(s)")
    elif skipped is not True:
        failures.append(f"{path}: single-core host but "
                        f"skipped_scaling={skipped!r}")

if multi_core:
    with open("build/scaling/BENCH_ceer.json") as f:
        ceer = json.load(f)
    two = [r for r in ceer["recommender_sweep"] if r["threads"] == 2]
    if not two:
        failures.append("BENCH_ceer.json: no 2-thread sweep row")
    elif two[0]["speedup"] < 1.5:
        failures.append("BENCH_ceer.json: recommender speedup at 2 "
                        f"threads is {two[0]['speedup']:.2f}x (< 1.5x)")

for failure in failures:
    print(f"FAIL: {failure}")
if failures:
    sys.exit(1)
print(f"scaling gate clean (multi_core={multi_core})")
EOF
}

pass_coverage() {
    cmake -B build-cov -S . -DCEER_COVERAGE=ON \
          -DCMAKE_BUILD_TYPE=Debug >/dev/null
    cmake --build build-cov -j "$JOBS"
    ctest --test-dir build-cov --output-on-failure -j "$JOBS"
    python3 tools/coverage_summary.py --build-dir build-cov
}

if [[ "$MODE" == "coverage" ]]; then
    run_pass "coverage build + tests + line-coverage floor" pass_coverage
elif [[ "$MODE" == "scaling" ]]; then
    run_pass "micro-bench scaling gate (below-serial rows)" pass_scaling
else
    run_pass "release build + tests" pass_release
    run_pass "microbenchmark smoke runs" pass_bench_smoke
    run_pass "ThreadSanitizer (concurrency-sensitive pieces)" pass_tsan
    run_pass "UBSanitizer (serialization/I-O boundary)" pass_ubsan
fi

echo
echo "==> summary"
for i in "${!PASS_NAMES[@]}"; do
    printf '  %-48s %s\n' "${PASS_NAMES[$i]}" "${PASS_RESULTS[$i]}"
done
if [[ "$FAILED" -ne 0 ]]; then
    echo "RESULT: FAIL"
    exit 1
fi
echo "RESULT: PASS"
