#!/usr/bin/env bash
#
# CI-style check: Release build + full ctest, microbenchmark smoke
# runs, a ThreadSanitizer build of the concurrency-sensitive pieces
# (thread pool, parallel profile collection, iteration-parallel
# simulation) so data races are caught on every change, and a
# UBSanitizer build of the serialization boundary (checked parsing,
# CSV, round-trip and corrupt-input recovery tests).
#
# Usage: tools/check.sh [jobs]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "==> Release build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> microbenchmark smoke runs (tiny iteration counts)"
# The perf-tracking benches must at least run clean and hold their
# internal determinism checks ('' disables the JSON artifacts; real
# numbers come from full runs).
./build/bench/micro_sim --iters 50 --out ''
./build/bench/micro_profile --iters 5 --out ''
# micro_ceer's nonzero exit asserts the serial==parallel recommender
# identity and the compiled-plan-vs-node-walk bit identity.
./build/bench/micro_ceer --iters 50 --train-iters 10 \
    --catalog-copies 8 --out ''

echo "==> ThreadSanitizer build (thread pool + parallel collection + parallel sim + parallel predict)"
cmake -B build-tsan -S . -DCEER_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" \
      --target thread_pool_test profile_test sim_test predict_plan_test

# Run the TSan binaries directly (ctest discovery would require every
# test target to be built). TSAN_OPTIONS makes races hard failures.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
./build-tsan/tests/thread_pool_test
./build-tsan/tests/profile_test \
    --gtest_filter='SeedingTest.*:DatasetTest.LoadedDatasetServesIndexedQueries'
# Exercise the iteration-parallel run() under TSan: chunked fan-out
# across the thread pool with deterministic merge.
./build-tsan/tests/sim_test \
    --gtest_filter='SimulatorTest.ParallelRunIsByteIdenticalToSerial'
# The parallel recommender sweep (shared PredictPlan memo under
# concurrent first-touch) and the parallel trainer fits under TSan.
./build-tsan/tests/predict_plan_test \
    --gtest_filter='ParallelRecommenderTest.*:ParallelTrainerTest.*:SerialAndParallel/*'

echo "==> UndefinedBehaviorSanitizer build (serialization/I-O boundary)"
cmake -B build-ubsan -S . -DCEER_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-ubsan -j "$JOBS" \
      --target util_test regression_test robustness_test \
               roundtrip_test profile_cache_test

# Checked parsing must be UB-free on adversarial input: overflowing
# integers, huge exponents, garbled bytes. halt_on_error turns any
# report into a hard failure.
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
./build-ubsan/tests/util_test --gtest_filter='CsvTest.*:ParseTest.*'
./build-ubsan/tests/regression_test \
    --gtest_filter='LinearModelTest.*'
./build-ubsan/tests/robustness_test \
    --gtest_filter='CsvRobustnessTest.*:ModelFileTest.*'
./build-ubsan/tests/roundtrip_test
./build-ubsan/tests/profile_cache_test

echo "==> all checks passed"
