#!/usr/bin/env bash
#
# CI-style check: Release build + full ctest, then a ThreadSanitizer
# build of the concurrency-sensitive pieces (thread pool + parallel
# profile collection) so data races in the profiling engine are caught
# on every change.
#
# Usage: tools/check.sh [jobs]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "==> Release build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build (thread pool + parallel collection)"
cmake -B build-tsan -S . -DCEER_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" \
      --target thread_pool_test profile_test

# Run the TSan binaries directly (ctest discovery would require every
# test target to be built). TSAN_OPTIONS makes races hard failures.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
./build-tsan/tests/thread_pool_test
./build-tsan/tests/profile_test \
    --gtest_filter='SeedingTest.*:DatasetTest.LoadedDatasetServesIndexedQueries'

echo "==> all checks passed"
