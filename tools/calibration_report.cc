/**
 * @file
 * `calibration_report` — prints the simulated substrate's aggregate
 * behaviour against every calibration target in DESIGN.md.
 *
 * The per-category effective throughputs in hw/gpu_spec.cc and the
 * interconnect constants in hw/interconnect.cc are fitted quantities;
 * anyone changing them (new GPU, different era of hardware) should run
 * this tool to see which paper-derived aggregates moved. The bench
 * binaries check the same bands, but this report computes everything
 * in one place in under a minute.
 */

#include <iostream>

#include "models/model_zoo.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;

double
meanIterationUs(const graph::Graph &g, hw::GpuModel gpu, int k,
                int iterations, std::uint64_t seed)
{
    sim::SimConfig config;
    config.gpu = gpu;
    config.numGpus = k;
    config.seed = seed;
    sim::TrainingSimulator simulator(g, config);
    return simulator.run(iterations).iterationUs.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("iters", 25, "iterations per measurement");
    flags.parse(argc, argv);
    const int iters = static_cast<int>(flags.getInt("iters"));

    bool all_ok = true;
    auto check = [&](const std::string &what, double measured,
                     double lo, double hi) {
        all_ok &= util::printCheck(std::cout, what, measured, lo, hi);
    };

    // --- Fig. 6: Inception-v1 data-parallel scaling ---
    util::printBanner(std::cout, "Fig. 6 targets (Inception-v1)");
    {
        const graph::Graph g = models::buildInceptionV1(32);
        double reduction[3] = {0, 0, 0};
        for (hw::GpuModel gpu : hw::allGpuModels()) {
            const double t1 = meanIterationUs(g, gpu, 1, iters, 9);
            for (int k = 2; k <= 4; ++k) {
                reduction[k - 2] +=
                    1.0 - meanIterationUs(g, gpu, k, iters, 9) /
                              (k * t1);
            }
        }
        const double target[3] = {0.358, 0.466, 0.536};
        for (int i = 0; i < 3; ++i) {
            check(util::format("mean reduction at %d GPUs", i + 2),
                  reduction[i] / 4.0, target[i] - 0.06,
                  target[i] + 0.06);
        }
    }

    // --- Fig. 8: k = 4 end-to-end ratios over the test CNNs ---
    util::printBanner(std::cout, "Fig. 8 targets (test CNNs, k = 4)");
    {
        double p2 = 0.0, g3 = 0.0, g4 = 0.0;
        int g4_cheapest = 0;
        const double hourly[4] = {12.24, 3.60, 3.912, 4.56};
        for (const std::string &name : models::testSetNames()) {
            const graph::Graph g = models::buildModel(name, 32);
            double t[4];
            int index = 0;
            for (hw::GpuModel gpu : hw::allGpuModels())
                t[index++] = meanIterationUs(g, gpu, 4, iters, 13);
            p2 += t[1] / t[0];
            g4 += t[2] / t[0];
            g3 += t[3] / t[0];
            int cheapest = 0;
            for (int i = 1; i < 4; ++i)
                if (t[i] * hourly[i] < t[cheapest] * hourly[cheapest])
                    cheapest = i;
            g4_cheapest += cheapest == 2;
        }
        check("P2/P3 time ratio (paper 3.62)", p2 / 4.0, 2.5, 5.6);
        check("G3/P3 time ratio (paper 2.70)", g3 / 4.0, 2.0, 3.9);
        check("G4/P3 time ratio (paper 1.92)", g4 / 4.0, 1.45, 2.4);
        check("CNNs where G4 is cheapest", g4_cheapest, 3, 4);
    }

    // --- Sec. IV-A: AlexNet k=1 comm share on P3 ---
    util::printBanner(std::cout, "Sec. IV-A target (AlexNet, k = 1)");
    {
        const graph::Graph g = models::buildAlexNet(32);
        sim::SimConfig config;
        config.seed = 17;
        sim::TrainingSimulator simulator(g, config);
        const sim::RunStats stats = simulator.run(iters * 3);
        check("comm share of the AlexNet iteration on P3 "
              "(paper: ~30%)",
              stats.commUs.mean() / stats.iterationUs.mean(), 0.18,
              0.40);
    }

    std::cout << (all_ok ? "\nCALIBRATION OK\n"
                         : "\nCALIBRATION DRIFTED — re-tune "
                           "hw/gpu_spec.cc / hw/interconnect.cc\n");
    return all_ok ? 0 : 1;
}
