/**
 * @file
 * `ceer` — command-line front end for the whole pipeline.
 *
 * Subcommands:
 *   zoo                               list the 12 zoo CNNs
 *   dot         --model M             print a Graphviz DOT of M's graph
 *   summary     --model M [--depth D] per-layer op/param/GFLOP table
 *   profile     --out profiles.csv    run the empirical study
 *   train       --profiles f --out m  fit Ceer from a profile file
 *   evaluate    --profiles f --out r  sweep every registered predictor
 *                                     over the zoo, write an accuracy
 *                                     report (docs/evaluation.md)
 *   predict     --ceer-model m --model M --gpu P3 --gpus 4
 *   recommend   --ceer-model m --model M [--objective cost|time]
 *               [--hourly-budget B] [--total-budget B] [--market]
 *               [--auto-train [--profile-iters N] [--train-models ..]]
 *   convert     --in f --out g        convert profiles/models/catalogs
 *                                     between CSV/text and CBF
 *   gen-catalog --count N --out f     emit a synthetic instance fleet
 *   serve       --ceer-model m --port P   run ceerd, the persistent
 *                                     recommendation server
 *   loadgen     --port P              replay recommend traffic against
 *                                     a running ceerd
 *
 * Every subcommand accepts --help, --metrics-out <file> and
 * --trace-out <file>; the latter two turn the observability layer on
 * for the run and write the metrics JSON snapshot / Chrome-trace span
 * timeline on exit (see docs/observability.md).
 *
 * Profiles, models and catalogs each have two on-disk dialects: the
 * text/CSV interchange form and the CBF binary form
 * (docs/file_formats.md). Every loader sniffs the magic bytes, so any
 * flag taking a file accepts either; writers pick by the output
 * file's extension (.cbf means CBF).
 */

#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>

#include "baselines/baselines.h"
#include "baselines/evaluate.h"
#include "baselines/predictor.h"
#include "cloud/instances.h"
#include "core/predictor.h"
#include "io/cbf.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "graph/summary.h"
#include "hw/op_cost.h"
#include "models/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "profile/profiler.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace ceer;

/** True when @p path should be written in the CBF binary dialect. */
bool
wantsCbf(const std::string &path)
{
    return util::endsWith(path, ".cbf");
}

/** Declares the shared observability flags on a subcommand. */
void
defineObsFlags(util::Flags &flags)
{
    flags.defineString("metrics-out", "",
                       "write a metrics JSON snapshot here (enables "
                       "observability for the run)");
    flags.defineString("trace-out", "",
                       "write a Chrome-trace JSON of recorded spans "
                       "here (enables observability for the run)");
}

/** Turns recording on before any work when an artifact was asked for. */
void
applyObsFlags(const util::Flags &flags)
{
    if (!flags.getString("metrics-out").empty() ||
        !flags.getString("trace-out").empty())
        obs::setEnabled(true);
}

/** Writes the requested observability artifacts at end of command. */
void
flushObsArtifacts(const util::Flags &flags)
{
    std::string error;
    const std::string metrics = flags.getString("metrics-out");
    if (!metrics.empty() && !obs::tryWriteMetricsFile(metrics, &error))
        util::fatal(error);
    const std::string trace = flags.getString("trace-out");
    if (!trace.empty() &&
        !obs::TraceSink::instance().tryWriteFile(trace, &error))
        util::fatal(error);
}

/** Comma-separated model names, or the training set when empty. */
std::vector<std::string>
modelListOrTrainingSet(const std::string &csv)
{
    std::vector<std::string> names = models::trainingSetNames();
    if (csv.empty())
        return names;
    names.clear();
    for (const auto &name : util::split(csv, ','))
        if (!name.empty())
            names.push_back(util::trim(name));
    return names;
}

int
cmdZoo(int argc, char **argv)
{
    util::Flags flags;
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);
    util::TablePrinter table({"model", "set", "input", "params (M)",
                              "graph ops"});
    for (const std::string &name : models::allModelNames()) {
        const graph::Graph g = models::buildModel(name, 32);
        const auto &test = models::testSetNames();
        const bool is_test =
            std::find(test.begin(), test.end(), name) != test.end();
        table.addRow({name, is_test ? "test" : "train",
                      util::format("%dx%d",
                                   models::modelInputSize(name),
                                   models::modelInputSize(name)),
                      util::format("%.1f",
                                   g.totalParameters() / 1e6),
                      std::to_string(g.size())});
    }
    table.print(std::cout);
    std::cout << "extras (outside the paper's zoo): "
                 "transformer_encoder, lstm_classifier, mobilenet_v1\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdSummary(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("model", "inception_v1", "zoo model");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("depth", 1, "layer-name depth for grouping");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);
    const graph::Graph g = models::buildModel(
        flags.getString("model"), flags.getInt("batch"));
    const graph::ModelSummary summary = graph::summarize(
        g, static_cast<int>(flags.getInt("depth")),
        [](const graph::Node &node) { return hw::opCost(node).flops; });
    summary.print(std::cout);
    flushObsArtifacts(flags);
    return 0;
}

int
cmdDot(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("model", "inception_v1", "zoo model");
    flags.defineInt("batch", 32, "per-GPU batch size");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);
    const graph::Graph g =
        models::buildModel(flags.getString("model"), flags.getInt("batch"));
    std::cout << g.toDot();
    flushObsArtifacts(flags);
    return 0;
}

int
cmdProfile(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("iters", 200, "profiling iterations per run");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("seed", 42, "base RNG seed");
    flags.defineInt("threads", 0,
                    "profiling worker threads (0 = one per hardware "
                    "thread)");
    flags.defineString("models", "",
                       "comma-separated CNNs (default: training set)");
    flags.defineString("out", "profiles.csv",
                       "output path (.cbf writes binary CBF, anything "
                       "else CSV)");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    const std::vector<std::string> names =
        modelListOrTrainingSet(flags.getString("models"));
    profile::CollectOptions options;
    options.iterations = static_cast<int>(flags.getInt("iters"));
    options.batch = flags.getInt("batch");
    options.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    options.threads = static_cast<int>(flags.getInt("threads"));
    const profile::ProfileDataset dataset =
        profile::collectProfiles(names, options);

    std::ofstream out(flags.getString("out"), std::ios::binary);
    if (!out)
        util::fatal("cannot open " + flags.getString("out"));
    if (wantsCbf(flags.getString("out")))
        dataset.saveCbf(out);
    else
        dataset.saveCsv(out);
    std::cout << "wrote " << dataset.ops().size() << " op rows and "
              << dataset.iterations().size() << " iter rows to "
              << flags.getString("out") << "\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdTrain(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("profiles", "profiles.csv",
                       "input profile file (CSV or CBF, sniffed)");
    flags.defineString("out", "ceer_model.txt",
                       "output model file (.cbf writes binary CBF, "
                       "anything else text)");
    flags.defineInt("threads", 1,
                    "regression-fit worker threads (1 = serial, 0 = "
                    "one per hardware thread); the trained model is "
                    "byte-identical at any count");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    const profile::ProfileDataset dataset =
        profile::ProfileDataset::loadFile(flags.getString("profiles"));
    core::TrainOptions train_options;
    train_options.threads = static_cast<int>(flags.getInt("threads"));
    const core::CeerModel model = core::trainCeer(dataset,
                                                  train_options);

    std::ofstream out(flags.getString("out"), std::ios::binary);
    if (!out)
        util::fatal("cannot open " + flags.getString("out"));
    if (wantsCbf(flags.getString("out")))
        model.saveCbf(out);
    else
        model.save(out);
    const auto [lo, hi] = model.opModelR2Range();
    std::cout << "trained on " << dataset.ops().size()
              << " op rows: " << model.heavyOps.size()
              << " heavy op types, R^2 "
              << util::format("[%.2f, %.2f]", lo, hi) << " -> "
              << flags.getString("out") << "\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdEvaluate(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("profiles", "profiles.csv",
                       "training profile file (CSV or CBF, sniffed)");
    flags.defineString("predictors", "",
                       "comma-separated predictor names (default: all "
                       "registered engines)");
    flags.defineString("models", "",
                       "comma-separated CNNs to evaluate (default: the "
                       "whole zoo)");
    flags.defineString("ks", "1,2,4,8",
                       "comma-separated data-parallel widths");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("samples", 1'200'000,
                    "dataset size D for the recommendation-agreement "
                    "metric");
    flags.defineInt("eval-iters", 60,
                    "simulated iterations behind each observed cell");
    flags.defineInt("seed", 42, "base RNG seed of the observed runs");
    flags.defineInt("threads", 1,
                    "sweep worker threads (1 = serial, 0 = one per "
                    "hardware thread); the report is byte-identical "
                    "at any count");
    flags.defineString("out", "eval_report.csv",
                       "report path (.cbf writes binary CBF, anything "
                       "else CSV)");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    const profile::ProfileDataset dataset =
        profile::ProfileDataset::loadFile(flags.getString("profiles"));

    std::vector<std::string> predictor_names;
    for (const auto &name :
         util::split(flags.getString("predictors"), ','))
        if (!name.empty())
            predictor_names.push_back(util::trim(name));
    const std::vector<std::unique_ptr<baselines::Predictor>>
        predictors = baselines::makePredictors(predictor_names);

    baselines::EvalOptions options;
    options.models = flags.getString("models").empty()
                         ? models::allModelNames()
                         : modelListOrTrainingSet(
                               flags.getString("models"));
    options.ks.clear();
    for (const auto &field : util::split(flags.getString("ks"), ',')) {
        if (field.empty())
            continue;
        const util::ParseResult<std::int64_t> k =
            util::parseInt64(util::trim(field));
        if (!k)
            util::fatal("evaluate: bad --ks value '" + field + "'");
        options.ks.push_back(static_cast<int>(k.value));
    }
    options.batch = flags.getInt("batch");
    options.datasetSamples = flags.getInt("samples");
    options.evalIterations =
        static_cast<int>(flags.getInt("eval-iters"));
    options.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    options.threads = static_cast<int>(flags.getInt("threads"));

    const baselines::EvalReport report =
        baselines::runEvaluation(dataset, predictors, options);

    std::ofstream out(flags.getString("out"), std::ios::binary);
    if (!out)
        util::fatal("cannot open " + flags.getString("out"));
    if (wantsCbf(flags.getString("out")))
        report.saveCbf(out);
    else
        report.saveCsv(out);

    util::TablePrinter table({"predictor", "MAPE (%)", "RMSE (ms)",
                              "rank corr", "agreement"});
    for (const baselines::EvalSummaryRow &row : report.summary) {
        table.addRow({row.predictor,
                      util::format("%.2f", row.mapePct),
                      util::format("%.3f", row.rmseUs / 1000.0),
                      util::format("%.3f", row.meanSpearman),
                      util::format("%.0f%%",
                                   row.agreementRate * 100.0)});
    }
    table.print(std::cout);
    std::cout << "wrote " << report.cells.size() << " cells over "
              << report.summary.size() << " predictors to "
              << flags.getString("out") << "\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdPredict(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("ceer-model", "ceer_model.txt",
                       "model file (text or CBF, sniffed)");
    flags.defineString("model", "resnet_101", "zoo CNN to predict");
    flags.defineString("gpu", "P3", "GPU model or family name");
    flags.defineInt("gpus", 1, "data-parallel width");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("samples", 1200000, "dataset size");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    hw::GpuModel gpu;
    if (!hw::gpuModelFromName(flags.getString("gpu"), gpu))
        util::fatal("unknown GPU '" + flags.getString("gpu") + "'");
    const core::CeerPredictor predictor(
        core::CeerModel::loadFile(flags.getString("ceer-model")));
    const graph::Graph g = models::buildModel(flags.getString("model"),
                                              flags.getInt("batch"));
    const core::TrainingPrediction prediction =
        predictor.predictTraining(g, gpu,
                                  static_cast<int>(flags.getInt("gpus")),
                                  flags.getInt("samples"),
                                  flags.getInt("batch"));
    std::cout << flags.getString("model") << " on "
              << flags.getInt("gpus") << "x " << hw::gpuModelName(gpu)
              << ": " << util::humanMicros(prediction.iterationUs)
              << "/iteration, " << prediction.iterations
              << " iterations, "
              << util::format("%.2fh", prediction.hours) << " total\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdRecommend(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("ceer-model", "ceer_model.txt",
                       "model file (text or CBF, sniffed)");
    flags.defineString("model", "resnet_101", "zoo CNN to place");
    flags.defineString("objective", "cost", "minimize 'cost' or 'time'");
    flags.defineDouble("hourly-budget", 1e18, "max hourly price (USD)");
    flags.defineDouble("total-budget", 1e18, "max total spend (USD)");
    flags.defineBool("market", false, "use market GPU prices");
    flags.defineString("catalog", "",
                       "custom instance catalog, CSV "
                       "(name,gpu,gpus,hourly_usd) or CBF, sniffed; "
                       "overrides --market");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("samples", 1200000, "dataset size");
    flags.defineInt("threads", 1,
                    "candidate-sweep worker threads (1 = serial, 0 = "
                    "one per hardware thread); the recommendation is "
                    "byte-identical at any count");
    flags.defineBool("auto-train", false,
                     "profile and train in-process instead of loading "
                     "--ceer-model (exercises the whole pipeline; "
                     "pair with --metrics-out to observe it)");
    flags.defineInt("profile-iters", 25,
                    "profiling iterations per run with --auto-train");
    flags.defineString("train-models", "",
                       "comma-separated CNNs to profile with "
                       "--auto-train (default: training set)");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    const int threads = static_cast<int>(flags.getInt("threads"));
    const core::CeerPredictor predictor = [&] {
        if (!flags.getBool("auto-train"))
            return core::CeerPredictor(
                core::CeerModel::loadFile(flags.getString("ceer-model")));
        // End-to-end path: run the empirical study and fit Ceer right
        // here, so one command exercises (and can observe) profiler,
        // trainer, predictor and recommender together.
        profile::CollectOptions collect;
        collect.iterations =
            static_cast<int>(flags.getInt("profile-iters"));
        collect.batch = flags.getInt("batch");
        collect.threads = threads;
        const profile::ProfileDataset dataset = profile::collectProfiles(
            modelListOrTrainingSet(flags.getString("train-models")),
            collect);
        core::TrainOptions train_options;
        train_options.threads = threads;
        return core::CeerPredictor(
            core::trainCeer(dataset, train_options));
    }();
    const graph::Graph g = models::buildModel(flags.getString("model"),
                                              flags.getInt("batch"));
    cloud::InstanceCatalog catalog =
        flags.getBool("market") ? cloud::InstanceCatalog::marketPriced()
                                : cloud::InstanceCatalog::awsOnDemand();
    if (!flags.getString("catalog").empty())
        catalog =
            cloud::InstanceCatalog::fromFile(flags.getString("catalog"));

    core::WorkloadSpec workload{&g, flags.getInt("samples"),
                                flags.getInt("batch")};
    core::Constraints constraints;
    constraints.hourlyBudgetUsd = flags.getDouble("hourly-budget");
    constraints.totalBudgetUsd = flags.getDouble("total-budget");
    const core::Objective objective =
        flags.getString("objective") == "time"
            ? core::Objective::MinTrainingTime
            : core::Objective::MinCost;
    const core::Recommendation recommendation =
        core::recommend(predictor, workload, catalog.instances(),
                        objective, constraints, threads);

    util::TablePrinter table({"instance", "$/hr", "pred time",
                              "pred cost", "feasible"});
    for (const auto &evaluation : recommendation.evaluations) {
        table.addRow({evaluation.instance.name,
                      util::format("%.3f",
                                   evaluation.instance.hourlyUsd),
                      util::format("%.2fh",
                                   evaluation.prediction.hours),
                      util::format("$%.2f", evaluation.costUsd),
                      evaluation.feasible() ? "yes" : "no"});
    }
    table.print(std::cout);
    flushObsArtifacts(flags);
    if (recommendation.bestIndex < 0) {
        std::cout << "no instance satisfies the constraints\n";
        return 1;
    }
    const auto &best = recommendation.best();
    std::cout << "recommended: " << best.instance.name << " ("
              << util::format("%.2fh", best.prediction.hours) << ", "
              << util::format("$%.2f", best.costUsd) << ")\n";
    return 0;
}

/** What container a profile/model/catalog file holds. */
enum class FileKind { Profiles, Model, Catalog };

const char *
fileKindName(FileKind kind)
{
    switch (kind) {
    case FileKind::Profiles:
        return "profiles";
    case FileKind::Model:
        return "model";
    case FileKind::Catalog:
        return "catalog";
    }
    util::panic("unreachable");
}

/**
 * Detects what @p path holds: CBF files carry their container in the
 * "schema" column; text files are classified by their first line
 * (model documents start with "ceer_model", the two CSV dialects by
 * their headers).
 */
FileKind
detectFileKind(const std::string &path)
{
    io::FileFormat format;
    std::string error;
    if (!io::sniffFile(path, &format, &error))
        util::fatal("convert: " + error);
    if (format == io::FileFormat::Cbf) {
        io::CbfFile file;
        if (!io::CbfFile::tryMap(path, &file, &error) &&
            !io::CbfFile::tryLoad(path, &file, &error))
            util::fatal("convert: " + path + ": " + error);
        const char *schema = nullptr;
        std::size_t schema_size = 0;
        if (!file.bytes("schema", &schema, &schema_size, &error))
            util::fatal("convert: " + path + ": " + error);
        const std::string name(schema, schema_size);
        if (name == "ceer.profiles.v1")
            return FileKind::Profiles;
        if (name == "ceer.model.v1")
            return FileKind::Model;
        if (name == "ceer.catalog.v1")
            return FileKind::Catalog;
        util::fatal("convert: " + path + ": unknown schema '" + name +
                    "'");
    }
    std::ifstream in(path);
    if (!in)
        util::fatal("convert: cannot open '" + path + "'");
    std::string first_line;
    std::getline(in, first_line);
    if (util::startsWith(first_line, "ceer_model"))
        return FileKind::Model;
    if (util::startsWith(first_line, "kind,model,gpu"))
        return FileKind::Profiles;
    if (util::startsWith(first_line, "name,gpu,gpus"))
        return FileKind::Catalog;
    util::fatal("convert: cannot classify '" + path +
                "' (first line '" + first_line +
                "' matches no known dialect); pass --kind");
}

int
cmdConvert(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("in", "", "input file (any dialect, sniffed)");
    flags.defineString("out", "", "output file");
    flags.defineString("kind", "auto",
                       "container kind: auto, profiles, model or "
                       "catalog (auto reads the CBF schema or the "
                       "text file's first line)");
    flags.defineString("to", "auto",
                       "target dialect: auto, cbf or text (auto flips "
                       "the input's dialect; text means CSV for "
                       "profiles and catalogs)");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    const std::string in_path = flags.getString("in");
    const std::string out_path = flags.getString("out");
    if (in_path.empty() || out_path.empty())
        util::fatal("convert: --in and --out are required");

    io::FileFormat in_format;
    std::string error;
    if (!io::sniffFile(in_path, &in_format, &error))
        util::fatal("convert: " + error);

    FileKind kind;
    const std::string kind_flag = flags.getString("kind");
    if (kind_flag == "auto")
        kind = detectFileKind(in_path);
    else if (kind_flag == "profiles")
        kind = FileKind::Profiles;
    else if (kind_flag == "model")
        kind = FileKind::Model;
    else if (kind_flag == "catalog")
        kind = FileKind::Catalog;
    else
        util::fatal("convert: unknown --kind '" + kind_flag + "'");

    const std::string to = flags.getString("to");
    bool to_cbf;
    if (to == "auto")
        to_cbf = in_format != io::FileFormat::Cbf;
    else if (to == "cbf")
        to_cbf = true;
    else if (to == "text" || to == "csv")
        to_cbf = false;
    else
        util::fatal("convert: unknown --to '" + to + "'");

    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        util::fatal("convert: cannot open '" + out_path + "'");
    std::size_t rows = 0;
    switch (kind) {
    case FileKind::Profiles: {
        const profile::ProfileDataset dataset =
            profile::ProfileDataset::loadFile(in_path);
        to_cbf ? dataset.saveCbf(out) : dataset.saveCsv(out);
        rows = dataset.ops().size() + dataset.iterations().size();
        break;
    }
    case FileKind::Model: {
        const core::CeerModel model = core::CeerModel::loadFile(in_path);
        to_cbf ? model.saveCbf(out) : model.save(out);
        rows = model.opModels.size();
        break;
    }
    case FileKind::Catalog: {
        const cloud::InstanceCatalog catalog =
            cloud::InstanceCatalog::fromFile(in_path);
        to_cbf ? catalog.saveCbf(out) : catalog.saveCsv(out);
        rows = catalog.instances().size();
        break;
    }
    }
    out.close();
    if (!out.good())
        util::fatal("convert: write to '" + out_path + "' failed");
    std::cout << "converted " << fileKindName(kind) << " (" << rows
              << " rows) " << in_path << " -> " << out_path << " ["
              << (to_cbf ? "cbf" : "text") << "]\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdGenCatalog(int argc, char **argv)
{
    util::Flags flags;
    flags.defineInt("count", 5000, "instance types to generate");
    flags.defineInt("seed", 42, "RNG seed");
    flags.defineString("out", "fleet_catalog.cbf",
                       "output path (.cbf writes binary CBF, anything "
                       "else CSV)");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    const cloud::InstanceCatalog catalog =
        cloud::InstanceCatalog::syntheticFleet(
            static_cast<std::size_t>(flags.getInt("count")),
            static_cast<std::uint64_t>(flags.getInt("seed")));
    std::ofstream out(flags.getString("out"), std::ios::binary);
    if (!out)
        util::fatal("cannot open " + flags.getString("out"));
    if (wantsCbf(flags.getString("out")))
        catalog.saveCbf(out);
    else
        catalog.saveCsv(out);
    out.close();
    if (!out.good())
        util::fatal("write to " + flags.getString("out") + " failed");
    std::cout << "wrote " << catalog.instances().size()
              << " instance types to " << flags.getString("out") << "\n";
    flushObsArtifacts(flags);
    return 0;
}

/** Set by SIGINT/SIGTERM; polled by cmdServe's wait loop. */
volatile std::sig_atomic_t g_stop_requested = 0;

void
handleStopSignal(int)
{
    g_stop_requested = 1;
}

int
cmdServe(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("ceer-model", "ceer_model.txt",
                       "model file (text or CBF, sniffed)");
    flags.defineString("catalog", "",
                       "custom instance catalog (CSV or CBF, "
                       "sniffed); overrides --market");
    flags.defineBool("market", false, "use market GPU prices");
    flags.defineString("host", "127.0.0.1", "bind address");
    flags.defineInt("port", 0, "TCP port (0 = kernel-assigned)");
    flags.defineString("port-file", "",
                       "write the bound port here once listening "
                       "(for scripts that pass --port 0)");
    flags.defineInt("queue-depth", 64,
                    "admitted-request bound; beyond it clients get a "
                    "typed 'overloaded' error");
    flags.defineInt("max-payload", 1 << 20,
                    "largest accepted frame payload in bytes");
    flags.defineInt("read-timeout-ms", 5000,
                    "disconnect clients stalled mid-frame after this "
                    "long (<= 0 disables)");
    flags.defineInt("threads", 1,
                    "candidate-sweep worker threads per request; 1 "
                    "executes requests inline on their reactor");
    flags.defineInt("reactors", 1,
                    "reactor threads (accept sharding via "
                    "SO_REUSEPORT; one per core is typical)");
    flags.defineBool("no-reuseport", false,
                     "disable SO_REUSEPORT accept sharding (single "
                     "listener distributes connections round-robin)");
    flags.defineInt("plan-cache", 256,
                    "shared plan-cache capacity in entries");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    // The serve library sends with MSG_NOSIGNAL, but stdout may be a
    // pipe too; a vanished reader must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    serve::ServerOptions options;
    options.host = flags.getString("host");
    options.port = static_cast<int>(flags.getInt("port"));
    options.maxQueueDepth =
        static_cast<std::size_t>(flags.getInt("queue-depth"));
    options.maxPayloadBytes =
        static_cast<std::size_t>(flags.getInt("max-payload"));
    options.readTimeoutMs =
        static_cast<int>(flags.getInt("read-timeout-ms"));
    options.sweepThreads = static_cast<int>(flags.getInt("threads"));
    options.reactors = static_cast<int>(flags.getInt("reactors"));
    options.reusePort = !flags.getBool("no-reuseport");
    options.planCacheCapacity =
        static_cast<std::size_t>(flags.getInt("plan-cache"));

    cloud::InstanceCatalog catalog =
        flags.getBool("market") ? cloud::InstanceCatalog::marketPriced()
                                : cloud::InstanceCatalog::awsOnDemand();
    if (!flags.getString("catalog").empty())
        catalog =
            cloud::InstanceCatalog::fromFile(flags.getString("catalog"));

    serve::Server server(
        core::CeerModel::loadFile(flags.getString("ceer-model")),
        std::move(catalog), options);
    std::string error;
    if (!server.tryStart(&error))
        util::fatal("serve: " + error);

    const std::string port_file = flags.getString("port-file");
    if (!port_file.empty()) {
        std::ofstream out(port_file);
        if (!out)
            util::fatal("serve: cannot open '" + port_file + "'");
        out << server.port() << "\n";
        out.close();
        if (!out.good())
            util::fatal("serve: write to '" + port_file + "' failed");
    }
    std::cout << "ceerd listening on " << options.host << ":"
              << server.port() << " ("
              << (options.reactors < 1 ? 1 : options.reactors)
              << (options.reactors > 1 ? " reactors, " : " reactor, ")
              << (server.usingReusePort() ? "SO_REUSEPORT"
                                          : "single listener")
              << ")\n"
              << std::flush;

    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    while (!g_stop_requested) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cout << "ceerd: stopping (draining in-flight requests)\n";
    server.stop();
    std::cout << "ceerd: stopped cleanly\n";
    flushObsArtifacts(flags);
    return 0;
}

int
cmdLoadgen(int argc, char **argv)
{
    util::Flags flags;
    flags.defineString("host", "127.0.0.1", "server address");
    flags.defineInt("port", 0, "server port (required)");
    flags.defineInt("connections", 2, "concurrent connections");
    flags.defineDouble("seconds", 2.0, "run duration");
    flags.defineDouble("qps", 0.0,
                       "total offered QPS across connections "
                       "(<= 0 = closed-loop maximum)");
    flags.defineString("models", "",
                       "comma-separated CNNs to request "
                       "(default: the full 12-CNN zoo)");
    flags.defineInt("batch", 32, "per-GPU batch size");
    flags.defineInt("samples", 1200000, "dataset size");
    flags.defineString("objective", "cost",
                       "minimize 'cost' or 'time'");
    flags.defineDouble("hourly-budget", 1e18,
                       "max hourly price (USD)");
    flags.defineDouble("total-budget", 1e18, "max total spend (USD)");
    flags.defineInt("timeout-ms", 30000, "per-reply read timeout");
    flags.defineInt("warmup", -1,
                    "warm-up requests before the timed phase "
                    "(-1 = one per mix entry, 0 = disabled); "
                    "excluded from percentiles");
    flags.defineString("out", "",
                       "write a JSON results document here");
    defineObsFlags(flags);
    flags.parse(argc, argv);
    applyObsFlags(flags);

    std::signal(SIGPIPE, SIG_IGN);
    if (flags.getInt("port") <= 0)
        util::fatal("loadgen: --port is required");

    serve::LoadgenOptions options;
    options.host = flags.getString("host");
    options.port = static_cast<int>(flags.getInt("port"));
    options.connections =
        static_cast<int>(flags.getInt("connections"));
    options.seconds = flags.getDouble("seconds");
    options.targetQps = flags.getDouble("qps");
    options.timeoutMs = static_cast<int>(flags.getInt("timeout-ms"));
    options.warmupRequests = static_cast<int>(flags.getInt("warmup"));

    std::vector<std::string> names = models::allModelNames();
    if (!flags.getString("models").empty()) {
        names.clear();
        for (const auto &name :
             util::split(flags.getString("models"), ','))
            if (!name.empty())
                names.push_back(util::trim(name));
    }
    for (const std::string &name : names) {
        serve::RecommendRequest request;
        request.model = name;
        request.batch = flags.getInt("batch");
        request.datasetSamples = flags.getInt("samples");
        request.objective = flags.getString("objective");
        request.hourlyBudgetUsd = flags.getDouble("hourly-budget");
        request.totalBudgetUsd = flags.getDouble("total-budget");
        options.requests.push_back(std::move(request));
    }

    serve::LoadgenResult result;
    std::string error;
    if (!serve::runLoadgen(options, &result, &error))
        util::fatal("loadgen: " + error);

    // A small sample cannot resolve the far tail: n*(1-q) < 1 means
    // the nearest-rank quantile just repeats the maximum, so those
    // rows print n/a (and null in the JSON) instead of a fake number.
    const std::size_t samples = result.latenciesUs.size();
    const auto quantile_cell = [&](double q, double value) {
        return serve::percentileResolvable(samples, q)
                   ? util::format("%.0f us", value)
                   : std::string("n/a (sample too small)");
    };
    util::TablePrinter table({"metric", "value"});
    table.addRow({"warmup", std::to_string(result.warmupRequests)});
    table.addRow({"sent", std::to_string(result.sent)});
    table.addRow({"succeeded", std::to_string(result.succeeded)});
    table.addRow({"overloaded", std::to_string(result.overloaded)});
    table.addRow({"server errors",
                  std::to_string(result.serverErrors)});
    table.addRow({"transport errors",
                  std::to_string(result.transportErrors)});
    table.addRow({"elapsed",
                  util::format("%.2fs", result.elapsedSeconds)});
    table.addRow({"throughput",
                  util::format("%.1f req/s", result.achievedQps)});
    table.addRow({"p50", quantile_cell(0.50, result.p50Us)});
    table.addRow({"p90", quantile_cell(0.90, result.p90Us)});
    table.addRow({"p99", quantile_cell(0.99, result.p99Us)});
    table.addRow({"p99.9", quantile_cell(0.999, result.p999Us)});
    table.addRow({"max", util::format("%.0f us", result.maxUs)});
    table.print(std::cout);

    const std::string out_path = flags.getString("out");
    if (!out_path.empty()) {
        const auto quantile_json = [&](double q, double value) {
            return serve::percentileResolvable(samples, q)
                       ? util::format("%.3f", value)
                       : std::string("null");
        };
        std::ofstream out(out_path);
        if (!out)
            util::fatal("loadgen: cannot open '" + out_path + "'");
        out << "{\n"
            << "  \"bench\": \"loadgen\",\n"
            << util::format("  \"sent\": %lld,\n",
                            static_cast<long long>(result.sent))
            << util::format("  \"succeeded\": %lld,\n",
                            static_cast<long long>(result.succeeded))
            << util::format("  \"overloaded\": %lld,\n",
                            static_cast<long long>(result.overloaded))
            << util::format(
                   "  \"server_errors\": %lld,\n",
                   static_cast<long long>(result.serverErrors))
            << util::format(
                   "  \"transport_errors\": %lld,\n",
                   static_cast<long long>(result.transportErrors))
            << util::format("  \"elapsed_seconds\": %.6f,\n",
                            result.elapsedSeconds)
            << util::format("  \"throughput_qps\": %.3f,\n",
                            result.achievedQps)
            << util::format(
                   "  \"warmup_requests\": %lld,\n",
                   static_cast<long long>(result.warmupRequests))
            << util::format("  \"warmup_mean_us\": %.3f,\n",
                            result.warmupMeanUs)
            << util::format("  \"warmup_max_us\": %.3f,\n",
                            result.warmupMaxUs)
            << "  \"p50_us\": " << quantile_json(0.50, result.p50Us)
            << ",\n"
            << "  \"p90_us\": " << quantile_json(0.90, result.p90Us)
            << ",\n"
            << "  \"p99_us\": " << quantile_json(0.99, result.p99Us)
            << ",\n"
            << "  \"p999_us\": "
            << quantile_json(0.999, result.p999Us) << ",\n"
            << util::format("  \"mean_us\": %.3f,\n", result.meanUs)
            << util::format("  \"max_us\": %.3f\n", result.maxUs)
            << "}\n";
        out.close();
        if (!out.good())
            util::fatal("loadgen: write to '" + out_path +
                        "' failed");
    }
    flushObsArtifacts(flags);
    return result.succeeded > 0 ? 0 : 1;
}

void
usage()
{
    std::cout <<
        "usage: ceer <command> [flags]\n"
        "commands:\n"
        "  zoo          list the 12 zoo CNNs\n"
        "  dot          print a CNN's graph as Graphviz DOT\n"
        "  summary      per-layer table (ops, params, GFLOPs)\n"
        "  profile      run the empirical study, write profiles\n"
        "  train        fit a Ceer model from a profile file\n"
        "  evaluate     sweep every registered predictor over the\n"
        "               model zoo and write an accuracy report\n"
        "  predict      predict training time for a CNN on an instance\n"
        "  recommend    pick the optimal instance under constraints\n"
        "  convert      convert profiles/models/catalogs between the\n"
        "               text/CSV and CBF binary dialects\n"
        "  gen-catalog  emit a synthetic instance fleet (CSV or CBF)\n"
        "  serve        run ceerd, the persistent recommendation\n"
        "               server (framed-binary protocol over TCP)\n"
        "  loadgen      replay recommend traffic against a running\n"
        "               ceerd and report throughput/latency\n"
        "every command accepts --metrics-out and --trace-out\n"
        "run `ceer <command> --help` for the command's flags\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    // Shift argv so each subcommand parses its own flags.
    int sub_argc = argc - 1;
    char **sub_argv = argv + 1;
    if (command == "zoo")
        return cmdZoo(sub_argc, sub_argv);
    if (command == "dot")
        return cmdDot(sub_argc, sub_argv);
    if (command == "summary")
        return cmdSummary(sub_argc, sub_argv);
    if (command == "profile")
        return cmdProfile(sub_argc, sub_argv);
    if (command == "train")
        return cmdTrain(sub_argc, sub_argv);
    if (command == "evaluate")
        return cmdEvaluate(sub_argc, sub_argv);
    if (command == "predict")
        return cmdPredict(sub_argc, sub_argv);
    if (command == "recommend")
        return cmdRecommend(sub_argc, sub_argv);
    if (command == "convert")
        return cmdConvert(sub_argc, sub_argv);
    if (command == "gen-catalog")
        return cmdGenCatalog(sub_argc, sub_argv);
    if (command == "serve")
        return cmdServe(sub_argc, sub_argv);
    if (command == "loadgen")
        return cmdLoadgen(sub_argc, sub_argv);
    if (command == "--help" || command == "help") {
        usage();
        return 0;
    }
    std::cerr << "unknown command '" << command << "'\n";
    usage();
    return 1;
}
