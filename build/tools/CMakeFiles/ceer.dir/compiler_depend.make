# Empty compiler generated dependencies file for ceer.
# This may be replaced when dependencies are built.
