file(REMOVE_RECURSE
  "CMakeFiles/ceer.dir/ceer_cli.cc.o"
  "CMakeFiles/ceer.dir/ceer_cli.cc.o.d"
  "ceer"
  "ceer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
