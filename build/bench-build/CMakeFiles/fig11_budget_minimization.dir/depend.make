# Empty dependencies file for fig11_budget_minimization.
# This may be replaced when dependencies are built.
