file(REMOVE_RECURSE
  "../bench/fig11_budget_minimization"
  "../bench/fig11_budget_minimization.pdb"
  "CMakeFiles/fig11_budget_minimization.dir/fig11_budget_minimization.cc.o"
  "CMakeFiles/fig11_budget_minimization.dir/fig11_budget_minimization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_budget_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
