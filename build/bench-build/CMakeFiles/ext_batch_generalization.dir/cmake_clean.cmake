file(REMOVE_RECURSE
  "../bench/ext_batch_generalization"
  "../bench/ext_batch_generalization.pdb"
  "CMakeFiles/ext_batch_generalization.dir/ext_batch_generalization.cc.o"
  "CMakeFiles/ext_batch_generalization.dir/ext_batch_generalization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batch_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
