# Empty compiler generated dependencies file for tab_op_contribution.
# This may be replaced when dependencies are built.
