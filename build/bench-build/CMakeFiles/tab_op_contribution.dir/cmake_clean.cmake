file(REMOVE_RECURSE
  "../bench/tab_op_contribution"
  "../bench/tab_op_contribution.pdb"
  "CMakeFiles/tab_op_contribution.dir/tab_op_contribution.cc.o"
  "CMakeFiles/tab_op_contribution.dir/tab_op_contribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_op_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
