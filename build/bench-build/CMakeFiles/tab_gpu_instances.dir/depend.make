# Empty dependencies file for tab_gpu_instances.
# This may be replaced when dependencies are built.
