file(REMOVE_RECURSE
  "../bench/tab_gpu_instances"
  "../bench/tab_gpu_instances.pdb"
  "CMakeFiles/tab_gpu_instances.dir/tab_gpu_instances.cc.o"
  "CMakeFiles/tab_gpu_instances.dir/tab_gpu_instances.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_gpu_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
