file(REMOVE_RECURSE
  "../bench/fig12_market_prices"
  "../bench/fig12_market_prices.pdb"
  "CMakeFiles/fig12_market_prices.dir/fig12_market_prices.cc.o"
  "CMakeFiles/fig12_market_prices.dir/fig12_market_prices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_market_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
