# Empty dependencies file for fig12_market_prices.
# This may be replaced when dependencies are built.
