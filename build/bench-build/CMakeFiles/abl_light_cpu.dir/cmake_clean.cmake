file(REMOVE_RECURSE
  "../bench/abl_light_cpu"
  "../bench/abl_light_cpu.pdb"
  "CMakeFiles/abl_light_cpu.dir/abl_light_cpu.cc.o"
  "CMakeFiles/abl_light_cpu.dir/abl_light_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_light_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
