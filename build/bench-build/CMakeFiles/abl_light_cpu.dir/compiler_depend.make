# Empty compiler generated dependencies file for abl_light_cpu.
# This may be replaced when dependencies are built.
