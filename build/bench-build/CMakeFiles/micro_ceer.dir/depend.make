# Empty dependencies file for micro_ceer.
# This may be replaced when dependencies are built.
