file(REMOVE_RECURSE
  "../bench/micro_ceer"
  "../bench/micro_ceer.pdb"
  "CMakeFiles/micro_ceer.dir/micro_ceer.cc.o"
  "CMakeFiles/micro_ceer.dir/micro_ceer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ceer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
