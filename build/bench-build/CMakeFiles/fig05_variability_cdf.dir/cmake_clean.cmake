file(REMOVE_RECURSE
  "../bench/fig05_variability_cdf"
  "../bench/fig05_variability_cdf.pdb"
  "CMakeFiles/fig05_variability_cdf.dir/fig05_variability_cdf.cc.o"
  "CMakeFiles/fig05_variability_cdf.dir/fig05_variability_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_variability_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
