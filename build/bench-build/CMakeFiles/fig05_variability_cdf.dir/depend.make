# Empty dependencies file for fig05_variability_cdf.
# This may be replaced when dependencies are built.
