file(REMOVE_RECURSE
  "../bench/abl_no_comm"
  "../bench/abl_no_comm.pdb"
  "CMakeFiles/abl_no_comm.dir/abl_no_comm.cc.o"
  "CMakeFiles/abl_no_comm.dir/abl_no_comm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_no_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
