# Empty compiler generated dependencies file for abl_no_comm.
# This may be replaced when dependencies are built.
