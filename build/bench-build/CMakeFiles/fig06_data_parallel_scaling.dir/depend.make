# Empty dependencies file for fig06_data_parallel_scaling.
# This may be replaced when dependencies are built.
