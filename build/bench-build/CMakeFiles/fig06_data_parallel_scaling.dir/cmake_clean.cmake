file(REMOVE_RECURSE
  "../bench/fig06_data_parallel_scaling"
  "../bench/fig06_data_parallel_scaling.pdb"
  "CMakeFiles/fig06_data_parallel_scaling.dir/fig06_data_parallel_scaling.cc.o"
  "CMakeFiles/fig06_data_parallel_scaling.dir/fig06_data_parallel_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_data_parallel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
