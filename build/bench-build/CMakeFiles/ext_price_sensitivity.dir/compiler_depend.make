# Empty compiler generated dependencies file for ext_price_sensitivity.
# This may be replaced when dependencies are built.
