file(REMOVE_RECURSE
  "../bench/ext_price_sensitivity"
  "../bench/ext_price_sensitivity.pdb"
  "CMakeFiles/ext_price_sensitivity.dir/ext_price_sensitivity.cc.o"
  "CMakeFiles/ext_price_sensitivity.dir/ext_price_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_price_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
