file(REMOVE_RECURSE
  "../bench/ext_multi_host"
  "../bench/ext_multi_host.pdb"
  "CMakeFiles/ext_multi_host.dir/ext_multi_host.cc.o"
  "CMakeFiles/ext_multi_host.dir/ext_multi_host.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
