# Empty dependencies file for ext_multi_host.
# This may be replaced when dependencies are built.
