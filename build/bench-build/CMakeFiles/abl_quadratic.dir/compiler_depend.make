# Empty compiler generated dependencies file for abl_quadratic.
# This may be replaced when dependencies are built.
