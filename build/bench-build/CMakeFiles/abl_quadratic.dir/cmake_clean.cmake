file(REMOVE_RECURSE
  "../bench/abl_quadratic"
  "../bench/abl_quadratic.pdb"
  "CMakeFiles/abl_quadratic.dir/abl_quadratic.cc.o"
  "CMakeFiles/abl_quadratic.dir/abl_quadratic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quadratic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
