# Empty dependencies file for ext_unseen_ops.
# This may be replaced when dependencies are built.
