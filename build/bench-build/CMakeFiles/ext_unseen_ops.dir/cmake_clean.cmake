file(REMOVE_RECURSE
  "../bench/ext_unseen_ops"
  "../bench/ext_unseen_ops.pdb"
  "CMakeFiles/ext_unseen_ops.dir/ext_unseen_ops.cc.o"
  "CMakeFiles/ext_unseen_ops.dir/ext_unseen_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_unseen_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
