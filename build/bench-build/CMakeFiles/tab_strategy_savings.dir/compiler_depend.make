# Empty compiler generated dependencies file for tab_strategy_savings.
# This may be replaced when dependencies are built.
