file(REMOVE_RECURSE
  "../bench/tab_strategy_savings"
  "../bench/tab_strategy_savings.pdb"
  "CMakeFiles/tab_strategy_savings.dir/tab_strategy_savings.cc.o"
  "CMakeFiles/tab_strategy_savings.dir/tab_strategy_savings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_strategy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
