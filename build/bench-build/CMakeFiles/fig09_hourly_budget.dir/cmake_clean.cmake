file(REMOVE_RECURSE
  "../bench/fig09_hourly_budget"
  "../bench/fig09_hourly_budget.pdb"
  "CMakeFiles/fig09_hourly_budget.dir/fig09_hourly_budget.cc.o"
  "CMakeFiles/fig09_hourly_budget.dir/fig09_hourly_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hourly_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
