# Empty compiler generated dependencies file for fig09_hourly_budget.
# This may be replaced when dependencies are built.
