file(REMOVE_RECURSE
  "../bench/abl_median"
  "../bench/abl_median.pdb"
  "CMakeFiles/abl_median.dir/abl_median.cc.o"
  "CMakeFiles/abl_median.dir/abl_median.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
