# Empty dependencies file for abl_median.
# This may be replaced when dependencies are built.
