file(REMOVE_RECURSE
  "../bench/fig03_op_costs"
  "../bench/fig03_op_costs.pdb"
  "CMakeFiles/fig03_op_costs.dir/fig03_op_costs.cc.o"
  "CMakeFiles/fig03_op_costs.dir/fig03_op_costs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_op_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
