file(REMOVE_RECURSE
  "libceer_bench_common.a"
)
