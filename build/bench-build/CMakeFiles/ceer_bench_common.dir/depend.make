# Empty dependencies file for ceer_bench_common.
# This may be replaced when dependencies are built.
