file(REMOVE_RECURSE
  "CMakeFiles/ceer_bench_common.dir/common.cc.o"
  "CMakeFiles/ceer_bench_common.dir/common.cc.o.d"
  "libceer_bench_common.a"
  "libceer_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
