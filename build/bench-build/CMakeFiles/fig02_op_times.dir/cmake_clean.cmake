file(REMOVE_RECURSE
  "../bench/fig02_op_times"
  "../bench/fig02_op_times.pdb"
  "CMakeFiles/fig02_op_times.dir/fig02_op_times.cc.o"
  "CMakeFiles/fig02_op_times.dir/fig02_op_times.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_op_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
