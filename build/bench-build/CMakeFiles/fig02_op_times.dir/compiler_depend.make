# Empty compiler generated dependencies file for fig02_op_times.
# This may be replaced when dependencies are built.
