file(REMOVE_RECURSE
  "../bench/fig01_model_dags"
  "../bench/fig01_model_dags.pdb"
  "CMakeFiles/fig01_model_dags.dir/fig01_model_dags.cc.o"
  "CMakeFiles/fig01_model_dags.dir/fig01_model_dags.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_model_dags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
