
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_comm_overhead.cc" "bench-build/CMakeFiles/fig07_comm_overhead.dir/fig07_comm_overhead.cc.o" "gcc" "bench-build/CMakeFiles/fig07_comm_overhead.dir/fig07_comm_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/ceer_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ceer_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ceer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ceer_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/ceer_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ceer_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ceer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ceer_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ceer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ceer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
