file(REMOVE_RECURSE
  "../bench/fig07_comm_overhead"
  "../bench/fig07_comm_overhead.pdb"
  "CMakeFiles/fig07_comm_overhead.dir/fig07_comm_overhead.cc.o"
  "CMakeFiles/fig07_comm_overhead.dir/fig07_comm_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
