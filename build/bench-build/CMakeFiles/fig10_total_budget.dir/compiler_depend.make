# Empty compiler generated dependencies file for fig10_total_budget.
# This may be replaced when dependencies are built.
