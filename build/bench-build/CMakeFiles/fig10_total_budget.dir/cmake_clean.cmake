file(REMOVE_RECURSE
  "../bench/fig10_total_budget"
  "../bench/fig10_total_budget.pdb"
  "CMakeFiles/fig10_total_budget.dir/fig10_total_budget.cc.o"
  "CMakeFiles/fig10_total_budget.dir/fig10_total_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_total_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
