file(REMOVE_RECURSE
  "../bench/fig04_relu_input_size"
  "../bench/fig04_relu_input_size.pdb"
  "CMakeFiles/fig04_relu_input_size.dir/fig04_relu_input_size.cc.o"
  "CMakeFiles/fig04_relu_input_size.dir/fig04_relu_input_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_relu_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
