# Empty dependencies file for fig04_relu_input_size.
# This may be replaced when dependencies are built.
