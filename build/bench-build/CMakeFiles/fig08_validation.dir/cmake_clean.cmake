file(REMOVE_RECURSE
  "../bench/fig08_validation"
  "../bench/fig08_validation.pdb"
  "CMakeFiles/fig08_validation.dir/fig08_validation.cc.o"
  "CMakeFiles/fig08_validation.dir/fig08_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
