# Empty dependencies file for ceer_test.
# This may be replaced when dependencies are built.
