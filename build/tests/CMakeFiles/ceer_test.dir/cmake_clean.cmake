file(REMOVE_RECURSE
  "CMakeFiles/ceer_test.dir/ceer_test.cc.o"
  "CMakeFiles/ceer_test.dir/ceer_test.cc.o.d"
  "ceer_test"
  "ceer_test.pdb"
  "ceer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
