file(REMOVE_RECURSE
  "libceer_core.a"
)
