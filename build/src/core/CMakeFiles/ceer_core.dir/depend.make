# Empty dependencies file for ceer_core.
# This may be replaced when dependencies are built.
