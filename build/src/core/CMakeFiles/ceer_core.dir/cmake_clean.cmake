file(REMOVE_RECURSE
  "CMakeFiles/ceer_core.dir/ceer_model.cc.o"
  "CMakeFiles/ceer_core.dir/ceer_model.cc.o.d"
  "CMakeFiles/ceer_core.dir/predictor.cc.o"
  "CMakeFiles/ceer_core.dir/predictor.cc.o.d"
  "CMakeFiles/ceer_core.dir/recommender.cc.o"
  "CMakeFiles/ceer_core.dir/recommender.cc.o.d"
  "CMakeFiles/ceer_core.dir/regression.cc.o"
  "CMakeFiles/ceer_core.dir/regression.cc.o.d"
  "CMakeFiles/ceer_core.dir/trainer.cc.o"
  "CMakeFiles/ceer_core.dir/trainer.cc.o.d"
  "libceer_core.a"
  "libceer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
