
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device_model.cc" "src/hw/CMakeFiles/ceer_hw.dir/device_model.cc.o" "gcc" "src/hw/CMakeFiles/ceer_hw.dir/device_model.cc.o.d"
  "/root/repo/src/hw/gpu_spec.cc" "src/hw/CMakeFiles/ceer_hw.dir/gpu_spec.cc.o" "gcc" "src/hw/CMakeFiles/ceer_hw.dir/gpu_spec.cc.o.d"
  "/root/repo/src/hw/interconnect.cc" "src/hw/CMakeFiles/ceer_hw.dir/interconnect.cc.o" "gcc" "src/hw/CMakeFiles/ceer_hw.dir/interconnect.cc.o.d"
  "/root/repo/src/hw/memory.cc" "src/hw/CMakeFiles/ceer_hw.dir/memory.cc.o" "gcc" "src/hw/CMakeFiles/ceer_hw.dir/memory.cc.o.d"
  "/root/repo/src/hw/op_cost.cc" "src/hw/CMakeFiles/ceer_hw.dir/op_cost.cc.o" "gcc" "src/hw/CMakeFiles/ceer_hw.dir/op_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ceer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ceer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
