file(REMOVE_RECURSE
  "libceer_hw.a"
)
