file(REMOVE_RECURSE
  "CMakeFiles/ceer_hw.dir/device_model.cc.o"
  "CMakeFiles/ceer_hw.dir/device_model.cc.o.d"
  "CMakeFiles/ceer_hw.dir/gpu_spec.cc.o"
  "CMakeFiles/ceer_hw.dir/gpu_spec.cc.o.d"
  "CMakeFiles/ceer_hw.dir/interconnect.cc.o"
  "CMakeFiles/ceer_hw.dir/interconnect.cc.o.d"
  "CMakeFiles/ceer_hw.dir/memory.cc.o"
  "CMakeFiles/ceer_hw.dir/memory.cc.o.d"
  "CMakeFiles/ceer_hw.dir/op_cost.cc.o"
  "CMakeFiles/ceer_hw.dir/op_cost.cc.o.d"
  "libceer_hw.a"
  "libceer_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
