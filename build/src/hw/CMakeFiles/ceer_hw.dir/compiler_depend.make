# Empty compiler generated dependencies file for ceer_hw.
# This may be replaced when dependencies are built.
