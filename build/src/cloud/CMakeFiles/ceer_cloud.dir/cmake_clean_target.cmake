file(REMOVE_RECURSE
  "libceer_cloud.a"
)
