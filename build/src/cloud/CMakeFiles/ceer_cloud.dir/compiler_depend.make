# Empty compiler generated dependencies file for ceer_cloud.
# This may be replaced when dependencies are built.
