file(REMOVE_RECURSE
  "CMakeFiles/ceer_cloud.dir/instances.cc.o"
  "CMakeFiles/ceer_cloud.dir/instances.cc.o.d"
  "libceer_cloud.a"
  "libceer_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
