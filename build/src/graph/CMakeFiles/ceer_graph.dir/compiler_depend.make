# Empty compiler generated dependencies file for ceer_graph.
# This may be replaced when dependencies are built.
