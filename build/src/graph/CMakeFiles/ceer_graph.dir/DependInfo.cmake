
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/autodiff.cc" "src/graph/CMakeFiles/ceer_graph.dir/autodiff.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/autodiff.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/ceer_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/dtype.cc" "src/graph/CMakeFiles/ceer_graph.dir/dtype.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/dtype.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/ceer_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/op_type.cc" "src/graph/CMakeFiles/ceer_graph.dir/op_type.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/op_type.cc.o.d"
  "/root/repo/src/graph/shape_inference.cc" "src/graph/CMakeFiles/ceer_graph.dir/shape_inference.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/shape_inference.cc.o.d"
  "/root/repo/src/graph/summary.cc" "src/graph/CMakeFiles/ceer_graph.dir/summary.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/summary.cc.o.d"
  "/root/repo/src/graph/tensor_shape.cc" "src/graph/CMakeFiles/ceer_graph.dir/tensor_shape.cc.o" "gcc" "src/graph/CMakeFiles/ceer_graph.dir/tensor_shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ceer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
