file(REMOVE_RECURSE
  "libceer_graph.a"
)
