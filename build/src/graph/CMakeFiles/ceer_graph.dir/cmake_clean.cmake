file(REMOVE_RECURSE
  "CMakeFiles/ceer_graph.dir/autodiff.cc.o"
  "CMakeFiles/ceer_graph.dir/autodiff.cc.o.d"
  "CMakeFiles/ceer_graph.dir/builder.cc.o"
  "CMakeFiles/ceer_graph.dir/builder.cc.o.d"
  "CMakeFiles/ceer_graph.dir/dtype.cc.o"
  "CMakeFiles/ceer_graph.dir/dtype.cc.o.d"
  "CMakeFiles/ceer_graph.dir/graph.cc.o"
  "CMakeFiles/ceer_graph.dir/graph.cc.o.d"
  "CMakeFiles/ceer_graph.dir/op_type.cc.o"
  "CMakeFiles/ceer_graph.dir/op_type.cc.o.d"
  "CMakeFiles/ceer_graph.dir/shape_inference.cc.o"
  "CMakeFiles/ceer_graph.dir/shape_inference.cc.o.d"
  "CMakeFiles/ceer_graph.dir/summary.cc.o"
  "CMakeFiles/ceer_graph.dir/summary.cc.o.d"
  "CMakeFiles/ceer_graph.dir/tensor_shape.cc.o"
  "CMakeFiles/ceer_graph.dir/tensor_shape.cc.o.d"
  "libceer_graph.a"
  "libceer_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
