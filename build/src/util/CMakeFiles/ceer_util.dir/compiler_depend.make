# Empty compiler generated dependencies file for ceer_util.
# This may be replaced when dependencies are built.
