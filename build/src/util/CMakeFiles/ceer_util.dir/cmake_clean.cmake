file(REMOVE_RECURSE
  "CMakeFiles/ceer_util.dir/csv.cc.o"
  "CMakeFiles/ceer_util.dir/csv.cc.o.d"
  "CMakeFiles/ceer_util.dir/flags.cc.o"
  "CMakeFiles/ceer_util.dir/flags.cc.o.d"
  "CMakeFiles/ceer_util.dir/logging.cc.o"
  "CMakeFiles/ceer_util.dir/logging.cc.o.d"
  "CMakeFiles/ceer_util.dir/random.cc.o"
  "CMakeFiles/ceer_util.dir/random.cc.o.d"
  "CMakeFiles/ceer_util.dir/stats.cc.o"
  "CMakeFiles/ceer_util.dir/stats.cc.o.d"
  "CMakeFiles/ceer_util.dir/strings.cc.o"
  "CMakeFiles/ceer_util.dir/strings.cc.o.d"
  "CMakeFiles/ceer_util.dir/table.cc.o"
  "CMakeFiles/ceer_util.dir/table.cc.o.d"
  "libceer_util.a"
  "libceer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
