file(REMOVE_RECURSE
  "libceer_util.a"
)
