file(REMOVE_RECURSE
  "libceer_sim.a"
)
