file(REMOVE_RECURSE
  "CMakeFiles/ceer_sim.dir/simulator.cc.o"
  "CMakeFiles/ceer_sim.dir/simulator.cc.o.d"
  "CMakeFiles/ceer_sim.dir/trace.cc.o"
  "CMakeFiles/ceer_sim.dir/trace.cc.o.d"
  "libceer_sim.a"
  "libceer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
