# Empty dependencies file for ceer_sim.
# This may be replaced when dependencies are built.
