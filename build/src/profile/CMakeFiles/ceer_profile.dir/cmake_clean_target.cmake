file(REMOVE_RECURSE
  "libceer_profile.a"
)
