# Empty compiler generated dependencies file for ceer_profile.
# This may be replaced when dependencies are built.
