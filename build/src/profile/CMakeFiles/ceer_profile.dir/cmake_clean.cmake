file(REMOVE_RECURSE
  "CMakeFiles/ceer_profile.dir/features.cc.o"
  "CMakeFiles/ceer_profile.dir/features.cc.o.d"
  "CMakeFiles/ceer_profile.dir/profiler.cc.o"
  "CMakeFiles/ceer_profile.dir/profiler.cc.o.d"
  "libceer_profile.a"
  "libceer_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
