file(REMOVE_RECURSE
  "libceer_models.a"
)
