# Empty dependencies file for ceer_models.
# This may be replaced when dependencies are built.
