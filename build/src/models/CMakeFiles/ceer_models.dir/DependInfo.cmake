
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/alexnet.cc" "src/models/CMakeFiles/ceer_models.dir/alexnet.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/alexnet.cc.o.d"
  "/root/repo/src/models/inception_common.cc" "src/models/CMakeFiles/ceer_models.dir/inception_common.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/inception_common.cc.o.d"
  "/root/repo/src/models/inception_resnet_v2.cc" "src/models/CMakeFiles/ceer_models.dir/inception_resnet_v2.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/inception_resnet_v2.cc.o.d"
  "/root/repo/src/models/inception_v1.cc" "src/models/CMakeFiles/ceer_models.dir/inception_v1.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/inception_v1.cc.o.d"
  "/root/repo/src/models/inception_v3.cc" "src/models/CMakeFiles/ceer_models.dir/inception_v3.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/inception_v3.cc.o.d"
  "/root/repo/src/models/inception_v4.cc" "src/models/CMakeFiles/ceer_models.dir/inception_v4.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/inception_v4.cc.o.d"
  "/root/repo/src/models/lstm.cc" "src/models/CMakeFiles/ceer_models.dir/lstm.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/lstm.cc.o.d"
  "/root/repo/src/models/mobilenet.cc" "src/models/CMakeFiles/ceer_models.dir/mobilenet.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/mobilenet.cc.o.d"
  "/root/repo/src/models/registry.cc" "src/models/CMakeFiles/ceer_models.dir/registry.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/registry.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/models/CMakeFiles/ceer_models.dir/resnet.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/resnet.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/models/CMakeFiles/ceer_models.dir/transformer.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/transformer.cc.o.d"
  "/root/repo/src/models/vgg.cc" "src/models/CMakeFiles/ceer_models.dir/vgg.cc.o" "gcc" "src/models/CMakeFiles/ceer_models.dir/vgg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ceer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ceer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
