file(REMOVE_RECURSE
  "CMakeFiles/ceer_models.dir/alexnet.cc.o"
  "CMakeFiles/ceer_models.dir/alexnet.cc.o.d"
  "CMakeFiles/ceer_models.dir/inception_common.cc.o"
  "CMakeFiles/ceer_models.dir/inception_common.cc.o.d"
  "CMakeFiles/ceer_models.dir/inception_resnet_v2.cc.o"
  "CMakeFiles/ceer_models.dir/inception_resnet_v2.cc.o.d"
  "CMakeFiles/ceer_models.dir/inception_v1.cc.o"
  "CMakeFiles/ceer_models.dir/inception_v1.cc.o.d"
  "CMakeFiles/ceer_models.dir/inception_v3.cc.o"
  "CMakeFiles/ceer_models.dir/inception_v3.cc.o.d"
  "CMakeFiles/ceer_models.dir/inception_v4.cc.o"
  "CMakeFiles/ceer_models.dir/inception_v4.cc.o.d"
  "CMakeFiles/ceer_models.dir/lstm.cc.o"
  "CMakeFiles/ceer_models.dir/lstm.cc.o.d"
  "CMakeFiles/ceer_models.dir/mobilenet.cc.o"
  "CMakeFiles/ceer_models.dir/mobilenet.cc.o.d"
  "CMakeFiles/ceer_models.dir/registry.cc.o"
  "CMakeFiles/ceer_models.dir/registry.cc.o.d"
  "CMakeFiles/ceer_models.dir/resnet.cc.o"
  "CMakeFiles/ceer_models.dir/resnet.cc.o.d"
  "CMakeFiles/ceer_models.dir/transformer.cc.o"
  "CMakeFiles/ceer_models.dir/transformer.cc.o.d"
  "CMakeFiles/ceer_models.dir/vgg.cc.o"
  "CMakeFiles/ceer_models.dir/vgg.cc.o.d"
  "libceer_models.a"
  "libceer_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
