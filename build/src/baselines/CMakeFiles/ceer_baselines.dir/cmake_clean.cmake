file(REMOVE_RECURSE
  "CMakeFiles/ceer_baselines.dir/baselines.cc.o"
  "CMakeFiles/ceer_baselines.dir/baselines.cc.o.d"
  "libceer_baselines.a"
  "libceer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
