# Empty dependencies file for ceer_baselines.
# This may be replaced when dependencies are built.
