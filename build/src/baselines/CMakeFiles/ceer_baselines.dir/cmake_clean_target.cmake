file(REMOVE_RECURSE
  "libceer_baselines.a"
)
