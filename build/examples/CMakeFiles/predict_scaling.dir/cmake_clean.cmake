file(REMOVE_RECURSE
  "CMakeFiles/predict_scaling.dir/predict_scaling.cpp.o"
  "CMakeFiles/predict_scaling.dir/predict_scaling.cpp.o.d"
  "predict_scaling"
  "predict_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
