# Empty dependencies file for predict_scaling.
# This may be replaced when dependencies are built.
