# Empty compiler generated dependencies file for compare_predictors.
# This may be replaced when dependencies are built.
