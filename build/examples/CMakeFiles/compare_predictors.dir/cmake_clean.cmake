file(REMOVE_RECURSE
  "CMakeFiles/compare_predictors.dir/compare_predictors.cpp.o"
  "CMakeFiles/compare_predictors.dir/compare_predictors.cpp.o.d"
  "compare_predictors"
  "compare_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
