file(REMOVE_RECURSE
  "CMakeFiles/export_profiles.dir/export_profiles.cpp.o"
  "CMakeFiles/export_profiles.dir/export_profiles.cpp.o.d"
  "export_profiles"
  "export_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
