file(REMOVE_RECURSE
  "CMakeFiles/recommend_instance.dir/recommend_instance.cpp.o"
  "CMakeFiles/recommend_instance.dir/recommend_instance.cpp.o.d"
  "recommend_instance"
  "recommend_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommend_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
