# Empty compiler generated dependencies file for recommend_instance.
# This may be replaced when dependencies are built.
