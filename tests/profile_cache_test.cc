/**
 * @file
 * Tests for the shared on-disk profile cache: cold-vs-warm identity,
 * and the corrupt-entry recovery path (any malformed cache entry is a
 * miss, and re-profiling reproduces the cold run byte for byte).
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "profile/profile_cache.h"
#include "profile/profiler.h"

namespace ceer {
namespace profile {
namespace {

const std::vector<std::string> kModels = {"alexnet"};

CollectOptions
smallOptions()
{
    CollectOptions options;
    options.iterations = 10;
    options.maxGpus = 2;
    options.threads = 1;
    return options;
}

std::string
datasetCsv(const ProfileDataset &dataset)
{
    std::stringstream out;
    dataset.saveCsv(out);
    return out.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** Fresh per-test cache directory under the gtest temp dir. */
std::string
freshCacheDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "ceer-cache-" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ProfileCacheTest, ColdRunWritesEntryAndWarmRunMatches)
{
    const std::string dir = freshCacheDir("warm");
    const CollectOptions options = smallOptions();
    const std::string entry = cacheEntryPath(dir, kModels, options);

    const ProfileDataset cold =
        collectProfilesCached(kModels, options, dir);
    ASSERT_TRUE(std::filesystem::exists(entry));

    const ProfileDataset warm =
        collectProfilesCached(kModels, options, dir);
    EXPECT_EQ(datasetCsv(warm), datasetCsv(cold));
}

TEST(ProfileCacheTest, GarbledPayloadByteIsAMissAndRecovers)
{
    const std::string dir = freshCacheDir("garbled");
    const CollectOptions options = smallOptions();
    const std::string entry = cacheEntryPath(dir, kModels, options);

    const ProfileDataset cold =
        collectProfilesCached(kModels, options, dir);
    const std::string cold_csv = datasetCsv(cold);
    const std::string good_entry = readFile(entry);

    // Flip one bit in the last payload byte of the CBF entry; the
    // per-section checksum catches it.
    std::string corrupt = good_entry;
    corrupt.back() ^= 0x01;
    writeFile(entry, corrupt);

    // The corrupt entry must be treated as a miss: re-profile, rewrite
    // the entry, and return byte-identical results to the cold run.
    const ProfileDataset recovered =
        collectProfilesCached(kModels, options, dir);
    EXPECT_EQ(datasetCsv(recovered), cold_csv);
    EXPECT_EQ(readFile(entry), good_entry);
}

TEST(ProfileCacheTest, TruncatedAndCorruptHeaderEntriesAreMisses)
{
    const std::string dir = freshCacheDir("broken");
    const CollectOptions options = smallOptions();
    const std::string entry = cacheEntryPath(dir, kModels, options);

    const ProfileDataset cold =
        collectProfilesCached(kModels, options, dir);
    const std::string cold_csv = datasetCsv(cold);
    const std::string good_entry = readFile(entry);

    std::vector<std::string> broken;
    // Truncated after the header (the declared size no longer fits).
    broken.push_back(good_entry.substr(0, 100));
    // Magic damaged: no longer sniffs as CBF at all.
    broken.push_back(good_entry);
    broken.back()[0] ^= 0x40;
    // Format version from a future build.
    broken.push_back(good_entry);
    broken.back()[8] ^= 0x02;
    // One bit inside the column table (checksummed separately).
    broken.push_back(good_entry);
    broken.back()[40] ^= 0x01;
    // Truncated tail (the header's declared size no longer matches).
    broken.push_back(good_entry.substr(0, good_entry.size() - 3));

    for (std::size_t i = 0; i < broken.size(); ++i) {
        writeFile(entry, broken[i]);
        const ProfileDataset recovered =
            collectProfilesCached(kModels, options, dir);
        EXPECT_EQ(datasetCsv(recovered), cold_csv) << "case " << i;
        EXPECT_EQ(readFile(entry), good_entry) << "case " << i;
    }
}

TEST(ProfileCacheTest, KeyDependsOnSweepConfiguration)
{
    const CollectOptions base = smallOptions();
    CollectOptions other_seed = base;
    other_seed.seed = base.seed + 1;
    CollectOptions other_iters = base;
    other_iters.iterations = base.iterations + 1;
    CollectOptions other_threads = base;
    other_threads.threads = 4;

    const std::string dir = "cache";
    const std::string key = cacheEntryPath(dir, kModels, base);
    EXPECT_NE(cacheEntryPath(dir, kModels, other_seed), key);
    EXPECT_NE(cacheEntryPath(dir, kModels, other_iters), key);
    EXPECT_NE(cacheEntryPath(dir, {"alexnet", "vgg_11"}, base), key);
    // Thread count does not change results, so it must not change the
    // key (a cache filled by an 8-thread run serves a 1-thread run).
    EXPECT_EQ(cacheEntryPath(dir, kModels, other_threads), key);
}

TEST(ProfileCacheTest, CountersTrackHitsMissesAndCorruption)
{
    obs::ScopedEnable on(true);
    obs::resetMetrics();
    const std::string dir = freshCacheDir("counters");
    const CollectOptions options = smallOptions();
    const std::string entry = cacheEntryPath(dir, kModels, options);

    // Cold run: one miss, one write, no hit.
    collectProfilesCached(kModels, options, dir);
    {
        const obs::MetricsSnapshot s = obs::snapshotMetrics();
        EXPECT_EQ(s.counterValue("profile.cache.misses"), 1u);
        EXPECT_EQ(s.counterValue("profile.cache.writes"), 1u);
        EXPECT_EQ(s.counterValue("profile.cache.hits"), 0u);
        EXPECT_EQ(s.counterValue("profile.cache.corrupt"), 0u);
    }

    // Warm run: one hit, nothing else moves.
    collectProfilesCached(kModels, options, dir);
    EXPECT_EQ(
        obs::snapshotMetrics().counterValue("profile.cache.hits"), 1u);
    EXPECT_EQ(
        obs::snapshotMetrics().counterValue("profile.cache.misses"),
        1u);

    // Garbled entry: counted corrupt AND a miss (it re-profiles), and
    // the rewrite bumps the write counter. One flipped bit in the
    // column table is enough — the table checksum catches it.
    std::string corrupt = readFile(entry);
    ASSERT_GT(corrupt.size(), 41u);
    corrupt[40] ^= 0x01;
    writeFile(entry, corrupt);
    collectProfilesCached(kModels, options, dir);
    const obs::MetricsSnapshot s = obs::snapshotMetrics();
    EXPECT_EQ(s.counterValue("profile.cache.corrupt"), 1u);
    EXPECT_EQ(s.counterValue("profile.cache.misses"), 2u);
    EXPECT_EQ(s.counterValue("profile.cache.writes"), 2u);
}

TEST(ProfileCacheTest, EmptyCacheDirDisablesCaching)
{
    const CollectOptions options = smallOptions();
    const ProfileDataset direct = collectProfiles(kModels, options);
    const ProfileDataset uncached =
        collectProfilesCached(kModels, options, "");
    // Disabled caching returns the un-round-tripped dataset.
    EXPECT_EQ(datasetCsv(uncached), datasetCsv(direct));
}

} // namespace
} // namespace profile
} // namespace ceer
