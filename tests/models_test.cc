/**
 * @file
 * Tests for the 12-CNN model zoo: structural validity, realistic
 * parameter counts, op mixes and batch-size behaviour.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "models/model_zoo.h"

namespace ceer {
namespace models {
namespace {

using graph::Device;
using graph::Graph;
using graph::OpType;

std::map<OpType, int>
opCounts(const Graph &g)
{
    std::map<OpType, int> counts;
    for (const auto &node : g.nodes())
        ++counts[node.type];
    return counts;
}

TEST(ModelZooTest, RegistryCoversTwelveModels)
{
    EXPECT_EQ(allModelNames().size(), 12u);
    EXPECT_EQ(trainingSetNames().size(), 8u);
    EXPECT_EQ(testSetNames().size(), 4u);

    // Train/test sets partition the zoo (paper Sec. III).
    std::set<std::string> all(allModelNames().begin(),
                              allModelNames().end());
    std::set<std::string> seen;
    for (const auto &name : trainingSetNames()) {
        EXPECT_TRUE(all.count(name)) << name;
        EXPECT_TRUE(seen.insert(name).second) << name;
    }
    for (const auto &name : testSetNames()) {
        EXPECT_TRUE(all.count(name)) << name;
        EXPECT_TRUE(seen.insert(name).second) << name;
    }
    EXPECT_EQ(seen.size(), 12u);
}

TEST(ModelZooTest, TestSetMatchesPaper)
{
    const auto &test = testSetNames();
    EXPECT_NE(std::find(test.begin(), test.end(), "inception_v3"),
              test.end());
    EXPECT_NE(std::find(test.begin(), test.end(), "alexnet"),
              test.end());
    EXPECT_NE(std::find(test.begin(), test.end(), "resnet_101"),
              test.end());
    EXPECT_NE(std::find(test.begin(), test.end(), "vgg_19"), test.end());
}

/** Parameterized across all zoo models. */
class EveryModelTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryModelTest, BuildsValidGraph)
{
    Graph g = buildModel(GetParam(), 32);
    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
    EXPECT_GT(g.size(), 100u);
    EXPECT_GT(g.totalParameters(), 1'000'000);
    EXPECT_GT(g.cpuOpCount(), 0u);
    EXPECT_GT(g.gpuOpCount(), 50u);
}

TEST_P(EveryModelTest, HasForwardAndBackwardConvs)
{
    Graph g = buildModel(GetParam(), 8);
    const auto counts = opCounts(g);
    EXPECT_GT(counts.count(OpType::Conv2D), 0u);
    EXPECT_GT(counts.at(OpType::Conv2DBackpropFilter), 0);
    EXPECT_GT(counts.at(OpType::ApplyGradientDescent), 0);
    // Every conv except possibly the first gets an input gradient.
    EXPECT_GE(counts.at(OpType::Conv2DBackpropFilter),
              counts.at(OpType::Conv2DBackpropInput));
    EXPECT_LE(counts.at(OpType::Conv2DBackpropFilter) -
                  counts.at(OpType::Conv2DBackpropInput),
              1);
}

TEST_P(EveryModelTest, BatchScalesActivationsNotParams)
{
    Graph g8 = buildModel(GetParam(), 8);
    Graph g32 = buildModel(GetParam(), 32);
    EXPECT_EQ(g8.totalParameters(), g32.totalParameters());
    EXPECT_EQ(g8.size(), g32.size());
    // Find the first Conv2D in each and compare input batch dims.
    for (std::size_t i = 0; i < g8.size(); ++i) {
        const auto &n8 = g8.nodes()[i];
        if (n8.type == OpType::Conv2D) {
            const auto &n32 = g32.nodes()[i];
            EXPECT_EQ(n8.inputShapes[0].batch(), 8);
            EXPECT_EQ(n32.inputShapes[0].batch(), 32);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, EveryModelTest,
                         ::testing::ValuesIn(allModelNames()),
                         [](const auto &info) { return info.param; });

// --- Parameter-count plausibility (published values, +-12%) ---

struct ParamExpectation
{
    const char *name;
    double expected_millions;
};

class ParamCountTest : public ::testing::TestWithParam<ParamExpectation>
{
};

TEST_P(ParamCountTest, MatchesPublishedCount)
{
    const auto &expectation = GetParam();
    Graph g = buildModel(expectation.name, 32);
    const double millions =
        static_cast<double>(g.totalParameters()) / 1e6;
    EXPECT_NEAR(millions, expectation.expected_millions,
                expectation.expected_millions * 0.12)
        << expectation.name << " has " << millions << "M params";
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ParamCountTest,
    ::testing::Values(ParamExpectation{"alexnet", 61.0},
                      ParamExpectation{"vgg_11", 132.9},
                      ParamExpectation{"vgg_16", 138.4},
                      ParamExpectation{"vgg_19", 143.7},
                      ParamExpectation{"inception_v1", 6.6},
                      ParamExpectation{"inception_v3", 23.8},
                      ParamExpectation{"inception_v4", 42.7},
                      ParamExpectation{"resnet_50", 25.6},
                      ParamExpectation{"resnet_101", 44.5},
                      ParamExpectation{"resnet_152", 60.2},
                      ParamExpectation{"resnet_200", 64.7},
                      ParamExpectation{"inception_resnet_v2", 55.8}),
    [](const auto &info) { return std::string(info.param.name); });

// --- Architecture-specific structure ---

TEST(ModelStructureTest, AlexNetUsesLrnAndNoBatchNorm)
{
    Graph g = buildAlexNet(32);
    const auto counts = opCounts(g);
    EXPECT_EQ(counts.at(OpType::Lrn), 2);
    EXPECT_EQ(counts.count(OpType::FusedBatchNormV3), 0u);
    EXPECT_GT(counts.at(OpType::BiasAdd), 5);
    // 3 FC layers: 3 forward MatMuls + 6 backward.
    EXPECT_EQ(counts.at(OpType::MatMul), 9);
}

TEST(ModelStructureTest, VggDepthsDifferInConvCount)
{
    const auto c11 = opCounts(buildVgg(11, 8));
    const auto c16 = opCounts(buildVgg(16, 8));
    const auto c19 = opCounts(buildVgg(19, 8));
    EXPECT_EQ(c11.at(OpType::Conv2D), 8);
    EXPECT_EQ(c16.at(OpType::Conv2D), 13);
    EXPECT_EQ(c19.at(OpType::Conv2D), 16);
    EXPECT_EQ(c19.at(OpType::MaxPool), 5);
}

TEST(ModelStructureTest, ResNetIsAddHeavyAndPoolLight)
{
    Graph g = buildResNetV2(101, 8);
    const auto counts = opCounts(g);
    // 33 bottleneck blocks -> 33 AddV2 (plus the global-step add).
    EXPECT_GE(counts.at(OpType::AddV2), 33);
    // Residual fan-out must produce AddN gradients.
    EXPECT_GT(counts.at(OpType::AddN), 10);
    // Few pooling ops: stem max pool only (global avg pool is Mean).
    EXPECT_LE(counts.at(OpType::MaxPool), 2);
    EXPECT_EQ(counts.count(OpType::AvgPool), 0u);
    EXPECT_GT(counts.at(OpType::FusedBatchNormV3), 90);
}

TEST(ModelStructureTest, InceptionV3IsConcatAndPoolHeavy)
{
    Graph g = buildInceptionV3(8);
    const auto counts = opCounts(g);
    EXPECT_GT(counts.at(OpType::ConcatV2), 10);
    EXPECT_GT(counts.at(OpType::AvgPool), 5);
    EXPECT_GT(counts.at(OpType::MaxPool), 3);
    // Concat gradients are slices.
    EXPECT_GT(counts.at(OpType::Slice), 30);
}

TEST(ModelStructureTest, InceptionResNetHasBothConcatAndResidual)
{
    Graph g = buildInceptionResNetV2(8);
    const auto counts = opCounts(g);
    EXPECT_GT(counts.at(OpType::ConcatV2), 15);
    EXPECT_GE(counts.at(OpType::AddV2), 20);
    EXPECT_GT(counts.at(OpType::Mul), 20);
}

TEST(ModelStructureTest, ResNetDepthsOrderedBySize)
{
    const auto p50 = buildResNetV2(50, 8).totalParameters();
    const auto p101 = buildResNetV2(101, 8).totalParameters();
    const auto p152 = buildResNetV2(152, 8).totalParameters();
    const auto p200 = buildResNetV2(200, 8).totalParameters();
    EXPECT_LT(p50, p101);
    EXPECT_LT(p101, p152);
    EXPECT_LT(p152, p200);
}

TEST(ModelStructureTest, InputSizesMatchArchitectures)
{
    EXPECT_EQ(modelInputSize("alexnet"), 227);
    EXPECT_EQ(modelInputSize("vgg_19"), 224);
    EXPECT_EQ(modelInputSize("inception_v1"), 224);
    EXPECT_EQ(modelInputSize("inception_v3"), 299);
    EXPECT_EQ(modelInputSize("inception_resnet_v2"), 299);
    EXPECT_EQ(modelInputSize("resnet_101"), 224);
}

TEST_P(EveryModelTest, EveryParamVarGetsExactlyOneUpdate)
{
    // Strong autodiff invariant: across the whole zoo, the number of
    // optimizer update ops equals the number of registered trainable
    // variables (each variable is updated exactly once per iteration).
    Graph g = buildModel(GetParam(), 8);
    std::size_t updates = 0;
    for (const auto &node : g.nodes())
        updates += node.type == OpType::ApplyGradientDescent;
    EXPECT_EQ(updates, g.paramVars().size());
}

TEST_P(EveryModelTest, GradientNodesAreMarked)
{
    Graph g = buildModel(GetParam(), 8);
    bool seen_gradient = false;
    for (const auto &node : g.nodes()) {
        if (node.isGradient)
            seen_gradient = true;
        else
            EXPECT_FALSE(seen_gradient)
                << "forward node after gradient region: " << node.name;
    }
    EXPECT_TRUE(seen_gradient);
}

TEST(ModelZooTest, UnknownModelNameIsFatal)
{
    EXPECT_DEATH(buildModel("lenet", 8), "unknown model");
}

} // namespace
} // namespace models
} // namespace ceer
