/**
 * @file
 * Tests for the Transformer encoder extension (paper Sec. VI future
 * work) and the multi-host communication extension (limitation 2).
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "hw/interconnect.h"
#include "hw/memory.h"
#include "models/model_zoo.h"
#include "sim/simulator.h"

namespace ceer {
namespace models {
namespace {

using graph::Graph;
using graph::OpType;

const Graph &
bertBase()
{
    static const Graph g = buildTransformerEncoder(32);
    return g;
}

TEST(TransformerTest, BuildsValidGraphWithBertBaseParams)
{
    const Graph &g = bertBase();
    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
    // BERT-base: ~110M parameters.
    EXPECT_NEAR(static_cast<double>(g.totalParameters()) / 1e6, 110.0,
                8.0);
    EXPECT_GT(g.size(), 500u);
    EXPECT_GT(g.cpuOpCount(), 2u);
}

TEST(TransformerTest, UsesTransformerKernels)
{
    std::map<OpType, int> counts;
    for (const auto &node : bertBase().nodes())
        ++counts[node.type];
    // 12 layers x 2 attention BMMs (+ backward x2 each).
    EXPECT_GE(counts[OpType::BatchMatMul], 24);
    // 12 layers x 2 LayerNorms + embedding LN, plus gradients.
    EXPECT_GE(counts[OpType::LayerNorm], 25);
    // Every LayerNorm (including the embedding one) is on the loss
    // path, so each gets exactly one gradient kernel.
    EXPECT_EQ(counts[OpType::LayerNormGrad],
              counts[OpType::LayerNorm]);
    EXPECT_EQ(counts[OpType::Gelu], 12);
    EXPECT_EQ(counts[OpType::GeluGrad], 12);
    EXPECT_EQ(counts[OpType::Gather], 1);
    EXPECT_EQ(counts[OpType::Tanh], 1);
    // No convolutions anywhere.
    EXPECT_EQ(counts.count(OpType::Conv2D), 0u);
}

TEST(TransformerTest, EmbeddingGradientScattersIntoTable)
{
    // The Gather op must produce exactly one table update and no
    // gradient toward the integer indices.
    const Graph &g = bertBase();
    int table_updates = 0;
    for (const auto &node : g.nodes()) {
        if (node.name.find("embeddings/Gather/update") !=
            std::string::npos) {
            ++table_updates;
            EXPECT_EQ(node.attrs.paramCount, 30522ll * 768);
        }
        if (node.name.find("grad/data/tokens") != std::string::npos)
            FAIL() << "gradient flowed into the token pipeline";
    }
    EXPECT_EQ(table_updates, 1);
}

TEST(TransformerTest, AttentionDominatesComputeRealistically)
{
    // On V100, one iteration at batch 32 should land in the hundreds
    // of milliseconds (real BERT-base: ~300-400ms) and fit in 16 GB.
    sim::SimConfig config;
    config.seed = 5;
    sim::TrainingSimulator simulator(bertBase(), config);
    const double iter_us = simulator.run(10).iterationUs.mean();
    EXPECT_GT(iter_us, 100e3);
    EXPECT_LT(iter_us, 900e3);
    EXPECT_TRUE(hw::fitsInGpuMemory(bertBase(), hw::GpuModel::V100));
}

TEST(TransformerTest, BatchMatMulFlopsMatchAttentionMath)
{
    // scores = QK': [B*h, S, d_h] x -> [B*h, S, S] should cost
    // 2 * B*h * S * S * d_h flops.
    for (const auto &node : bertBase().nodes()) {
        if (node.type == OpType::BatchMatMul &&
            node.name.find("att/qk") != std::string::npos &&
            !node.isGradient) {
            const double flops = hw::opCost(node).flops;
            EXPECT_NEAR(flops, 2.0 * (32.0 * 12) * 128 * 128 * 64,
                        1.0);
            return;
        }
    }
    FAIL() << "attention scores BatchMatMul not found";
}

TEST(TransformerTest, RegistryBuildsByNameButZooStaysTwelve)
{
    const Graph g = buildModel("transformer_encoder", 8);
    EXPECT_EQ(g.name(), "transformer_encoder");
    const auto &zoo = allModelNames();
    EXPECT_EQ(zoo.size(), 12u);
    EXPECT_EQ(std::find(zoo.begin(), zoo.end(), "transformer_encoder"),
              zoo.end());
}

// --- LSTM classifier (the other Sec. VI future-work family) ---

TEST(LstmTest, BuildsValidUnrolledGraph)
{
    const Graph g = buildLstmClassifier(32);
    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
    // 64 unrolled steps of ~17 forward ops plus the backward pass.
    EXPECT_GT(g.size(), 2000u);
    EXPECT_NEAR(static_cast<double>(g.totalParameters()) / 1e6, 7.2,
                0.5);
}

TEST(LstmTest, GateStructurePerStep)
{
    const Graph g = buildLstmClassifier(8);
    std::map<OpType, int> counts;
    for (const auto &node : g.nodes())
        if (!node.isGradient)
            ++counts[node.type];
    // Per step: 1 fused-gate MatMul, 3 sigmoids, 2 tanh, 3 Mul.
    EXPECT_EQ(counts[OpType::Sigmoid], 3 * 64);
    EXPECT_EQ(counts[OpType::Tanh], 2 * 64);
    EXPECT_GE(counts[OpType::MatMul], 64);
    EXPECT_EQ(counts[OpType::ConcatV2], 64);
}

TEST(LstmTest, BpttGradientsReachEveryStep)
{
    // Gradients must flow back through all 64 steps: the first step's
    // gate MatMul gets a weight-gradient kernel.
    const Graph g = buildLstmClassifier(8);
    bool first_step_updated = false;
    for (const auto &node : g.nodes()) {
        if (node.isGradient &&
            node.name.find("step_00/gates") != std::string::npos) {
            first_step_updated = true;
        }
    }
    EXPECT_TRUE(first_step_updated);
}

TEST(LstmTest, MostKernelsAreCnnKnown)
{
    // Only Sigmoid (and the shared Gather/Fill plumbing) is new
    // relative to the CNN zoo's op set; count its time share as small.
    const Graph g = buildLstmClassifier(32);
    std::set<OpType> cnn_ops;
    for (const std::string &name : allModelNames()) {
        for (const auto &entry :
             buildModel(name, 8).countByOpType()) {
            cnn_ops.insert(entry.type);
        }
    }
    std::size_t unknown = 0, total = 0;
    for (const auto &node : g.nodes()) {
        if (node.device() != graph::Device::Gpu)
            continue;
        ++total;
        unknown += !cnn_ops.count(node.type);
    }
    EXPECT_LT(static_cast<double>(unknown) / static_cast<double>(total),
              0.15);
}

// --- MobileNet-v1 (post-zoo CNN op: depthwise convolution) ---

TEST(MobileNetTest, BuildsValidGraphWithPublishedParams)
{
    const Graph g = buildMobileNetV1(32);
    std::string error;
    EXPECT_TRUE(g.validate(&error)) << error;
    EXPECT_NEAR(static_cast<double>(g.totalParameters()) / 1e6, 4.2,
                0.4);
}

TEST(MobileNetTest, ThirteenSeparableBlocks)
{
    const Graph g = buildMobileNetV1(8);
    std::map<OpType, int> counts;
    for (const auto &node : g.nodes())
        ++counts[node.type];
    EXPECT_EQ(counts[OpType::DepthwiseConv2dNative], 13);
    EXPECT_EQ(counts[OpType::DepthwiseConv2dNativeBackpropFilter], 13);
    // Every depthwise conv sits mid-network: all get input grads.
    EXPECT_EQ(counts[OpType::DepthwiseConv2dNativeBackpropInput], 13);
    // Stem conv + 13 pointwise convs.
    EXPECT_EQ(counts[OpType::Conv2D], 14);
}

TEST(MobileNetTest, DepthwiseFlopsLackChannelFactor)
{
    // Depthwise MACs = 2 * out_elems * kh * kw; the pointwise conv in
    // the same block must cost ~C_in times more FLOPs per element.
    const Graph g = buildMobileNetV1(32);
    double depthwise_flops = 0.0, pointwise_flops = 0.0;
    for (const auto &node : g.nodes()) {
        if (node.isGradient)
            continue;
        if (node.type == OpType::DepthwiseConv2dNative &&
            node.name.find("block_01") != std::string::npos) {
            depthwise_flops = hw::opCost(node).flops;
            // 112x112x32 output, 3x3 window.
            EXPECT_NEAR(depthwise_flops,
                        2.0 * 32 * 112 * 112 * 32 * 9, 1.0);
        }
        if (node.type == OpType::Conv2D &&
            node.name.find("block_01/pw") != std::string::npos) {
            pointwise_flops = hw::opCost(node).flops;
        }
    }
    ASSERT_GT(depthwise_flops, 0.0);
    ASSERT_GT(pointwise_flops, 0.0);
    // pw: 2*out_elems*1*1*32 vs dw: 2*out_elems*9 -> ratio 32/9 ~ 3.6
    // at equal spatial size (pw doubles channels: x2 more elems).
    EXPECT_GT(pointwise_flops / depthwise_flops, 3.0);
}

// --- Multi-host communication ---

TEST(MultiHostTest, CrossingHostsRaisesOverhead)
{
    for (hw::GpuModel gpu : hw::allGpuModels()) {
        const double single_host =
            hw::commOverheadUs(gpu, 4, 100e6, 20e6, 8);
        const double two_hosts =
            hw::commOverheadUs(gpu, 4, 100e6, 20e6, 2);
        const double four_hosts =
            hw::commOverheadUs(gpu, 4, 100e6, 20e6, 1);
        EXPECT_GT(two_hosts, single_host) << hw::gpuModelName(gpu);
        EXPECT_GT(four_hosts, two_hosts) << hw::gpuModelName(gpu);
    }
}

TEST(MultiHostTest, SingleGpuUnaffectedByTopology)
{
    EXPECT_DOUBLE_EQ(
        hw::commOverheadUs(hw::GpuModel::V100, 1, 100e6, 20e6, 8),
        hw::commOverheadUs(hw::GpuModel::V100, 1, 100e6, 20e6, 1));
}

TEST(MultiHostTest, SimulatorThreadsTopologyThrough)
{
    const Graph g = buildInceptionV1(32);
    sim::SimConfig single, spread;
    single.numGpus = spread.numGpus = 4;
    single.seed = spread.seed = 99;
    spread.gpusPerHost = 1;
    sim::TrainingSimulator a(g, single), b(g, spread);
    EXPECT_GT(b.run(15).commUs.mean(), a.run(15).commUs.mean() * 1.2);
}

TEST(MultiHostTest, BadTopologyPanics)
{
    EXPECT_DEATH(hw::commOverheadUs(hw::GpuModel::V100, 4, 1e6, 1e6, 0),
                 "gpus_per_host");
    const Graph g = buildInceptionV1(8);
    sim::SimConfig config;
    config.gpusPerHost = 0;
    EXPECT_DEATH(sim::TrainingSimulator(g, config), "gpusPerHost");
}

} // namespace
} // namespace models
} // namespace ceer
