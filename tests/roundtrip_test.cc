/**
 * @file
 * Seeded randomized round-trip harness for every serialization format
 * in the repo: CSV documents (CsvWriter <-> readCsv), LinearModel
 * strings, CeerModel text files and ProfileDataset CSVs, over
 * adversarial contents — quotes, commas, CR/LF, multi-line fields,
 * extreme magnitudes and full-precision doubles.
 *
 * All generators are seeded Rngs, so every trial is reproducible.
 */

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "core/ceer_model.h"
#include "core/regression.h"
#include "graph/op_type.h"
#include "hw/gpu_spec.h"
#include "io/cbf.h"
#include "profile/profiler.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/strings.h"

namespace ceer {
namespace {

using core::CeerModel;
using core::LinearModel;
using core::OpTimeModel;
using graph::OpType;
using hw::GpuModel;

/** Characters deliberately hostile to naive CSV code. */
const std::string kCsvAlphabet = "ab0,\";\n\r \tx";

std::string
randomField(util::Rng &rng)
{
    std::string field;
    const std::size_t length = rng.uniformInt(10);
    for (std::size_t i = 0; i < length; ++i)
        field += kCsvAlphabet[rng.uniformInt(kCsvAlphabet.size())];
    return field;
}

/** A finite double spanning ~24 decades of magnitude, either sign. */
double
randomDouble(util::Rng &rng)
{
    const double magnitude = std::pow(10.0, rng.uniform(-12.0, 12.0));
    return (rng.uniform() * 2.0 - 1.0) * magnitude;
}

double
randomPositive(util::Rng &rng)
{
    return std::pow(10.0, rng.uniform(-6.0, 9.0));
}

std::string
fmt17(double value)
{
    return util::format("%.17g", value);
}

TEST(RoundTripTest, RandomizedCsvDocumentsSurviveWriteRead)
{
    util::Rng rng(20260806);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<std::vector<std::string>> rows;
        const std::size_t num_rows = 1 + rng.uniformInt(6);
        for (std::size_t r = 0; r < num_rows; ++r) {
            std::vector<std::string> row;
            const std::size_t num_fields = 1 + rng.uniformInt(5);
            for (std::size_t f = 0; f < num_fields; ++f)
                row.push_back(randomField(rng));
            rows.push_back(std::move(row));
        }
        std::stringstream buffer;
        util::CsvWriter writer(buffer);
        for (const auto &row : rows)
            writer.writeRow(row);
        const auto reread = util::readCsv(buffer);
        ASSERT_EQ(reread, rows) << "trial " << trial;
    }
}

TEST(RoundTripTest, RandomizedLinearModelsSerializeBitIdentically)
{
    util::Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t arity = rng.uniformInt(4);
        std::string text = fmt17(randomDouble(rng));
        for (std::size_t j = 0; j < arity; ++j)
            text += ";" + fmt17(randomDouble(rng)) + "," +
                    fmt17(randomPositive(rng));
        LinearModel first;
        std::string error;
        ASSERT_TRUE(LinearModel::tryDeserialize(text, &first, &error))
            << text << ": " << error;
        // serialize() is %.17g, which round-trips a double exactly:
        // one trip must reach a fixed point, and the reloaded model
        // must predict bit-identically.
        const std::string serialized = first.serialize();
        const LinearModel second = LinearModel::deserialize(serialized);
        EXPECT_EQ(second.serialize(), serialized) << "trial " << trial;
        std::vector<double> x;
        for (std::size_t j = 0; j < arity; ++j)
            x.push_back(randomDouble(rng));
        EXPECT_EQ(second.predict(x), first.predict(x))
            << "trial " << trial;
    }
}

/** Op types used for randomized models (any valid subset works). */
const std::vector<OpType> &
someOps()
{
    static const std::vector<OpType> ops = {
        OpType::Conv2D,  OpType::MaxPool, OpType::Relu,
        OpType::MatMul,  OpType::BiasAdd, OpType::AddV2,
        OpType::AvgPool, OpType::Mul,
    };
    return ops;
}

std::string
randomLinearModelText(util::Rng &rng, std::size_t arity)
{
    std::string text = fmt17(randomDouble(rng));
    for (std::size_t j = 0; j < arity; ++j)
        text += ";" + fmt17(randomDouble(rng)) + "," +
                fmt17(randomPositive(rng));
    return text;
}

CeerModel
randomCeerModel(util::Rng &rng)
{
    CeerModel model;
    model.heavyThresholdUs = randomPositive(rng);
    model.lightMedianUs = randomPositive(rng);
    model.cpuMedianUs = randomPositive(rng);
    for (GpuModel gpu : hw::allGpuModels()) {
        for (OpType op : someOps()) {
            if (rng.uniform() < 0.4)
                continue;
            OpTimeModel entry;
            entry.gpu = gpu;
            entry.op = op;
            entry.quadratic = rng.uniform() < 0.5;
            entry.usable = rng.uniform() < 0.8;
            entry.r2 = rng.uniform();
            entry.medianUs = randomPositive(rng);
            entry.points = rng.uniformInt(1000);
            entry.model = LinearModel::deserialize(
                randomLinearModelText(rng, 1 + rng.uniformInt(2)));
            model.opModels.emplace(std::make_pair(gpu, op),
                                   std::move(entry));
            if (rng.uniform() < 0.7)
                model.heavyOps.insert(op);
        }
        auto &per_k = model.comm.fits[gpu];
        per_k.resize(1 + rng.uniformInt(4));
        for (auto &fit : per_k) {
            if (rng.uniform() < 0.3)
                continue;
            fit.valid = true;
            fit.r2 = rng.uniform();
            fit.model =
                LinearModel::deserialize(randomLinearModelText(rng, 1));
        }
    }
    return model;
}

TEST(RoundTripTest, RandomizedCeerModelsSaveLoadSaveByteIdentically)
{
    // save() emits every coefficient at %.17g and iterates sorted
    // containers, so save -> load -> save must reproduce the document
    // byte for byte, whatever the model contents.
    util::Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
        const CeerModel original = randomCeerModel(rng);
        std::stringstream first;
        original.save(first);
        const CeerModel reloaded = CeerModel::load(first);
        std::stringstream second;
        reloaded.save(second);
        ASSERT_EQ(second.str(), first.str()) << "trial " << trial;
    }
}

/** CNN names hostile to the CSV layer. */
std::string
randomModelName(util::Rng &rng)
{
    static const std::vector<std::string> names = {
        "alexnet", "a,b", "q\"uote", "multi\nline", "cr\rname",
        "trailing ", "", "semi;colon",
    };
    return names[rng.uniformInt(names.size())];
}

profile::OpProfile
randomOpProfile(util::Rng &rng, std::size_t count)
{
    profile::OpProfile profile;
    profile.model = randomModelName(rng);
    const auto &gpus = hw::allGpuModels();
    profile.gpu = gpus[rng.uniformInt(gpus.size())];
    profile.op = someOps()[rng.uniformInt(someOps().size())];
    profile.onCpu = rng.uniform() < 0.2;
    profile.occurrences = 1 + rng.uniformInt(50);
    const std::size_t num_features = 1 + rng.uniformInt(4);
    for (std::size_t f = 0; f < num_features; ++f)
        profile.features.push_back(randomPositive(rng));
    const double mean = randomPositive(rng);
    const double spread = mean * rng.uniform(0.0, 0.05);
    for (std::size_t j = 0; j < count; ++j)
        profile.timeUs.add(j % 2 == 0 ? mean + spread : mean - spread);
    const std::size_t num_samples = rng.uniformInt(8);
    for (std::size_t s = 0; s < num_samples; ++s)
        profile.samples.add(randomPositive(rng));
    return profile;
}

profile::IterationProfile
randomIterationProfile(util::Rng &rng)
{
    profile::IterationProfile run;
    run.model = randomModelName(rng);
    const auto &gpus = hw::allGpuModels();
    run.gpu = gpus[rng.uniformInt(gpus.size())];
    run.numGpus = 1 + static_cast<int>(rng.uniformInt(4));
    run.paramCount = static_cast<std::int64_t>(rng.uniformInt(1u << 30));
    run.meanIterationUs = randomPositive(rng);
    run.meanComputeUs = randomPositive(rng);
    run.meanCommUs = randomPositive(rng);
    return run;
}

std::string
datasetCsv(const profile::ProfileDataset &dataset)
{
    std::stringstream out;
    dataset.saveCsv(out);
    return out.str();
}

TEST(RoundTripTest, SingleCountDatasetsRoundTripByteIdentically)
{
    // With count == 1 the moment reconstruction in loadCsv is exact
    // (the single sample IS the mean), and every numeric column's
    // decimal rendering survives a parse/re-print cycle, so the CSV
    // itself must round-trip byte for byte.
    util::Rng rng(113);
    for (int trial = 0; trial < 40; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(12);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(randomOpProfile(rng, 1));
        dataset.add(std::move(ops));
        const std::size_t num_iters = rng.uniformInt(6);
        for (std::size_t i = 0; i < num_iters; ++i)
            dataset.addIteration(randomIterationProfile(rng));

        const std::string first = datasetCsv(dataset);
        std::istringstream in(first);
        const profile::ProfileDataset reloaded =
            profile::ProfileDataset::loadCsv(in);
        ASSERT_EQ(datasetCsv(reloaded), first) << "trial " << trial;
    }
}

TEST(RoundTripTest, MultiCountDatasetsReachAFixedPointAfterOneTrip)
{
    // Multi-sample stats are stored as (count, mean, stddev) and
    // reconstructed as a two-point distribution: the first save ->
    // load trip is mildly lossy by design, but the result must be
    // stable — a second trip reproduces the CSV byte for byte (this
    // is what makes warm cache hits identical to cold runs).
    util::Rng rng(229);
    for (int trial = 0; trial < 40; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(
                randomOpProfile(rng, 2 * (1 + rng.uniformInt(20))));
        dataset.add(std::move(ops));

        const std::string first = datasetCsv(dataset);
        std::istringstream in_first(first);
        const profile::ProfileDataset once =
            profile::ProfileDataset::loadCsv(in_first);
        const std::string second = datasetCsv(once);
        std::istringstream in_second(second);
        const profile::ProfileDataset twice =
            profile::ProfileDataset::loadCsv(in_second);
        ASSERT_EQ(datasetCsv(twice), second) << "trial " << trial;

        // The lossy step stays small: even counts make the two-point
        // reconstruction exact up to floating-point rounding.
        ASSERT_EQ(once.ops().size(), dataset.ops().size());
        for (std::size_t i = 0; i < once.ops().size(); ++i) {
            const auto &a = dataset.ops()[i];
            const auto &b = once.ops()[i];
            EXPECT_EQ(b.model, a.model);
            EXPECT_EQ(b.occurrences, a.occurrences);
            EXPECT_EQ(b.features, a.features);
            EXPECT_EQ(b.timeUs.count(), a.timeUs.count());
            EXPECT_NEAR(b.timeUs.mean(), a.timeUs.mean(),
                        1e-6 * a.timeUs.mean());
            EXPECT_NEAR(b.timeUs.stddev(), a.timeUs.stddev(),
                        1e-6 * a.timeUs.stddev() + 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// CBF (binary) round-trips. Unlike CSV, the CBF codec stores the
// exact accumulator state, so round-trips are bit-identical for ANY
// dataset — odd counts, overflowed reservoirs, hostile names.

std::string
datasetCbf(const profile::ProfileDataset &dataset)
{
    std::stringstream out;
    dataset.saveCbf(out);
    return out.str();
}

profile::ProfileDataset
parseCbfDataset(const std::string &bytes)
{
    io::CbfFile file;
    std::string error;
    EXPECT_TRUE(io::CbfFile::tryParse(bytes, &file, &error)) << error;
    profile::ProfileDataset dataset;
    EXPECT_TRUE(
        profile::ProfileDataset::tryLoadCbf(file, &dataset, &error))
        << error;
    return dataset;
}

TEST(RoundTripTest, RandomizedDatasetsCbfRoundTripExactly)
{
    util::Rng rng(307);
    for (int trial = 0; trial < 40; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i) {
            // Odd counts and overflowed reservoirs on purpose: the
            // binary codec must not depend on CSV-representability.
            profile::OpProfile op =
                randomOpProfile(rng, 1 + rng.uniformInt(41));
            const std::size_t extra = rng.uniformInt(150);
            for (std::size_t s = 0; s < extra; ++s)
                op.samples.add(randomPositive(rng));
            ops.push_back(std::move(op));
        }
        dataset.add(std::move(ops));
        const std::size_t num_iters = rng.uniformInt(6);
        for (std::size_t i = 0; i < num_iters; ++i)
            dataset.addIteration(randomIterationProfile(rng));

        const std::string bytes = datasetCbf(dataset);
        const profile::ProfileDataset reloaded = parseCbfDataset(bytes);
        ASSERT_EQ(datasetCbf(reloaded), bytes) << "trial " << trial;
        // Spot-check the exactness claim on the lossiest CSV fields.
        ASSERT_EQ(reloaded.ops().size(), dataset.ops().size());
        for (std::size_t i = 0; i < dataset.ops().size(); ++i) {
            const auto &a = dataset.ops()[i];
            const auto &b = reloaded.ops()[i];
            EXPECT_EQ(b.timeUs.count(), a.timeUs.count());
            EXPECT_EQ(b.timeUs.mean(), a.timeUs.mean());
            EXPECT_EQ(b.timeUs.stddev(), a.timeUs.stddev());
            EXPECT_EQ(b.samples.offered(), a.samples.offered());
            EXPECT_EQ(b.samples.samples(), a.samples.samples());
        }
        // And the CSV rendering agrees, since the contents do.
        EXPECT_EQ(datasetCsv(reloaded), datasetCsv(dataset))
            << "trial " << trial;
    }
}

TEST(RoundTripTest, CsvToCbfToCsvReproducesTheCanonicalCsv)
{
    // CSV -> CBF -> CSV: starting from a canonical CSV (one save/load
    // trip puts any dataset there), converting through the binary
    // dialect and back must reproduce the text byte for byte.
    util::Rng rng(401);
    for (int trial = 0; trial < 30; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(
                randomOpProfile(rng, 1 + rng.uniformInt(30)));
        dataset.add(std::move(ops));
        const std::size_t num_iters = rng.uniformInt(4);
        for (std::size_t i = 0; i < num_iters; ++i)
            dataset.addIteration(randomIterationProfile(rng));

        std::istringstream raw(datasetCsv(dataset));
        const profile::ProfileDataset canonical_dataset =
            profile::ProfileDataset::loadCsv(raw);
        const std::string canonical = datasetCsv(canonical_dataset);

        const profile::ProfileDataset from_cbf =
            parseCbfDataset(datasetCbf(canonical_dataset));
        ASSERT_EQ(datasetCsv(from_cbf), canonical) << "trial " << trial;
    }
}

TEST(RoundTripTest, CbfToCsvToCbfIsExactForCsvRepresentableDatasets)
{
    // CBF -> CSV -> CBF: exact whenever the dataset is inside CSV's
    // representable set — canonical values and single-sample stats
    // (count == 1 makes the moment reconstruction lossless).
    util::Rng rng(503);
    for (int trial = 0; trial < 30; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(randomOpProfile(rng, 1));
        dataset.add(std::move(ops));
        std::istringstream raw(datasetCsv(dataset));
        const profile::ProfileDataset canonical =
            profile::ProfileDataset::loadCsv(raw);

        const std::string cbf_first = datasetCbf(canonical);
        std::istringstream csv_in(datasetCsv(canonical));
        const profile::ProfileDataset via_csv =
            profile::ProfileDataset::loadCsv(csv_in);
        ASSERT_EQ(datasetCbf(via_csv), cbf_first) << "trial " << trial;
    }
}

TEST(RoundTripTest, RandomizedCeerModelsCbfRoundTripByteIdentically)
{
    util::Rng rng(601);
    for (int trial = 0; trial < 50; ++trial) {
        const CeerModel original = randomCeerModel(rng);
        std::stringstream first;
        original.saveCbf(first);

        io::CbfFile file;
        std::string error;
        ASSERT_TRUE(io::CbfFile::tryParse(first.str(), &file, &error))
            << error;
        CeerModel reloaded;
        ASSERT_TRUE(CeerModel::tryLoadCbf(file, &reloaded, &error))
            << error;
        std::stringstream second;
        reloaded.saveCbf(second);
        ASSERT_EQ(second.str(), first.str()) << "trial " << trial;

        // The text dialect agrees too, since the contents do.
        std::stringstream text_a, text_b;
        original.save(text_a);
        reloaded.save(text_b);
        EXPECT_EQ(text_b.str(), text_a.str()) << "trial " << trial;
    }
}

TEST(RoundTripTest, CatalogCbfRoundTripsByteIdentically)
{
    for (const cloud::InstanceCatalog &catalog :
         {cloud::InstanceCatalog::awsOnDemand(),
          cloud::InstanceCatalog::syntheticFleet(500)}) {
        std::stringstream first;
        catalog.saveCbf(first);
        io::CbfFile file;
        std::string error;
        ASSERT_TRUE(io::CbfFile::tryParse(first.str(), &file, &error))
            << error;
        cloud::InstanceCatalog reloaded;
        ASSERT_TRUE(cloud::InstanceCatalog::tryLoadCbf(file, &reloaded,
                                                       &error))
            << error;
        std::stringstream second;
        reloaded.saveCbf(second);
        ASSERT_EQ(second.str(), first.str());
        ASSERT_EQ(reloaded.instances().size(),
                  catalog.instances().size());
    }
}

} // namespace
} // namespace ceer
