/**
 * @file
 * Seeded randomized round-trip harness for every serialization format
 * in the repo: CSV documents (CsvWriter <-> readCsv), LinearModel
 * strings, CeerModel text files and ProfileDataset CSVs, over
 * adversarial contents — quotes, commas, CR/LF, multi-line fields,
 * extreme magnitudes and full-precision doubles.
 *
 * All generators are seeded Rngs, so every trial is reproducible.
 */

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/evaluate.h"
#include "cloud/instances.h"
#include "core/ceer_model.h"
#include "core/regression.h"
#include "graph/op_type.h"
#include "hw/gpu_spec.h"
#include "io/cbf.h"
#include "profile/profiler.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/strings.h"

namespace ceer {
namespace {

using core::CeerModel;
using core::LinearModel;
using core::OpTimeModel;
using graph::OpType;
using hw::GpuModel;

/** Characters deliberately hostile to naive CSV code. */
const std::string kCsvAlphabet = "ab0,\";\n\r \tx";

std::string
randomField(util::Rng &rng)
{
    std::string field;
    const std::size_t length = rng.uniformInt(10);
    for (std::size_t i = 0; i < length; ++i)
        field += kCsvAlphabet[rng.uniformInt(kCsvAlphabet.size())];
    return field;
}

/** A finite double spanning ~24 decades of magnitude, either sign. */
double
randomDouble(util::Rng &rng)
{
    const double magnitude = std::pow(10.0, rng.uniform(-12.0, 12.0));
    return (rng.uniform() * 2.0 - 1.0) * magnitude;
}

double
randomPositive(util::Rng &rng)
{
    return std::pow(10.0, rng.uniform(-6.0, 9.0));
}

std::string
fmt17(double value)
{
    return util::format("%.17g", value);
}

TEST(RoundTripTest, RandomizedCsvDocumentsSurviveWriteRead)
{
    util::Rng rng(20260806);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<std::vector<std::string>> rows;
        const std::size_t num_rows = 1 + rng.uniformInt(6);
        for (std::size_t r = 0; r < num_rows; ++r) {
            std::vector<std::string> row;
            const std::size_t num_fields = 1 + rng.uniformInt(5);
            for (std::size_t f = 0; f < num_fields; ++f)
                row.push_back(randomField(rng));
            rows.push_back(std::move(row));
        }
        std::stringstream buffer;
        util::CsvWriter writer(buffer);
        for (const auto &row : rows)
            writer.writeRow(row);
        const auto reread = util::readCsv(buffer);
        ASSERT_EQ(reread, rows) << "trial " << trial;
    }
}

TEST(RoundTripTest, RandomizedLinearModelsSerializeBitIdentically)
{
    util::Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t arity = rng.uniformInt(4);
        std::string text = fmt17(randomDouble(rng));
        for (std::size_t j = 0; j < arity; ++j)
            text += ";" + fmt17(randomDouble(rng)) + "," +
                    fmt17(randomPositive(rng));
        LinearModel first;
        std::string error;
        ASSERT_TRUE(LinearModel::tryDeserialize(text, &first, &error))
            << text << ": " << error;
        // serialize() is %.17g, which round-trips a double exactly:
        // one trip must reach a fixed point, and the reloaded model
        // must predict bit-identically.
        const std::string serialized = first.serialize();
        const LinearModel second = LinearModel::deserialize(serialized);
        EXPECT_EQ(second.serialize(), serialized) << "trial " << trial;
        std::vector<double> x;
        for (std::size_t j = 0; j < arity; ++j)
            x.push_back(randomDouble(rng));
        EXPECT_EQ(second.predict(x), first.predict(x))
            << "trial " << trial;
    }
}

/** Op types used for randomized models (any valid subset works). */
const std::vector<OpType> &
someOps()
{
    static const std::vector<OpType> ops = {
        OpType::Conv2D,  OpType::MaxPool, OpType::Relu,
        OpType::MatMul,  OpType::BiasAdd, OpType::AddV2,
        OpType::AvgPool, OpType::Mul,
    };
    return ops;
}

std::string
randomLinearModelText(util::Rng &rng, std::size_t arity)
{
    std::string text = fmt17(randomDouble(rng));
    for (std::size_t j = 0; j < arity; ++j)
        text += ";" + fmt17(randomDouble(rng)) + "," +
                fmt17(randomPositive(rng));
    return text;
}

CeerModel
randomCeerModel(util::Rng &rng)
{
    CeerModel model;
    model.heavyThresholdUs = randomPositive(rng);
    model.lightMedianUs = randomPositive(rng);
    model.cpuMedianUs = randomPositive(rng);
    for (GpuModel gpu : hw::allGpuModels()) {
        for (OpType op : someOps()) {
            if (rng.uniform() < 0.4)
                continue;
            OpTimeModel entry;
            entry.gpu = gpu;
            entry.op = op;
            entry.quadratic = rng.uniform() < 0.5;
            entry.usable = rng.uniform() < 0.8;
            entry.r2 = rng.uniform();
            entry.medianUs = randomPositive(rng);
            entry.points = rng.uniformInt(1000);
            entry.model = LinearModel::deserialize(
                randomLinearModelText(rng, 1 + rng.uniformInt(2)));
            model.opModels.emplace(std::make_pair(gpu, op),
                                   std::move(entry));
            if (rng.uniform() < 0.7)
                model.heavyOps.insert(op);
        }
        auto &per_k = model.comm.fits[gpu];
        per_k.resize(1 + rng.uniformInt(4));
        for (auto &fit : per_k) {
            if (rng.uniform() < 0.3)
                continue;
            fit.valid = true;
            fit.r2 = rng.uniform();
            fit.model =
                LinearModel::deserialize(randomLinearModelText(rng, 1));
        }
    }
    return model;
}

TEST(RoundTripTest, RandomizedCeerModelsSaveLoadSaveByteIdentically)
{
    // save() emits every coefficient at %.17g and iterates sorted
    // containers, so save -> load -> save must reproduce the document
    // byte for byte, whatever the model contents.
    util::Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
        const CeerModel original = randomCeerModel(rng);
        std::stringstream first;
        original.save(first);
        const CeerModel reloaded = CeerModel::load(first);
        std::stringstream second;
        reloaded.save(second);
        ASSERT_EQ(second.str(), first.str()) << "trial " << trial;
    }
}

/** CNN names hostile to the CSV layer. */
std::string
randomModelName(util::Rng &rng)
{
    static const std::vector<std::string> names = {
        "alexnet", "a,b", "q\"uote", "multi\nline", "cr\rname",
        "trailing ", "", "semi;colon",
    };
    return names[rng.uniformInt(names.size())];
}

profile::OpProfile
randomOpProfile(util::Rng &rng, std::size_t count)
{
    profile::OpProfile profile;
    profile.model = randomModelName(rng);
    const auto &gpus = hw::allGpuModels();
    profile.gpu = gpus[rng.uniformInt(gpus.size())];
    profile.op = someOps()[rng.uniformInt(someOps().size())];
    profile.onCpu = rng.uniform() < 0.2;
    profile.occurrences = 1 + rng.uniformInt(50);
    const std::size_t num_features = 1 + rng.uniformInt(4);
    for (std::size_t f = 0; f < num_features; ++f)
        profile.features.push_back(randomPositive(rng));
    const double mean = randomPositive(rng);
    const double spread = mean * rng.uniform(0.0, 0.05);
    for (std::size_t j = 0; j < count; ++j)
        profile.timeUs.add(j % 2 == 0 ? mean + spread : mean - spread);
    const std::size_t num_samples = rng.uniformInt(8);
    for (std::size_t s = 0; s < num_samples; ++s)
        profile.samples.add(randomPositive(rng));
    return profile;
}

profile::IterationProfile
randomIterationProfile(util::Rng &rng)
{
    profile::IterationProfile run;
    run.model = randomModelName(rng);
    const auto &gpus = hw::allGpuModels();
    run.gpu = gpus[rng.uniformInt(gpus.size())];
    run.numGpus = 1 + static_cast<int>(rng.uniformInt(4));
    run.paramCount = static_cast<std::int64_t>(rng.uniformInt(1u << 30));
    run.meanIterationUs = randomPositive(rng);
    run.meanComputeUs = randomPositive(rng);
    run.meanCommUs = randomPositive(rng);
    return run;
}

std::string
datasetCsv(const profile::ProfileDataset &dataset)
{
    std::stringstream out;
    dataset.saveCsv(out);
    return out.str();
}

TEST(RoundTripTest, SingleCountDatasetsRoundTripByteIdentically)
{
    // With count == 1 the moment reconstruction in loadCsv is exact
    // (the single sample IS the mean), and every numeric column's
    // decimal rendering survives a parse/re-print cycle, so the CSV
    // itself must round-trip byte for byte.
    util::Rng rng(113);
    for (int trial = 0; trial < 40; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(12);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(randomOpProfile(rng, 1));
        dataset.add(std::move(ops));
        const std::size_t num_iters = rng.uniformInt(6);
        for (std::size_t i = 0; i < num_iters; ++i)
            dataset.addIteration(randomIterationProfile(rng));

        const std::string first = datasetCsv(dataset);
        std::istringstream in(first);
        const profile::ProfileDataset reloaded =
            profile::ProfileDataset::loadCsv(in);
        ASSERT_EQ(datasetCsv(reloaded), first) << "trial " << trial;
    }
}

TEST(RoundTripTest, MultiCountDatasetsReachAFixedPointAfterOneTrip)
{
    // Multi-sample stats are stored as (count, mean, stddev) and
    // reconstructed as a two-point distribution: the first save ->
    // load trip is mildly lossy by design, but the result must be
    // stable — a second trip reproduces the CSV byte for byte (this
    // is what makes warm cache hits identical to cold runs).
    util::Rng rng(229);
    for (int trial = 0; trial < 40; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(
                randomOpProfile(rng, 2 * (1 + rng.uniformInt(20))));
        dataset.add(std::move(ops));

        const std::string first = datasetCsv(dataset);
        std::istringstream in_first(first);
        const profile::ProfileDataset once =
            profile::ProfileDataset::loadCsv(in_first);
        const std::string second = datasetCsv(once);
        std::istringstream in_second(second);
        const profile::ProfileDataset twice =
            profile::ProfileDataset::loadCsv(in_second);
        ASSERT_EQ(datasetCsv(twice), second) << "trial " << trial;

        // The lossy step stays small: even counts make the two-point
        // reconstruction exact up to floating-point rounding.
        ASSERT_EQ(once.ops().size(), dataset.ops().size());
        for (std::size_t i = 0; i < once.ops().size(); ++i) {
            const auto &a = dataset.ops()[i];
            const auto &b = once.ops()[i];
            EXPECT_EQ(b.model, a.model);
            EXPECT_EQ(b.occurrences, a.occurrences);
            EXPECT_EQ(b.features, a.features);
            EXPECT_EQ(b.timeUs.count(), a.timeUs.count());
            EXPECT_NEAR(b.timeUs.mean(), a.timeUs.mean(),
                        1e-6 * a.timeUs.mean());
            EXPECT_NEAR(b.timeUs.stddev(), a.timeUs.stddev(),
                        1e-6 * a.timeUs.stddev() + 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// CBF (binary) round-trips. Unlike CSV, the CBF codec stores the
// exact accumulator state, so round-trips are bit-identical for ANY
// dataset — odd counts, overflowed reservoirs, hostile names.

std::string
datasetCbf(const profile::ProfileDataset &dataset)
{
    std::stringstream out;
    dataset.saveCbf(out);
    return out.str();
}

profile::ProfileDataset
parseCbfDataset(const std::string &bytes)
{
    io::CbfFile file;
    std::string error;
    EXPECT_TRUE(io::CbfFile::tryParse(bytes, &file, &error)) << error;
    profile::ProfileDataset dataset;
    EXPECT_TRUE(
        profile::ProfileDataset::tryLoadCbf(file, &dataset, &error))
        << error;
    return dataset;
}

TEST(RoundTripTest, RandomizedDatasetsCbfRoundTripExactly)
{
    util::Rng rng(307);
    for (int trial = 0; trial < 40; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i) {
            // Odd counts and overflowed reservoirs on purpose: the
            // binary codec must not depend on CSV-representability.
            profile::OpProfile op =
                randomOpProfile(rng, 1 + rng.uniformInt(41));
            const std::size_t extra = rng.uniformInt(150);
            for (std::size_t s = 0; s < extra; ++s)
                op.samples.add(randomPositive(rng));
            ops.push_back(std::move(op));
        }
        dataset.add(std::move(ops));
        const std::size_t num_iters = rng.uniformInt(6);
        for (std::size_t i = 0; i < num_iters; ++i)
            dataset.addIteration(randomIterationProfile(rng));

        const std::string bytes = datasetCbf(dataset);
        const profile::ProfileDataset reloaded = parseCbfDataset(bytes);
        ASSERT_EQ(datasetCbf(reloaded), bytes) << "trial " << trial;
        // Spot-check the exactness claim on the lossiest CSV fields.
        ASSERT_EQ(reloaded.ops().size(), dataset.ops().size());
        for (std::size_t i = 0; i < dataset.ops().size(); ++i) {
            const auto &a = dataset.ops()[i];
            const auto &b = reloaded.ops()[i];
            EXPECT_EQ(b.timeUs.count(), a.timeUs.count());
            EXPECT_EQ(b.timeUs.mean(), a.timeUs.mean());
            EXPECT_EQ(b.timeUs.stddev(), a.timeUs.stddev());
            EXPECT_EQ(b.samples.offered(), a.samples.offered());
            EXPECT_EQ(b.samples.samples(), a.samples.samples());
        }
        // And the CSV rendering agrees, since the contents do.
        EXPECT_EQ(datasetCsv(reloaded), datasetCsv(dataset))
            << "trial " << trial;
    }
}

TEST(RoundTripTest, CsvToCbfToCsvReproducesTheCanonicalCsv)
{
    // CSV -> CBF -> CSV: starting from a canonical CSV (one save/load
    // trip puts any dataset there), converting through the binary
    // dialect and back must reproduce the text byte for byte.
    util::Rng rng(401);
    for (int trial = 0; trial < 30; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(
                randomOpProfile(rng, 1 + rng.uniformInt(30)));
        dataset.add(std::move(ops));
        const std::size_t num_iters = rng.uniformInt(4);
        for (std::size_t i = 0; i < num_iters; ++i)
            dataset.addIteration(randomIterationProfile(rng));

        std::istringstream raw(datasetCsv(dataset));
        const profile::ProfileDataset canonical_dataset =
            profile::ProfileDataset::loadCsv(raw);
        const std::string canonical = datasetCsv(canonical_dataset);

        const profile::ProfileDataset from_cbf =
            parseCbfDataset(datasetCbf(canonical_dataset));
        ASSERT_EQ(datasetCsv(from_cbf), canonical) << "trial " << trial;
    }
}

TEST(RoundTripTest, CbfToCsvToCbfIsExactForCsvRepresentableDatasets)
{
    // CBF -> CSV -> CBF: exact whenever the dataset is inside CSV's
    // representable set — canonical values and single-sample stats
    // (count == 1 makes the moment reconstruction lossless).
    util::Rng rng(503);
    for (int trial = 0; trial < 30; ++trial) {
        profile::ProfileDataset dataset;
        std::vector<profile::OpProfile> ops;
        const std::size_t num_ops = 1 + rng.uniformInt(10);
        for (std::size_t i = 0; i < num_ops; ++i)
            ops.push_back(randomOpProfile(rng, 1));
        dataset.add(std::move(ops));
        std::istringstream raw(datasetCsv(dataset));
        const profile::ProfileDataset canonical =
            profile::ProfileDataset::loadCsv(raw);

        const std::string cbf_first = datasetCbf(canonical);
        std::istringstream csv_in(datasetCsv(canonical));
        const profile::ProfileDataset via_csv =
            profile::ProfileDataset::loadCsv(csv_in);
        ASSERT_EQ(datasetCbf(via_csv), cbf_first) << "trial " << trial;
    }
}

TEST(RoundTripTest, RandomizedCeerModelsCbfRoundTripByteIdentically)
{
    util::Rng rng(601);
    for (int trial = 0; trial < 50; ++trial) {
        const CeerModel original = randomCeerModel(rng);
        std::stringstream first;
        original.saveCbf(first);

        io::CbfFile file;
        std::string error;
        ASSERT_TRUE(io::CbfFile::tryParse(first.str(), &file, &error))
            << error;
        CeerModel reloaded;
        ASSERT_TRUE(CeerModel::tryLoadCbf(file, &reloaded, &error))
            << error;
        std::stringstream second;
        reloaded.saveCbf(second);
        ASSERT_EQ(second.str(), first.str()) << "trial " << trial;

        // The text dialect agrees too, since the contents do.
        std::stringstream text_a, text_b;
        original.save(text_a);
        reloaded.save(text_b);
        EXPECT_EQ(text_b.str(), text_a.str()) << "trial " << trial;
    }
}

TEST(RoundTripTest, CatalogCbfRoundTripsByteIdentically)
{
    for (const cloud::InstanceCatalog &catalog :
         {cloud::InstanceCatalog::awsOnDemand(),
          cloud::InstanceCatalog::syntheticFleet(500)}) {
        std::stringstream first;
        catalog.saveCbf(first);
        io::CbfFile file;
        std::string error;
        ASSERT_TRUE(io::CbfFile::tryParse(first.str(), &file, &error))
            << error;
        cloud::InstanceCatalog reloaded;
        ASSERT_TRUE(cloud::InstanceCatalog::tryLoadCbf(file, &reloaded,
                                                       &error))
            << error;
        std::stringstream second;
        reloaded.saveCbf(second);
        ASSERT_EQ(second.str(), first.str());
        ASSERT_EQ(reloaded.instances().size(),
                  catalog.instances().size());
    }
}

/** A synthetic evaluation report with full-precision doubles. */
baselines::EvalReport
randomEvalReport(util::Rng &rng)
{
    baselines::EvalReport report;
    const std::vector<std::string> predictors = {"ceer", "profet",
                                                 "dnnabacus"};
    const std::vector<std::string> models = {"alexnet", "vgg_19"};
    for (const std::string &predictor : predictors) {
        for (const std::string &model : models) {
            for (const GpuModel gpu : hw::allGpuModels()) {
                for (const int k : {1, 2, 4, 8}) {
                    baselines::EvalCell cell;
                    cell.predictor = predictor;
                    cell.model = model;
                    cell.gpu = gpu;
                    cell.k = k;
                    cell.observedUs = std::abs(randomDouble(rng));
                    cell.predictedUs = std::abs(randomDouble(rng));
                    cell.apePct = std::abs(randomDouble(rng));
                    report.cells.push_back(std::move(cell));
                }
            }
            baselines::EvalModelRow row;
            row.predictor = predictor;
            row.model = model;
            row.mapePct = std::abs(randomDouble(rng));
            row.rmseUs = std::abs(randomDouble(rng));
            row.spearman = rng.uniform() * 2.0 - 1.0;
            row.recommended = "p3.2xlarge";
            row.observedBest =
                rng.uniform() < 0.5 ? "p3.2xlarge" : "";
            row.agree = row.recommended == row.observedBest;
            report.modelRows.push_back(std::move(row));
        }
        baselines::EvalSummaryRow sum;
        sum.predictor = predictor;
        sum.mapePct = std::abs(randomDouble(rng));
        sum.rmseUs = std::abs(randomDouble(rng));
        sum.meanSpearman = rng.uniform() * 2.0 - 1.0;
        sum.agreementRate = rng.uniform();
        report.summary.push_back(std::move(sum));
    }
    return report;
}

TEST(RoundTripTest, RandomizedEvalReportsCsvRoundTripByteIdentically)
{
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        util::Rng rng(7100 + seed);
        const baselines::EvalReport report = randomEvalReport(rng);
        std::stringstream first;
        report.saveCsv(first);
        baselines::EvalReport reloaded;
        std::string error;
        ASSERT_TRUE(baselines::EvalReport::tryLoadCsv(
            first, &reloaded, &error))
            << "seed " << seed << ": " << error;
        std::stringstream second;
        reloaded.saveCsv(second);
        ASSERT_EQ(second.str(), first.str()) << "seed " << seed;
        ASSERT_EQ(reloaded.cells.size(), report.cells.size());
        ASSERT_EQ(reloaded.modelRows.size(), report.modelRows.size());
        ASSERT_EQ(reloaded.summary.size(), report.summary.size());
    }
}

TEST(RoundTripTest, RandomizedEvalReportsCbfRoundTripByteIdentically)
{
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        util::Rng rng(7200 + seed);
        const baselines::EvalReport report = randomEvalReport(rng);
        std::stringstream first;
        report.saveCbf(first);
        io::CbfFile file;
        std::string error;
        ASSERT_TRUE(io::CbfFile::tryParse(first.str(), &file, &error))
            << "seed " << seed << ": " << error;
        baselines::EvalReport reloaded;
        ASSERT_TRUE(baselines::EvalReport::tryLoadCbf(file, &reloaded,
                                                      &error))
            << "seed " << seed << ": " << error;
        std::stringstream second;
        reloaded.saveCbf(second);
        ASSERT_EQ(second.str(), first.str()) << "seed " << seed;
    }
}

TEST(RoundTripTest, EvalReportCsvAndCbfDialectsAgree)
{
    util::Rng rng(7300);
    const baselines::EvalReport report = randomEvalReport(rng);
    // CBF -> load -> CSV must equal CSV written directly: the two
    // dialects carry exactly the same information.
    std::stringstream direct_csv;
    report.saveCsv(direct_csv);
    std::stringstream cbf;
    report.saveCbf(cbf);
    io::CbfFile file;
    std::string error;
    ASSERT_TRUE(io::CbfFile::tryParse(cbf.str(), &file, &error))
        << error;
    baselines::EvalReport via_cbf;
    ASSERT_TRUE(
        baselines::EvalReport::tryLoadCbf(file, &via_cbf, &error))
        << error;
    std::stringstream csv_via_cbf;
    via_cbf.saveCsv(csv_via_cbf);
    EXPECT_EQ(csv_via_cbf.str(), direct_csv.str());
}

/** A valid one-row-per-kind report CSV to mutate from. */
std::string
validEvalCsv()
{
    util::Rng rng(7400);
    std::stringstream out;
    randomEvalReport(rng).saveCsv(out);
    return out.str();
}

/** The report CSV as lines (trailing newline stripped). */
std::vector<std::string>
csvLines(const std::string &csv)
{
    std::vector<std::string> lines = util::split(csv, '\n');
    while (!lines.empty() && lines.back().empty())
        lines.pop_back();
    return lines;
}

/** Replaces field @p column (0-based) of 1-based data row @p row. */
std::string
withField(const std::string &csv, std::size_t row, std::size_t column,
          const std::string &value)
{
    std::vector<std::string> lines = csvLines(csv);
    std::vector<std::string> fields = util::split(lines[row], ',');
    fields[column] = value;
    lines[row] = util::join(fields, ",");
    return util::join(lines, "\n") + "\n";
}

TEST(RoundTripTest, EvalReportCsvLoaderRejectsMalformedInputs)
{
    const std::string valid = validEvalCsv();
    const struct {
        std::string csv;
        const char *expect;
    } cases[] = {
        {"", "empty evaluation report"},
        {"kind,predictor\ncell,x\n", "bad header"},
        {withField(valid, 1, 0, "banana"), "unknown kind 'banana'"},
        {withField(valid, 1, 3, "H200"), "unknown GPU 'H200'"},
        {withField(valid, 1, 4, "two"), "column k"},
        {withField(valid, 1, 5, "fast"), "column observed_us"},
        {withField(valid, 1, 6, "?"), "column predicted_us"},
        {withField(valid, 1, 7, "?"), "column ape_pct"},
    };
    for (const auto &c : cases) {
        std::istringstream in(c.csv);
        baselines::EvalReport report;
        std::string error;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCsv(in, &report, &error));
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << "wanted '" << c.expect << "' in: " << error;
    }
    // Short row: drop the last field of the first data row.
    std::vector<std::string> lines = csvLines(valid);
    lines[1] = lines[1].substr(0, lines[1].rfind(','));
    std::istringstream in(util::join(lines, "\n") + "\n");
    baselines::EvalReport report;
    std::string error;
    EXPECT_FALSE(
        baselines::EvalReport::tryLoadCsv(in, &report, &error));
    EXPECT_NE(error.find("expected 14 fields, got 13"),
              std::string::npos)
        << error;
}

TEST(RoundTripTest, EvalReportCsvLoaderRejectsBadModelAndSummaryRows)
{
    const std::string valid = validEvalCsv();
    // Locate the first model and summary rows (cells come first).
    const std::vector<std::string> lines = csvLines(valid);
    std::size_t model_row = 0, summary_row = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (!model_row && lines[i].rfind("model,", 0) == 0)
            model_row = i;
        if (!summary_row && lines[i].rfind("summary,", 0) == 0)
            summary_row = i;
    }
    ASSERT_NE(model_row, 0u);
    ASSERT_NE(summary_row, 0u);
    const struct {
        std::size_t row;
        std::size_t column;
        const char *expect;
    } cases[] = {
        {model_row, 8, "column mape_pct"},
        {model_row, 9, "column rmse_us"},
        {model_row, 10, "column spearman"},
        {model_row, 13, "column agree"},
        {summary_row, 8, "column mape_pct"},
        {summary_row, 13, "column agree"},
    };
    for (const auto &c : cases) {
        std::istringstream in(withField(valid, c.row, c.column, "x"));
        baselines::EvalReport report;
        std::string error;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCsv(in, &report, &error));
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << "wanted '" << c.expect << "' in: " << error;
    }
}

TEST(RoundTripTest, EvalReportCbfLoaderRejectsMalformedFiles)
{
    std::string error;

    // Wrong schema string.
    {
        io::CbfBuilder builder;
        builder.addBytes("schema", "ceer.profiles.v1");
        std::stringstream out;
        builder.write(out);
        io::CbfFile file;
        ASSERT_TRUE(io::CbfFile::tryParse(out.str(), &file, &error))
            << error;
        baselines::EvalReport report;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCbf(file, &report, &error));
        EXPECT_NE(error.find("not an evaluation report CBF"),
                  std::string::npos)
            << error;
    }

    // Right schema, cell strings present but numeric columns missing.
    {
        io::CbfBuilder builder;
        builder.addBytes("schema", "ceer.evalreport.v1");
        io::addStringColumn(&builder, "cell.predictor", {"ceer"});
        io::addStringColumn(&builder, "cell.model", {"alexnet"});
        io::addStringColumn(&builder, "cell.gpu", {"V100"});
        std::stringstream out;
        builder.write(out);
        io::CbfFile file;
        ASSERT_TRUE(io::CbfFile::tryParse(out.str(), &file, &error))
            << error;
        baselines::EvalReport report;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCbf(file, &report, &error));
        EXPECT_NE(error.find("missing column cell.k"),
                  std::string::npos)
            << error;
    }

    // Column groups disagreeing on row count.
    {
        io::CbfBuilder builder;
        builder.addBytes("schema", "ceer.evalreport.v1");
        io::addStringColumn(&builder, "cell.predictor", {"ceer"});
        io::addStringColumn(&builder, "cell.model",
                            {"alexnet", "vgg_19"});
        io::addStringColumn(&builder, "cell.gpu", {"V100"});
        std::stringstream out;
        builder.write(out);
        io::CbfFile file;
        ASSERT_TRUE(io::CbfFile::tryParse(out.str(), &file, &error))
            << error;
        baselines::EvalReport report;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCbf(file, &report, &error));
        EXPECT_NE(error.find("disagree on row count"),
                  std::string::npos)
            << error;
    }

    // Sized column with the wrong row count.
    {
        io::CbfBuilder builder;
        builder.addBytes("schema", "ceer.evalreport.v1");
        io::addStringColumn(&builder, "cell.predictor", {"ceer"});
        io::addStringColumn(&builder, "cell.model", {"alexnet"});
        io::addStringColumn(&builder, "cell.gpu", {"V100"});
        builder.addI64("cell.k", std::vector<std::int64_t>{1, 2});
        std::stringstream out;
        builder.write(out);
        io::CbfFile file;
        ASSERT_TRUE(io::CbfFile::tryParse(out.str(), &file, &error))
            << error;
        baselines::EvalReport report;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCbf(file, &report, &error));
        EXPECT_NE(error.find("cell.k"), std::string::npos) << error;
        EXPECT_NE(error.find("expected 1 rows, got 2"),
                  std::string::npos)
            << error;
    }

    // Unknown GPU name inside an otherwise well-formed cell group.
    {
        io::CbfBuilder builder;
        builder.addBytes("schema", "ceer.evalreport.v1");
        io::addStringColumn(&builder, "cell.predictor", {"ceer"});
        io::addStringColumn(&builder, "cell.model", {"alexnet"});
        io::addStringColumn(&builder, "cell.gpu", {"H200"});
        builder.addI64("cell.k", std::vector<std::int64_t>{1});
        builder.addF64("cell.observed_us", std::vector<double>{1.0});
        builder.addF64("cell.predicted_us", std::vector<double>{1.0});
        builder.addF64("cell.ape_pct", std::vector<double>{0.0});
        std::stringstream out;
        builder.write(out);
        io::CbfFile file;
        ASSERT_TRUE(io::CbfFile::tryParse(out.str(), &file, &error))
            << error;
        baselines::EvalReport report;
        EXPECT_FALSE(
            baselines::EvalReport::tryLoadCbf(file, &report, &error));
        EXPECT_NE(error.find("unknown GPU 'H200'"), std::string::npos)
            << error;
    }
}

TEST(RoundTripTest, EvalReportLoadsFromDiskInEitherDialect)
{
    util::Rng rng(7500);
    const baselines::EvalReport report = randomEvalReport(rng);
    const std::string dir = ::testing::TempDir();
    std::string error;

    const std::string csv_path = dir + "ceer-eval-report.csv";
    {
        std::ofstream out(csv_path);
        report.saveCsv(out);
    }
    baselines::EvalReport from_csv;
    ASSERT_TRUE(baselines::EvalReport::tryLoadFile(csv_path, &from_csv,
                                                   &error))
        << error;

    const std::string cbf_path = dir + "ceer-eval-report.cbf";
    {
        std::ofstream out(cbf_path, std::ios::binary);
        report.saveCbf(out);
    }
    baselines::EvalReport from_cbf;
    ASSERT_TRUE(baselines::EvalReport::tryLoadFile(cbf_path, &from_cbf,
                                                   &error))
        << error;

    // Same canonical CSV from both on-disk dialects.
    std::stringstream direct, via_csv, via_cbf;
    report.saveCsv(direct);
    from_csv.saveCsv(via_csv);
    from_cbf.saveCsv(via_cbf);
    EXPECT_EQ(via_csv.str(), direct.str());
    EXPECT_EQ(via_cbf.str(), direct.str());

    baselines::EvalReport missing;
    EXPECT_FALSE(baselines::EvalReport::tryLoadFile(
        dir + "ceer-eval-nonexistent.csv", &missing, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace ceer
